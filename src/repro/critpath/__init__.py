"""Causal critical-path analysis over the trace stream.

Builds the program-activity graph (:mod:`repro.critpath.pag`) from a
run's trace events, extracts the exact critical path with per-category
and per-entity blame (:mod:`repro.critpath.analyze`), and computes
what-if latency-tolerance projections (zero-latency network, perfect
prefetch, free context switches) as lower bounds on the measured wall
clock.  Pure observation: nothing here is imported by the simulation
hot path, and runs without ``--critpath`` are byte-identical to before.
"""

from repro.critpath.analyze import (
    CritpathResult,
    PathSegment,
    analyze_events,
    analyze_pag,
)
from repro.critpath.pag import ProgramActivityGraph, build_pag

__all__ = [
    "CritpathResult",
    "PathSegment",
    "ProgramActivityGraph",
    "analyze_events",
    "analyze_pag",
    "build_pag",
]
