"""Text rendering of a critpath report section (the ``to_dict`` form)."""

from __future__ import annotations

from typing import Any

__all__ = ["format_critpath"]


def _us(value: float) -> str:
    return f"{value:,.1f}"


def format_critpath(section: dict[str, Any], label: str = "") -> str:
    """Render the epoch blame table, what-ifs, and per-node slack."""
    lines: list[str] = []
    title = "critical path" + (f" [{label}]" if label else "")
    lines.append(title)
    lines.append("=" * len(title))
    wall = section["wall_time_us"]
    lines.append(
        f"wall {_us(wall)} us | path {_us(section['path_us'])} us"
        f" | identity {'exact' if section['identity_exact'] else 'INEXACT'}"
        f" | hops {section['hops']}"
        f" | unattributed {_us(section['unattributed_us'])} us"
    )
    health = []
    if section.get("events_dropped"):
        health.append(f"events_dropped={section['events_dropped']}")
    if section.get("dangling_arrivals"):
        health.append(f"dangling_arrivals={section['dangling_arrivals']}")
    if not section.get("wall_from_finish", True):
        health.append("wall inferred from last charge (no sched_finish in trace)")
    if health:
        lines.append("health: " + ", ".join(health))

    lines.append("")
    lines.append("path blame by category:")
    for cat, us in sorted(section["blame_us"].items(), key=lambda kv: -kv[1]):
        pct = 100.0 * us / wall if wall else 0.0
        lines.append(f"  {cat:<16} {_us(us):>16} us  {pct:5.1f}%")

    epochs = section.get("epochs") or []
    if epochs:
        lines.append("")
        lines.append("per-epoch blame (epochs are barrier-release intervals):")
        lines.append(
            f"  {'epoch':>5} {'span us':>14} {'top wait':<14}"
            f" {'wait us':>14} {'hot entity':<14}"
        )
        for ep in epochs:
            wait = ep.get("top_wait")
            wait_us = ep["blame_us"].get(wait, 0.0) if wait else 0.0
            lines.append(
                f"  {ep['epoch']:>5} {_us(ep['span_us']):>14}"
                f" {(wait or '-'):<14} {_us(wait_us):>14}"
                f" {(ep.get('top_entity') or '-'):<14}"
            )

    hot = section.get("hot_entities") or []
    if hot:
        lines.append("")
        lines.append("hot entities on the path:")
        for item in hot:
            lines.append(f"  {item['entity']:<14} {_us(item['us']):>16} us")

    what_if = section.get("what_if_us") or {}
    if what_if:
        lines.append("")
        lines.append("what-if projections (lower bounds on this run):")
        for name, us in sorted(what_if.items(), key=lambda kv: kv[1]):
            speedup = wall / us if us else float("inf")
            lines.append(f"  {name:<22} {_us(us):>16} us  ({speedup:4.2f}x)")

    per_node = section.get("per_node") or []
    if per_node:
        lines.append("")
        lines.append("per-node path share and slack:")
        lines.append(
            f"  {'node':>4} {'on-path us':>16} {'slack us':>16} {'idle us':>16}"
        )
        for row in per_node:
            lines.append(
                f"  {row['node']:>4} {_us(row['on_path_us']):>16}"
                f" {_us(row['slack_us']):>16} {_us(row['idle_us']):>16}"
            )
    return "\n".join(lines)
