"""Program-activity-graph (PAG) construction from the trace stream.

The PAG is the classic critical-path-profiling object: a DAG whose
vertices are points in each node's CPU occupancy timeline and whose
edges are (a) the CPU charges themselves, (b) same-node ordering, and
(c) cross-node message deliveries.  Because the simulator charges every
microsecond of CPU through ``Node.occupy`` (one ``cpu`` X-slice per
charge) and stamps message send/deliver times on the ``msg:*`` async
spans, the graph can be rebuilt *bit-exactly* offline from a trace —
no sampling, no clock skew.

Construction invariants this module relies on (and the analyzer's
exactness proof rests on):

- non-idle cpu slices on one node never overlap (the CPU is a unit
  resource) and are stamped with their exact acquisition time;
- every message send happens at the end of a CPU charge (the send cost
  is charged before injection), so ``send_ts`` is always some slice's
  ``end`` on the sender, bit-for-bit;
- a message delivered while the CPU is free starts a handler charge at
  exactly the delivery timestamp, so a *gap* in a node's occupancy
  chain always ends at either a delivery instant, a transport timeout
  instant, or (pathologically) nothing the trace explains — which the
  analyzer surfaces as ``unattributed`` time instead of guessing.

Idle cpu slices (``memory_idle``/``sync_idle``/``downtime``) are
deliberately NOT part of the occupancy chain: they are emitted per
*wait* and may overlap handler charges that ran during the wait.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "IDLE_NAMES",
    "SLICE_CATEGORY",
    "WIRE_CATEGORY",
    "Slice",
    "WireEdge",
    "ProgramActivityGraph",
    "build_pag",
]

#: cpu X-slice names that are waiting, not occupancy.
IDLE_NAMES = frozenset({"memory_idle", "sync_idle", "downtime"})

#: cpu charge name -> blame category ("dsm_overhead" is refined to
#: ``fault_service`` when the charge runs inside a local page fault).
SLICE_CATEGORY = {
    "busy": "cpu",
    "dsm_overhead": "dsm",
    "prefetch_overhead": "prefetch",
    "mt_overhead": "context_switch",
    "checkpoint": "ft",
    "recovery": "ft",
}

#: message kind -> wire blame category; kinds not listed (acks,
#: prefetch traffic, membership) fall back to "network".
WIRE_CATEGORY = {
    "diff_request": "diff_rtt",
    "diff_reply": "diff_rtt",
    "lock_request": "lock_wait",
    "lock_forward": "lock_wait",
    "lock_grant": "lock_wait",
    "barrier_arrive": "barrier_wait",
    "barrier_release": "barrier_wait",
    # HLRC: whole-page fault round trips to the home, and the eager
    # release-time flushes that feed it.
    "page_request": "page_fetch",
    "page_reply": "page_fetch",
    "home_update": "home_update",
    "home_update_ack": "home_update",
    # SC: the ownership transaction's data-movement legs blame
    # page_fetch; the invalidation round trips (and the write grant
    # that completes them) get their own category — under SC they are
    # the protocol's defining cost, not generic "network".
    "sc_req": "page_fetch",
    "sc_fetch": "page_fetch",
    "sc_data": "page_fetch",
    "sc_done": "page_fetch",
    "sc_inval": "invalidation",
    "sc_inval_ack": "invalidation",
    "sc_grant": "invalidation",
}


@dataclass(slots=True)
class Slice:
    """One CPU charge on one node (a PAG edge of weight ``end - start``)."""

    start: float
    end: float
    name: str
    category: str
    entity: Optional[str] = None


@dataclass(slots=True)
class WireEdge:
    """One delivered message (a cross-node PAG edge)."""

    msg: str
    kind: str
    src: int
    dst: int
    send_ts: float
    deliver_ts: float
    category: str
    entity: Optional[str] = None


@dataclass
class ProgramActivityGraph:
    """The rebuilt constraint graph plus the indexes the analyzer uses."""

    num_nodes: int = 0
    #: per-node occupancy chain, sorted by start.
    slices: dict[int, list[Slice]] = field(default_factory=dict)
    #: per-node slice start timestamps (bisect index parallel to slices).
    starts: dict[int, list[float]] = field(default_factory=dict)
    #: per-node: slice end timestamp -> slice index (send anchors).
    ends_index: dict[int, dict[float, int]] = field(default_factory=dict)
    #: per-node: delivery timestamp -> wire edges landing then (stream order).
    arrivals: dict[int, dict[float, list[WireEdge]]] = field(default_factory=dict)
    #: every delivered message, in delivery stream order.
    wires: list[WireEdge] = field(default_factory=list)
    #: per-node: timeout instant -> [(dst, seq)] (stream order).
    timeouts: dict[int, dict[float, list[tuple[int, int]]]] = field(default_factory=dict)
    #: (sender, dst, seq) -> sorted transmission timestamps.
    sends_by_key: dict[tuple[int, int, int], list[float]] = field(default_factory=dict)
    #: sorted unique barrier_release instants (epoch boundaries).
    barrier_releases: list[float] = field(default_factory=list)
    #: per-node scheduler finish instants (max if restarted).
    finish_ts: dict[int, float] = field(default_factory=dict)
    #: per-node idle time (informational; not part of the chain).
    idle_us: dict[int, float] = field(default_factory=dict)
    # -- health metrics ----------------------------------------------------
    #: overlapping occupancy detected (should be 0 in supported runs).
    overlap_us: float = 0.0
    #: deliveries whose send timestamp could not be recovered (the ring
    #: sink dropped the async begin and the end carried no ``sent_at``).
    dangling_arrivals: int = 0
    #: events the tracer's ring sink discarded before we saw them.
    events_dropped: int = 0

    @property
    def wall(self) -> float:
        """The run's wall clock: the latest scheduler finish instant.

        Falls back to the latest slice end for traces predating the
        ``sched_finish`` marker (the analyzer flags this).
        """
        if self.finish_ts:
            return max(self.finish_ts.values())
        return max(
            (chain[-1].end for chain in self.slices.values() if chain), default=0.0
        )

    @property
    def end_node(self) -> int:
        """The node whose finish defines the wall (lowest id on ties)."""
        if self.finish_ts:
            wall = max(self.finish_ts.values())
            return min(n for n, ts in self.finish_ts.items() if ts == wall)
        wall = self.wall
        candidates = [
            n for n, chain in self.slices.items() if chain and chain[-1].end == wall
        ]
        return min(candidates) if candidates else 0

    def slice_index_before(self, node: int, t: float) -> int:
        """Index of the last slice on ``node`` with ``start < t`` (-1 if none)."""
        return bisect_left(self.starts.get(node, []), t) - 1


def _field(ev: Any, name: str, default: Any = None) -> Any:
    if isinstance(ev, dict):
        return ev.get(name, default)
    return getattr(ev, name, default)


def _entity_of(args: dict) -> Optional[str]:
    for kind in ("page", "lock", "barrier"):
        if kind in args:
            return f"{kind}:{args[kind]}"
    return None


def build_pag(events: Iterable[Any], events_dropped: int = 0) -> ProgramActivityGraph:
    """Rebuild the PAG from trace events (objects or JSONL dict rows).

    One pass in stream order (the tracer appends in simulation order,
    which every exactness argument leans on), then a per-node
    classification sweep for fault-service attribution.
    """
    pag = ProgramActivityGraph(events_dropped=events_dropped)
    #: message id -> partially built record.
    recs: dict[str, dict[str, Any]] = {}
    labels: dict[str, str] = {}
    retransmit_ids: set[str] = set()
    #: per-node open page faults: id -> (start, page).
    open_faults: dict[int, dict[str, tuple[float, Any]]] = {}
    #: per-node closed fault intervals (start, end, page).
    faults: dict[int, list[tuple[float, float, Any]]] = {}
    deliveries: list[tuple[int, float, str]] = []
    max_node = -1

    for ev in events:
        ph = _field(ev, "ph")
        name = _field(ev, "name")
        cat = _field(ev, "cat")
        node = _field(ev, "node", 0)
        ts = _field(ev, "ts", 0.0)
        args = _field(ev, "args") or {}
        if node > max_node:
            max_node = node
        if ph == "X" and cat == "cpu":
            dur = _field(ev, "dur", 0.0)
            if name in IDLE_NAMES:
                pag.idle_us[node] = pag.idle_us.get(node, 0.0) + dur
                continue
            chain = pag.slices.setdefault(node, [])
            chain.append(
                Slice(ts, ts + dur, name, SLICE_CATEGORY.get(name, "cpu"))
            )
        elif ph == "b" and cat == "network" and name.startswith("msg:"):
            mid = _field(ev, "id")
            rec = recs.setdefault(mid, {})
            rec.update(
                kind=name[4:], src=node, send=ts,
                dst=args.get("dst"), seq=args.get("seq", -1),
            )
            seq = args.get("seq", -1)
            if seq is not None and seq >= 0 and args.get("dst") is not None:
                insort(pag.sends_by_key.setdefault((node, args["dst"], seq), []), ts)
        elif ph == "e" and cat == "network" and name.startswith("msg:"):
            mid = _field(ev, "id")
            rec = recs.setdefault(mid, {})
            rec.setdefault("kind", name[4:])
            rec["deliver"] = ts
            rec["dst"] = node
            if "send" not in rec:
                # The ring sink dropped the begin; fall back to the
                # redundant sent_at/src stamped on the end event.
                if "sent_at" in args and args["sent_at"] >= 0 and "src" in args:
                    rec["send"] = args["sent_at"]
                    rec["src"] = args["src"]
            deliveries.append((node, ts, mid))
        elif ph == "i":
            if name == "pag_edge":
                entity = _entity_of(args)
                if entity is not None and "msg" in args:
                    labels[args["msg"]] = entity
            elif name == "retransmit" and "msg" in args:
                retransmit_ids.add(args["msg"])
            elif name == "transport_timeout":
                if "dst" in args and "seq" in args:
                    pag.timeouts.setdefault(node, {}).setdefault(ts, []).append(
                        (args["dst"], args["seq"])
                    )
            elif name == "barrier_release":
                pag.barrier_releases.append(ts)
            elif name == "sched_finish":
                prev = pag.finish_ts.get(node)
                if prev is None or ts > prev:
                    pag.finish_ts[node] = ts
        elif ph == "b" and name == "page_fault":
            open_faults.setdefault(node, {})[_field(ev, "id")] = (ts, args.get("page"))
        elif ph == "e" and name == "page_fault":
            opened = open_faults.get(node, {}).pop(_field(ev, "id"), None)
            if opened is not None:
                faults.setdefault(node, []).append((opened[0], ts, opened[1]))

    # Faults still open at the end of the trace extend to +inf.
    for node, pending in open_faults.items():
        for start, page in pending.values():
            faults.setdefault(node, []).append((start, float("inf"), page))

    pag.num_nodes = max_node + 1 if max_node >= 0 else 0

    # -- per-node classification sweep ------------------------------------
    for node, chain in pag.slices.items():
        chain.sort(key=lambda s: (s.start, s.end))
        prev_end = None
        for sl in chain:
            if prev_end is not None and sl.start < prev_end:
                pag.overlap_us += min(prev_end, sl.end) - sl.start
            prev_end = sl.end if prev_end is None else max(prev_end, sl.end)
        # Merge fault intervals with slice starts: a dsm charge that
        # runs while a local page fault is open is fault *service* and
        # inherits the page entity (innermost fault wins).
        intervals = sorted(faults.get(node, []), key=lambda iv: iv[0])
        if intervals:
            marks: list[tuple[float, int, tuple]] = []
            for iv in intervals:
                marks.append((iv[0], 0, iv))  # open before same-ts slices
                marks.append((iv[1], 2, iv))  # close after same-ts slices
            for idx, sl in enumerate(chain):
                marks.append((sl.start, 1, (idx,)))
            marks.sort(key=lambda m: (m[0], m[1]))
            active: list[tuple] = []
            for _ts, order, payload in marks:
                if order == 0:
                    active.append(payload)
                elif order == 2:
                    try:
                        active.remove(payload)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                else:
                    sl = chain[payload[0]]
                    if sl.name == "dsm_overhead" and active:
                        sl.category = "fault_service"
                        page = active[-1][2]
                        if page is not None:
                            sl.entity = f"page:{page}"
        pag.starts[node] = [sl.start for sl in chain]
        pag.ends_index[node] = {sl.end: i for i, sl in enumerate(chain)}

    # -- finalize wire edges ----------------------------------------------
    for node, ts, mid in deliveries:
        rec = recs[mid]
        if "send" not in rec or rec.get("src") is None:
            pag.dangling_arrivals += 1
            continue
        kind = rec["kind"]
        if mid in retransmit_ids:
            category = "retransmit"
        else:
            category = WIRE_CATEGORY.get(kind, "network")
        wire = WireEdge(
            msg=mid, kind=kind, src=rec["src"], dst=node,
            send_ts=rec["send"], deliver_ts=ts,
            category=category, entity=labels.get(mid),
        )
        pag.wires.append(wire)
        pag.arrivals.setdefault(node, {}).setdefault(ts, []).append(wire)

    pag.barrier_releases = sorted(set(pag.barrier_releases))
    return pag
