"""Offline critical-path analysis of a saved trace.

Usage::

    python -m repro.critpath TRACE [--json OUT]

``TRACE`` is either a flat JSONL trace (``repro.trace.export.write_jsonl``,
one event per line) or a Chrome trace_event JSON file (the ``--trace``
output of ``repro.apps``).  Prints the epoch blame table, what-if
projections, and per-node slack; exits 1 when the exact path identity
(path length == wall clock, bit for bit) does not hold, 2 on usage or
input errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.critpath.analyze import analyze_events
from repro.critpath.format import format_critpath

__all__ = ["main", "load_trace"]


def load_trace(path: str) -> tuple[list[dict[str, Any]], int]:
    """Read a trace file; returns (event rows, events_dropped).

    Chrome trace rows carry the node id as ``pid`` and may include
    metadata (``ph == "M"``) rows; both are normalized here.  The Chrome
    exporter sorts by timestamp with a stable sort, which preserves the
    equal-timestamp emission order the PAG builder relies on.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        rest = handle.read()
    try:
        head = json.loads(first)
        is_jsonl = isinstance(head, dict) and "ph" in head
    except json.JSONDecodeError:
        # A pretty-printed Chrome file splits its object across lines.
        is_jsonl = False
    if is_jsonl:
        rows = [json.loads(line) for line in [first, *rest.splitlines()] if line.strip()]
        return rows, 0
    doc = json.loads(first + rest)
    rows = []
    for row in doc.get("traceEvents", []):
        if row.get("ph") == "M":
            continue
        if "node" not in row:
            row = dict(row, node=row.get("pid", 0))
        rows.append(row)
    dropped = int((doc.get("otherData") or {}).get("events_dropped", 0))
    return rows, dropped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.critpath",
        description="Rebuild the program-activity graph from a trace and "
        "print the critical-path epoch table and what-if projections.",
    )
    parser.add_argument("trace", help="trace file (JSONL or Chrome JSON)")
    parser.add_argument(
        "--json", metavar="OUT", help="also write the full report section as JSON"
    )
    args = parser.parse_args(argv)

    try:
        rows, dropped = load_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print(f"error: {args.trace!r} contains no trace events", file=sys.stderr)
        return 2

    result = analyze_events(rows, events_dropped=dropped)
    section = result.to_dict()
    print(format_critpath(section, label=args.trace))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(section, handle, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    return 0 if section["identity_exact"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
