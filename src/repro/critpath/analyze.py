"""Exact critical-path extraction and what-if projections over the PAG.

The analyzer walks the program-activity graph *backwards* from the end
of the run.  At every instant ``t`` on a node it asks "what finished at
``t``?": a CPU charge (blame the charge's category), a message delivery
(hop to the sender, blame the wire), a transport timeout (blame the
retransmission wait), or — if nothing in the trace explains the gap —
an ``unattributed`` filler that keeps the path contiguous instead of
inventing causality.  The resulting path is a time-contiguous partition
of ``[0, wall]``, so its length telescopes to the wall clock *exactly*
(all arithmetic over :class:`fractions.Fraction` of the float
timestamps, which are exact rationals) and the per-category blame sums
to the path length by construction.  The same graph, with edge weights
reduced, yields the what-if projections: a longest-path DP whose
weights never exceed the measured ones, so every projection is a lower
bound on the run it was computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Iterable, Optional

from repro.critpath.pag import ProgramActivityGraph, Slice, WireEdge, build_pag

__all__ = ["PathSegment", "CritpathResult", "analyze_events", "analyze_pag"]

#: critpath report section schema (inside RunReport schema v3).
SECTION_VERSION = 1

#: how many hot entities the report keeps.
_TOP_ENTITIES = 12


@dataclass(slots=True)
class PathSegment:
    """One contiguous interval of the critical path.

    ``node`` is the CPU the interval ran on (wire segments carry the
    *sender*; ``dst`` is set only for wire segments).
    """

    t0: float
    t1: float
    category: str
    node: Optional[int] = None
    dst: Optional[int] = None
    entity: Optional[str] = None

    @property
    def width(self) -> Fraction:
        return Fraction(self.t1) - Fraction(self.t0)


def _walk(pag: ProgramActivityGraph) -> list[PathSegment]:
    """Backward walk from (end_node, wall) to time 0."""
    segments: list[PathSegment] = []
    wall = pag.wall
    if wall <= 0:
        return segments
    node = pag.end_node
    t = wall
    total = sum(len(c) for c in pag.slices.values()) + len(pag.wires)
    budget = 4 * total + 64
    while t > 0 and budget > 0:
        budget -= 1
        idx = pag.slice_index_before(node, t)
        if idx < 0:
            segments.append(PathSegment(0.0, t, "unattributed", node=node))
            break
        sl = pag.slices[node][idx]
        if sl.end < t:
            # Nothing occupies (sl.end, t): either the wall outlived the
            # end node's last charge, or a hop landed on a send that was
            # not a charge boundary.  Surface it, keep the partition.
            segments.append(PathSegment(sl.end, t, "unattributed", node=node))
            t = sl.end
            continue
        segments.append(
            PathSegment(sl.start, t, sl.category, node=node, entity=sl.entity)
        )
        t = sl.start
        if t <= 0:
            break
        prev_end = pag.slices[node][idx - 1].end if idx > 0 else 0.0
        if prev_end == t:
            continue  # back-to-back charges: stay on this node
        # A gap ended exactly at t: find its trigger.
        wire = _arrival_at(pag, node, t)
        if wire is not None:
            segments.append(
                PathSegment(
                    wire.send_ts, t, wire.category,
                    node=wire.src, dst=node, entity=wire.entity,
                )
            )
            node = wire.src
            t = wire.send_ts
            continue
        prev_tx = _timeout_source(pag, node, t)
        if prev_tx is not None:
            segments.append(PathSegment(prev_tx, t, "retransmit", node=node))
            t = prev_tx
            continue
        segments.append(PathSegment(prev_end, t, "unattributed", node=node))
        t = prev_end
    segments.reverse()
    return segments


def _arrival_at(pag: ProgramActivityGraph, node: int, t: float) -> Optional[WireEdge]:
    """First delivery at exactly (node, t) that makes backward progress."""
    for wire in pag.arrivals.get(node, {}).get(t, ()):  # stream order
        if wire.send_ts < t:
            return wire
    return None


def _timeout_source(pag: ProgramActivityGraph, node: int, t: float) -> Optional[float]:
    """Previous transmission time explaining a timeout firing at (node, t)."""
    for dst, seq in pag.timeouts.get(node, {}).get(t, ()):
        sends = pag.sends_by_key.get((node, dst, seq))
        if not sends:
            continue
        from bisect import bisect_left

        i = bisect_left(sends, t) - 1
        if i >= 0 and sends[i] < t:
            return sends[i]
    return None


# -- what-if projections (forward longest-path DP) -------------------------


def _longest_path(
    pag: ProgramActivityGraph,
    wire_weight,
    slice_weight,
) -> Fraction:
    """Longest path through the PAG under the given edge weights.

    Slices sorted by original start time are a valid topological order:
    every in-edge of a slice comes from a strictly earlier-starting
    slice (same-node predecessor, a sender whose charge ended at or
    before this slice's start, or a previous transmission).  Weights
    must never exceed the real intervals, which keeps every projection
    a lower bound on the measured wall clock.
    """
    order: list[tuple[float, int, int]] = []
    for node, chain in pag.slices.items():
        for i, sl in enumerate(chain):
            order.append((sl.start, node, i))
    order.sort()

    # Map each delivery/timeout to the first slice with start >= its ts.
    from bisect import bisect_left

    incoming_wires: dict[tuple[int, int], list[WireEdge]] = {}
    for wire in pag.wires:
        starts = pag.starts.get(wire.dst)
        if not starts:
            continue
        j = bisect_left(starts, wire.deliver_ts)
        if j < len(starts):
            incoming_wires.setdefault((wire.dst, j), []).append(wire)
    incoming_timeouts: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for node, by_ts in pag.timeouts.items():
        starts = pag.starts.get(node)
        if not starts:
            continue
        for ts in by_ts:
            prev_tx = _timeout_source(pag, node, ts)
            if prev_tx is None:
                continue
            j = bisect_left(starts, ts)
            if j < len(starts):
                incoming_timeouts.setdefault((node, j), []).append((prev_tx, ts))

    dist_end: dict[tuple[int, int], Fraction] = {}
    chain_dist: dict[int, Fraction] = {}
    zero = Fraction(0)
    for _start, node, i in order:
        sl = pag.slices[node][i]
        d = chain_dist.get(node, zero)  # same-node order edge, weight 0
        for wire in incoming_wires.get((node, i), ()):
            src_idx = pag.ends_index.get(wire.src, {}).get(wire.send_ts)
            if src_idx is None:
                # Sender boundary unknown (e.g. an uncharged control
                # send): anchor at its absolute timestamp, which can
                # only make the projection larger, never smaller.
                src_d = Fraction(wire.send_ts)
            else:
                src_d = dist_end.get((wire.src, src_idx), Fraction(wire.send_ts))
            cand = src_d + wire_weight(wire)
            if cand > d:
                d = cand
        for prev_tx, ts in incoming_timeouts.get((node, i), ()):
            src_idx = pag.ends_index.get(node, {}).get(prev_tx)
            src_d = (
                dist_end[(node, src_idx)] if src_idx is not None else Fraction(prev_tx)
            )
            cand = src_d + (Fraction(ts) - Fraction(prev_tx))
            if cand > d:
                d = cand
        de = d + slice_weight(sl)
        dist_end[(node, i)] = de
        chain_dist[node] = de
    # The run ends at the scheduler-finish anchors, NOT at the latest
    # charge: trailing transport acks run after the wall clock and are
    # off-path by definition.  Each finish instant is the end of that
    # node's last scheduler-side charge, so anchor the target there.
    best = zero
    anchored = False
    for node, finish in pag.finish_ts.items():
        idx = pag.ends_index.get(node, {}).get(finish)
        if idx is None:
            idx = pag.slice_index_before(node, finish)
        d = dist_end.get((node, idx))
        if d is not None:
            anchored = True
            if d > best:
                best = d
    if not anchored and dist_end:  # old trace without sched_finish markers
        best = max(dist_end.values())
    return best


def _real_wire(w: WireEdge) -> Fraction:
    return Fraction(w.deliver_ts) - Fraction(w.send_ts)


def _real_slice(s: Slice) -> Fraction:
    return Fraction(s.end) - Fraction(s.start)


def _projections(pag: ProgramActivityGraph) -> tuple[dict[str, Fraction], bool]:
    zero = Fraction(0)
    measured = _longest_path(pag, _real_wire, _real_slice)
    scenarios = {
        "zero_latency_network": _longest_path(pag, lambda w: zero, _real_slice),
        # Prefetch hides demand data movement: diff round trips under
        # LRC, whole-page fetch legs under HLRC/SC.  Invalidations stay
        # — no amount of prefetching removes an ownership transfer.
        "perfect_prefetch": _longest_path(
            pag,
            lambda w: zero if w.category in ("diff_rtt", "page_fetch") else _real_wire(w),
            _real_slice,
        ),
        "zero_cost_switch": _longest_path(
            pag,
            _real_wire,
            lambda s: zero if s.name == "mt_overhead" else _real_slice(s),
        ),
    }
    floor = zero
    for chain in pag.slices.values():
        busy = sum((_real_slice(s) for s in chain if s.name == "busy"), zero)
        if busy > floor:
            floor = busy
    scenarios["compute_floor"] = floor
    dp_identity = measured == Fraction(pag.wall)
    return scenarios, dp_identity


# -- result assembly -------------------------------------------------------


@dataclass
class CritpathResult:
    """Everything the ``critpath`` report section carries."""

    wall: float
    segments: list[PathSegment]
    pag: ProgramActivityGraph
    blame: dict[str, Fraction] = field(default_factory=dict)
    entities: dict[str, Fraction] = field(default_factory=dict)
    on_path: dict[int, Fraction] = field(default_factory=dict)
    epochs: list[dict[str, Any]] = field(default_factory=list)
    what_if: dict[str, Fraction] = field(default_factory=dict)
    identity_exact: bool = False
    dp_identity_exact: bool = False
    epochs_exact: bool = False
    wall_from_finish: bool = True

    @property
    def path_length(self) -> Fraction:
        return sum((s.width for s in self.segments), Fraction(0))

    @property
    def unattributed(self) -> Fraction:
        return self.blame.get("unattributed", Fraction(0))

    @property
    def hops(self) -> int:
        return sum(1 for s in self.segments if s.dst is not None)

    def flows(self) -> list[dict[str, Any]]:
        """Cross-node hops, for Perfetto flow-event export."""
        return [
            {
                "src": s.node,
                "src_ts": s.t0,
                "dst": s.dst,
                "dst_ts": s.t1,
                "category": s.category,
            }
            for s in self.segments
            if s.dst is not None
        ]

    def dwells(self) -> list[dict[str, Any]]:
        """Maximal same-node path intervals, for the export track."""
        out: list[dict[str, Any]] = []
        for s in self.segments:
            if s.dst is not None or s.node is None:
                continue
            if out and out[-1]["node"] == s.node and out[-1]["end"] == s.t0:
                out[-1]["end"] = s.t1
            else:
                out.append({"node": s.node, "start": s.t0, "end": s.t1})
        return out

    def to_dict(self) -> dict[str, Any]:
        blame = {k: float(v) for k, v in sorted(self.blame.items())}
        hot = sorted(self.entities.items(), key=lambda kv: (-kv[1], kv[0]))
        per_node = []
        wall_f = Fraction(self.wall)
        for node in range(self.pag.num_nodes):
            on = self.on_path.get(node, Fraction(0))
            per_node.append(
                {
                    "node": node,
                    "on_path_us": float(on),
                    "slack_us": float(wall_f - on),
                    "idle_us": self.pag.idle_us.get(node, 0.0),
                }
            )
        return {
            "version": SECTION_VERSION,
            "wall_time_us": self.wall,
            "path_us": float(self.path_length),
            "identity_exact": self.identity_exact,
            "dp_identity_exact": self.dp_identity_exact,
            "epochs_exact": self.epochs_exact,
            "wall_from_finish": self.wall_from_finish,
            "unattributed_us": float(self.unattributed),
            "events_dropped": self.pag.events_dropped,
            "dangling_arrivals": self.pag.dangling_arrivals,
            "segments": len(self.segments),
            "hops": self.hops,
            "blame_us": blame,
            "hot_entities": [
                {"entity": k, "us": float(v)} for k, v in hot[:_TOP_ENTITIES]
            ],
            "per_node": per_node,
            "epochs": self.epochs,
            "what_if_us": {k: float(v) for k, v in sorted(self.what_if.items())},
            "flows": self.flows(),
            "dwells": self.dwells(),
        }


def _split_epochs(
    segments: list[PathSegment], bounds: list[float], wall: float
) -> tuple[list[dict[str, Any]], bool]:
    """Per-epoch blame tables; exact iff each epoch's blame sums to its span."""
    edges = [0.0] + [b for b in bounds if 0.0 < b < wall] + [wall]
    tables: list[dict[str, Fraction]] = [dict() for _ in range(len(edges) - 1)]
    ent_tables: list[dict[str, Fraction]] = [dict() for _ in range(len(edges) - 1)]
    from bisect import bisect_right

    for seg in segments:
        lo, hi = Fraction(seg.t0), Fraction(seg.t1)
        # First epoch whose right edge exceeds seg.t0.
        e = max(0, bisect_right(edges, seg.t0) - 1)
        e = min(e, len(tables) - 1)
        while lo < hi and e < len(tables):
            right = Fraction(edges[e + 1])
            take = min(hi, right) - lo
            if take > 0:
                tables[e][seg.category] = tables[e].get(seg.category, Fraction(0)) + take
                if seg.entity is not None:
                    ent_tables[e][seg.entity] = (
                        ent_tables[e].get(seg.entity, Fraction(0)) + take
                    )
            lo = min(hi, right)
            e += 1
    out: list[dict[str, Any]] = []
    exact = True
    for i, table in enumerate(tables):
        span = Fraction(edges[i + 1]) - Fraction(edges[i])
        total = sum(table.values(), Fraction(0))
        if total != span:
            exact = False
        waits = {
            k: v for k, v in table.items() if k not in ("cpu", "unattributed")
        }
        top_wait = (
            min(
                (k for k, v in waits.items() if v == max(waits.values())),
            )
            if waits
            else None
        )
        ents = ent_tables[i]
        top_entity = (
            sorted(ents.items(), key=lambda kv: (-kv[1], kv[0]))[0][0] if ents else None
        )
        out.append(
            {
                "epoch": i,
                "start": edges[i],
                "end": edges[i + 1],
                "span_us": float(span),
                "blame_us": {k: float(v) for k, v in sorted(table.items())},
                "top_wait": top_wait,
                "top_entity": top_entity,
            }
        )
    return out, exact


def analyze_pag(pag: ProgramActivityGraph) -> CritpathResult:
    """Run the full analysis over an already-built PAG."""
    segments = _walk(pag)
    result = CritpathResult(
        wall=pag.wall,
        segments=segments,
        pag=pag,
        wall_from_finish=bool(pag.finish_ts),
    )
    for seg in segments:
        w = seg.width
        result.blame[seg.category] = result.blame.get(seg.category, Fraction(0)) + w
        if seg.entity is not None:
            result.entities[seg.entity] = result.entities.get(seg.entity, Fraction(0)) + w
        if seg.dst is None and seg.node is not None:
            result.on_path[seg.node] = result.on_path.get(seg.node, Fraction(0)) + w
    result.identity_exact = (
        result.path_length == Fraction(pag.wall)
        and sum(result.blame.values(), Fraction(0)) == Fraction(pag.wall)
        and _contiguous(segments, pag.wall)
    )
    result.epochs, result.epochs_exact = _split_epochs(
        segments, pag.barrier_releases, pag.wall
    )
    result.what_if, result.dp_identity_exact = _projections(pag)
    return result


def _contiguous(segments: list[PathSegment], wall: float) -> bool:
    if not segments:
        return wall == 0
    if segments[0].t0 != 0.0 or segments[-1].t1 != wall:
        return False
    return all(a.t1 == b.t0 for a, b in zip(segments, segments[1:]))


def analyze_events(
    events: Iterable[Any], events_dropped: int = 0
) -> CritpathResult:
    """Build the PAG from trace events (or JSONL rows) and analyze it."""
    return analyze_pag(build_pag(events, events_dropped=events_dropped))
