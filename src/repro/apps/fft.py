"""FFT: the SPLASH-2 six-step 1-D complex FFT.

``n = m*m`` points are viewed as an m x m matrix; the six steps are
transpose, row FFTs, twiddle multiply, transpose, row FFTs, transpose.
The transposes are all-to-all communication: every thread reads a column
block out of every other thread's rows — the dominant source of remote
misses (the paper measures FFT at ~52% memory stall time).

Prefetching follows the compiler-inserted scheme of Section 3.2:
software-pipelined prefetches run a fixed distance ahead of the
transpose loop — and, like the SUIF compiler, cannot distinguish private
from shared rows, so local rows are prefetched too (the paper's 98%
unnecessary-prefetch rate for FFT).

Paper parameters: 256K points.  Scaled default: m=96 (9216 points).
"""

from __future__ import annotations

import numpy as np

from repro.api.ops import Barrier, Compute, Prefetch
from repro.apps.base import BARRIER_MAIN, AppBase, block_range

__all__ = ["Fft", "six_step_reference"]


def six_step_reference(x: np.ndarray, m: int) -> np.ndarray:
    """Sequential six-step FFT (equals ``np.fft.fft(x)``)."""
    n = m * m
    a = x.reshape(m, m)
    b = np.fft.fft(a.T.copy(), axis=1)
    i = np.arange(m).reshape(m, 1)
    j = np.arange(m).reshape(1, m)
    b = b * np.exp(-2j * np.pi * i * j / n)
    c = np.fft.fft(b.T.copy(), axis=1)
    return c.T.copy().reshape(n)


class Fft(AppBase):
    """Six-step FFT over the software DSM."""

    name = "FFT"
    #: Calibrated effective compute rate: preserves the paper-scale
    #: compute-to-communication ratio at the scaled problem size
    #: (see DESIGN.md, "calibration").
    mflops = 1.30

    def __init__(self, m: int = 96, prefetch_distance: int = 4) -> None:
        super().__init__()
        if m < 4:
            raise ValueError("m must be >= 4")
        self.m = m
        self.n = m * m
        self.prefetch_distance = prefetch_distance
        self._input: np.ndarray | None = None

    def setup(self, runtime) -> None:
        m = self.m
        # complex128 stored as 2 float64 per cell -> 16 bytes.
        self.mat_a = runtime.alloc_matrix("fft.a", np.complex128, m, m)
        self.mat_b = runtime.alloc_matrix("fft.b", np.complex128, m, m)
        rng = runtime.random.stream("fft.init")
        self._input = (rng.random(self.n) + 1j * rng.random(self.n)).astype(np.complex128)

    # -- phases -----------------------------------------------------------------

    def _transpose(self, src, dst, lo, hi, phase_tag):
        """dst[i][j] = src[j][i] for the thread's dst rows [lo, hi)."""
        m = self.m
        width = hi - lo
        local = np.empty((width, m), dtype=np.complex128)
        distance = self.prefetch_distance
        if self.use_prefetch:
            # Compiler-style insertion: issue the whole phase's source
            # rows up front (strip-mined into windows), including local
            # rows — the compiler cannot distinguish private data, which
            # is what drives FFT's huge unnecessary-prefetch rate.
            for window_start in range(0, m, max(1, distance)):
                window = range(window_start, min(window_start + distance, m))
                yield Prefetch.of(
                    [src.row_region(row) for row in window],
                    dedup_key=(
                        f"fft:{phase_tag}:{window_start}" if self.prefetch_dedup else None
                    ),
                )
        for j in range(m):
            segment = yield src.read_cell_span(j, lo, width)
            local[:, j] = np.asarray(segment)
            yield Compute(self.flops_us(2 * width))
        for i in range(width):
            yield dst.write_row(lo + i, local[i])

    def _row_ffts(self, mat, lo, hi, twiddle: bool):
        m = self.m
        n = self.n
        fft_flops = 5 * m * np.log2(m)
        cols = np.arange(m)
        for i in range(lo, hi):
            row = yield mat.read_row(i)
            values = np.fft.fft(np.asarray(row))
            yield Compute(self.flops_us(fft_flops))
            if twiddle:
                values = values * np.exp(-2j * np.pi * i * cols / n)
                yield Compute(self.flops_us(8 * m))
            yield mat.write_row(i, values)

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        m = self.m
        if tid == 0:
            yield Compute(self.flops_us(self.n))
            yield self.mat_a.write_rows(0, self._input.reshape(m, m))
        yield Barrier(BARRIER_MAIN)

        lo, hi = block_range(m, threads, tid)
        yield from self._transpose(self.mat_a, self.mat_b, lo, hi, "t1")
        yield Barrier(BARRIER_MAIN)
        yield from self._row_ffts(self.mat_b, lo, hi, twiddle=True)
        yield Barrier(BARRIER_MAIN)
        yield from self._transpose(self.mat_b, self.mat_a, lo, hi, "t2")
        yield Barrier(BARRIER_MAIN)
        yield from self._row_ffts(self.mat_a, lo, hi, twiddle=False)
        yield Barrier(BARRIER_MAIN)
        yield from self._transpose(self.mat_a, self.mat_b, lo, hi, "t3")
        yield Barrier(BARRIER_MAIN)

    def verify(self, runtime) -> None:
        expected = np.fft.fft(self._input)
        actual = runtime.read_matrix(self.mat_b).reshape(self.n)
        if not np.allclose(actual, expected, rtol=1e-8, atol=1e-8):
            worst = np.abs(actual - expected).max()
            raise AssertionError(f"FFT mismatch: max abs error {worst}")
        reference = six_step_reference(self._input, self.m)
        assert np.allclose(reference, expected, rtol=1e-8, atol=1e-8)
