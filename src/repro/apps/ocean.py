"""OCEAN: large-scale ocean circulation (SPLASH-2), reduced to its
dominant communication structure.

The full SPLASH-2 OCEAN alternates many short grid phases per timestep:
stencil sweeps on several grids, global reductions, and a multigrid
solver with restriction/interpolation between levels.  What makes OCEAN
distinctive in the paper is not the physics but the *rate of barriers
relative to computation* — it spends about half its time in
synchronization stalls — plus nearest-neighbour halo misses on two grid
resolutions.  We reproduce exactly that skeleton per timestep:

1. red/black stencil sweep on the fine grid          (2 barriers)
2. residual reduction into a lock-protected scalar    (1 lock + barrier)
3. restriction of the fine grid onto the coarse grid  (1 barrier)
4. red/black sweep on the coarse grid                 (2 barriers)
5. interpolated correction back onto the fine grid    (1 barrier)

Substitution note (DESIGN.md): the hydrodynamics (stream-function
updates, vorticity) are replaced by the same-shaped Laplacian
relaxation; the sharing pattern, phase structure, and barrier rate are
preserved, and every grid value is verified against a sequential
reference.

Paper parameters: 258 x 258 grid.  Scaled default: 66 rows x 512 cols.
"""

from __future__ import annotations

import numpy as np

from repro.api.ops import Acquire, Barrier, Compute, Prefetch, Read, Release, Write
from repro.apps.base import BARRIER_MAIN, AppBase, block_range

__all__ = ["Ocean", "ocean_reference"]

RESIDUAL_LOCK = 1


def _redblack_sweep(grid: np.ndarray, colour: int) -> None:
    """One coloured half-sweep of Jacobi-style relaxation (in place)."""
    rows = grid.shape[0]
    for row in range(1, rows - 1):
        if row % 2 != colour:
            continue
        grid[row, 1:-1] = 0.25 * (
            grid[row - 1, 1:-1] + grid[row + 1, 1:-1] + grid[row, :-2] + grid[row, 2:]
        )


def ocean_reference(fine: np.ndarray, coarse: np.ndarray, timesteps: int) -> tuple:
    """Sequential reference, mirroring the DSM computation loop-for-loop."""
    fine = fine.copy()
    coarse = coarse.copy()
    rows, cols = fine.shape
    crows, ccols = coarse.shape
    residuals = []
    for _ in range(timesteps):
        for colour in (0, 1):
            _redblack_sweep(fine, colour)
        residual = sum(float(np.abs(fine[row, 1:-1]).sum()) for row in range(1, rows - 1))
        residuals.append(residual)
        for crow in range(1, crows - 1):
            frow = 2 * crow
            if frow >= rows - 2:
                continue
            sampled = fine[frow, 2:-2:2][: ccols - 2]
            coarse[crow, 1 : 1 + len(sampled)] = sampled
        for colour in (0, 1):
            _redblack_sweep(coarse, colour)
        width = (cols - 2 + 1) // 2
        for row in range(1, rows - 1):
            if row % 2 != 1:
                continue
            crow = (row - 1) // 2 + 1
            if crow >= crows:
                continue
            fine[row, 1:-1:2] += 0.05 * coarse[crow, 1 : 1 + width]
    return fine, coarse, residuals


class Ocean(AppBase):
    """The OCEAN phase skeleton over the software DSM."""

    name = "OCEAN"
    #: Calibrated (DESIGN.md).
    mflops = 3.3

    def __init__(self, rows: int = 66, cols: int = 512, timesteps: int = 3) -> None:
        super().__init__()
        if rows < 10 or rows % 2 or cols % 2:
            raise ValueError("rows must be even and >= 10; cols even")
        self.rows = rows
        self.cols = cols
        self.timesteps = timesteps
        self.crows = rows // 2 + 1
        self.ccols = cols // 2 + 1
        self._fine0: np.ndarray | None = None
        self._coarse0: np.ndarray | None = None

    def setup(self, runtime) -> None:
        self.fine = runtime.alloc_matrix("ocean.fine", np.float64, self.rows, self.cols)
        self.coarse = runtime.alloc_matrix(
            "ocean.coarse", np.float64, self.crows, self.ccols
        )
        #: lock-protected global residual accumulator, one per timestep.
        self.resid = runtime.alloc_vector("ocean.resid", np.float64, self.timesteps)
        rng = runtime.random.stream("ocean.init")
        self._fine0 = rng.random((self.rows, self.cols))
        self._coarse0 = np.zeros((self.crows, self.ccols))

    # -- helpers -------------------------------------------------------------

    def _sweep(self, mat, lo, hi, colour, halo_prefetch_tag):
        """Red/black half-sweep over owned interior rows of ``mat``."""
        if self.use_prefetch:
            halo = [row for row in (lo - 1, hi) if 0 <= row < mat.rows]
            if halo:
                yield mat.prefetch_row_list(
                    halo,
                    dedup_key=halo_prefetch_tag if self.prefetch_dedup else None,
                )
        # Interior-first: halo-touching rows run last so the prefetch
        # has the interior computation as lead time.
        ordered = [row for row in range(lo + 1, hi - 1)] + [
            row for row in (lo, hi - 1) if lo <= row < hi
        ]
        if hi - lo <= 2:
            ordered = list(range(lo, hi))
        for row in dict.fromkeys(ordered):
            if row % 2 != colour:
                continue
            above = np.asarray((yield mat.read_row(row - 1)))
            below = np.asarray((yield mat.read_row(row + 1)))
            centre = np.asarray((yield mat.read_row(row))).copy()
            yield Compute(self.flops_us(4 * (mat.cols - 2)))
            centre[1:-1] = 0.25 * (above[1:-1] + below[1:-1] + centre[:-2] + centre[2:])
            yield mat.write_row(row, centre)

    # -- program ---------------------------------------------------------------

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        if tid == 0:
            yield Compute(self.flops_us(self.rows * self.cols))
            yield self.fine.write_rows(0, self._fine0)
            yield self.coarse.write_rows(0, self._coarse0)
        yield Barrier(BARRIER_MAIN)

        flo, fhi = block_range(self.rows - 2, threads, tid)
        flo, fhi = flo + 1, fhi + 1
        clo, chi = block_range(self.crows - 2, threads, tid)
        clo, chi = clo + 1, chi + 1

        for step in range(self.timesteps):
            # 1. fine-grid sweep (red, black).
            for colour in (0, 1):
                yield from self._sweep(self.fine, flo, fhi, colour, f"oc:f{step}:{colour}")
                yield Barrier(BARRIER_MAIN)

            # 2. residual reduction under a global lock.
            local_sum = 0.0
            for row in range(flo, fhi):
                values = np.asarray((yield self.fine.read_row(row)))
                local_sum += float(np.abs(values[1:-1]).sum())
            yield Compute(self.flops_us((fhi - flo) * self.cols))
            yield Acquire(RESIDUAL_LOCK)
            current = np.asarray((yield self.resid.read(step, 1)))
            yield self.resid.write(step, current + local_sum)
            yield Compute(2.0)
            yield Release(RESIDUAL_LOCK)
            yield Barrier(BARRIER_MAIN)

            # 3. restriction onto the coarse grid (read remote fine rows).
            if self.use_prefetch:
                remote_rows = [
                    2 * crow
                    for crow in range(clo, chi)
                    if 2 * crow < self.rows - 2 and not flo <= 2 * crow < fhi
                ]
                if remote_rows:
                    yield self.fine.prefetch_row_list(remote_rows)
            for crow in range(clo, chi):
                frow = 2 * crow
                if frow >= self.rows - 2:
                    continue
                fine_row = np.asarray((yield self.fine.read_row(frow)))
                coarse_row = np.asarray((yield self.coarse.read_row(crow))).copy()
                sampled = fine_row[2:-2:2][: self.ccols - 2]
                coarse_row[1 : 1 + len(sampled)] = sampled
                yield Compute(self.flops_us(self.ccols))
                yield self.coarse.write_row(crow, coarse_row)
            yield Barrier(BARRIER_MAIN)

            # 4. coarse-grid sweep (red, black).
            for colour in (0, 1):
                yield from self._sweep(self.coarse, clo, chi, colour, f"oc:c{step}:{colour}")
                yield Barrier(BARRIER_MAIN)

            # 5. interpolated correction back to the fine grid.
            if self.use_prefetch:
                remote_crows = sorted(
                    {
                        (row - 1) // 2 + 1
                        for row in range(flo, fhi)
                        if row % 2 == 1 and (row - 1) // 2 + 1 < self.crows
                    }
                    - set(range(clo, chi))
                )
                if remote_crows:
                    yield self.coarse.prefetch_row_list(remote_crows)
            for row in range(flo, fhi):
                if row % 2 != 1:
                    continue
                crow = (row - 1) // 2 + 1
                if crow >= self.crows:
                    continue
                coarse_row = np.asarray((yield self.coarse.read_row(crow)))
                fine_row = np.asarray((yield self.fine.read_row(row))).copy()
                width = (self.cols - 2 + 1) // 2
                fine_row[1:-1:2] += 0.05 * coarse_row[1 : 1 + width]
                yield Compute(self.flops_us(self.cols))
                yield self.fine.write_row(row, fine_row)
            yield Barrier(BARRIER_MAIN)

    def verify(self, runtime) -> None:
        expected_fine, expected_coarse, _ = ocean_reference(
            self._fine0, self._coarse0, self.timesteps
        )
        actual_fine = runtime.read_matrix(self.fine)
        actual_coarse = runtime.read_matrix(self.coarse)
        if not np.allclose(actual_fine, expected_fine, rtol=1e-10, atol=1e-12):
            worst = np.abs(actual_fine - expected_fine).max()
            raise AssertionError(f"OCEAN fine-grid mismatch: {worst}")
        if not np.allclose(actual_coarse, expected_coarse, rtol=1e-10, atol=1e-12):
            raise AssertionError("OCEAN coarse-grid mismatch")
        # The lock-protected accumulator must hold the global residual;
        # thread contributions sum in arbitrary order, so allow float
        # reassociation slack.
        _, _, expected_residuals = ocean_reference(
            self._fine0, self._coarse0, self.timesteps
        )
        actual_residuals = runtime.read_vector(self.resid)
        for step, expected_value in enumerate(expected_residuals):
            assert np.isclose(actual_residuals[step], expected_value, rtol=1e-9), (
                f"residual mismatch at step {step}: "
                f"{actual_residuals[step]} vs {expected_value}"
            )
