"""The paper's eight benchmark applications over the software DSM."""

from repro.apps.base import AppBase, block_range
from repro.apps.fft import Fft
from repro.apps.lu import Lu, LuContiguous, LuNonContiguous
from repro.apps.ocean import Ocean
from repro.apps.radix import Radix
from repro.apps.registry import APP_ORDER, available_apps, make_app
from repro.apps.sor import Sor
from repro.apps.water import WaterNsquared, WaterSpatial

__all__ = [
    "APP_ORDER",
    "AppBase",
    "Fft",
    "Lu",
    "LuContiguous",
    "LuNonContiguous",
    "Ocean",
    "Radix",
    "Sor",
    "WaterNsquared",
    "WaterSpatial",
    "available_apps",
    "block_range",
    "make_app",
]
