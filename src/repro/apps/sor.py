"""SOR: red-black successive over-relaxation (TreadMarks distribution).

The grid is block-partitioned by rows.  Each iteration has a red phase
and a black phase separated by barriers; a phase updates the rows of its
colour using the two neighbouring rows of the other colour.  The only
remote communication is the halo exchange: the first and last row of
each partition are read by the neighbouring threads, so steady-state
traffic is two pages per neighbour per phase — plus the startup rush
when every node first reads its partition from node 0.

Paper parameters: 2000 x 2000, 50 iterations.  Scaled default: 192 x 512
(one page per row), 6 iterations.
"""

from __future__ import annotations

import numpy as np

from repro.api.ops import Barrier, Compute, Prefetch, Read, Write
from repro.apps.base import BARRIER_MAIN, AppBase, block_range

__all__ = ["Sor", "sor_reference"]


def sor_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential red-black relaxation, bit-identical to the DSM run."""
    grid = grid.copy()
    rows, _cols = grid.shape
    for _ in range(iterations):
        for colour in (0, 1):  # red, black
            for row in range(1, rows - 1):
                if row % 2 != colour:
                    continue
                grid[row, 1:-1] = 0.25 * (
                    grid[row - 1, 1:-1]
                    + grid[row + 1, 1:-1]
                    + grid[row, :-2]
                    + grid[row, 2:]
                )
    return grid


class Sor(AppBase):
    """Red-black SOR over the software DSM."""

    name = "SOR"
    #: Calibrated (DESIGN.md): SOR is the most compute-bound app.
    mflops = 1.45

    def __init__(self, rows: int = 192, cols: int = 512, iterations: int = 6) -> None:
        super().__init__()
        if rows < 8 or cols < 4:
            raise ValueError("grid too small for a meaningful run")
        self.rows = rows
        self.cols = cols
        self.iterations = iterations
        self._initial: np.ndarray | None = None

    # -- program interface ---------------------------------------------------

    def setup(self, runtime) -> None:
        self.grid = runtime.alloc_matrix("sor.grid", np.float64, self.rows, self.cols)
        rng = runtime.random.stream("sor.init")
        self._initial = rng.random((self.rows, self.cols))

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        if tid == 0:
            # Sequential initialization on node 0 (the startup hot spot).
            yield Compute(self.flops_us(self.rows * self.cols))
            yield self.grid.write_rows(0, self._initial)
        yield Barrier(BARRIER_MAIN)

        # Interior rows are partitioned; boundary rows 0 / rows-1 are fixed.
        lo, hi = block_range(self.rows - 2, threads, tid)
        lo, hi = lo + 1, hi + 1
        row_flops = 4 * (self.cols - 2)

        for _iteration in range(self.iterations):
            for colour in (0, 1):
                if self.use_prefetch:
                    # The halo rows are the only remote reads: prefetch
                    # them at phase entry, well before they are used.
                    halo = [row for row in (lo - 1, hi) if 0 <= row < self.rows]
                    yield self.grid.prefetch_row_list(
                        halo,
                        dedup_key=(
                            f"sor:{_iteration}:{colour}:{tid // max(1, threads // runtime.config.num_nodes)}"
                            if self.prefetch_dedup
                            else None
                        ),
                    )
                # Interior-first row order (Mowry's scheduling): the
                # rows touching remote halo data run LAST, giving the
                # halo prefetch the whole interior computation as lead.
                ordered = [row for row in range(lo + 1, hi - 1)] + [
                    row for row in (lo, hi - 1) if lo <= row < hi
                ]
                if hi - lo <= 2:
                    ordered = list(range(lo, hi))
                for row in dict.fromkeys(ordered):
                    if row % 2 != colour:
                        continue
                    above = yield self.grid.read_row(row - 1)
                    below = yield self.grid.read_row(row + 1)
                    centre = yield self.grid.read_row(row)
                    yield Compute(self.flops_us(row_flops))
                    updated = np.asarray(centre, dtype=np.float64).copy()
                    updated[1:-1] = 0.25 * (
                        np.asarray(above)[1:-1]
                        + np.asarray(below)[1:-1]
                        + updated[:-2]
                        + updated[2:]
                    )
                    yield self.grid.write_row(row, updated)
                yield Barrier(BARRIER_MAIN)

    def verify(self, runtime) -> None:
        expected = sor_reference(self._initial, self.iterations)
        actual = runtime.read_matrix(self.grid)
        if not np.allclose(actual, expected, rtol=1e-12, atol=1e-12):
            bad = np.argwhere(~np.isclose(actual, expected, rtol=1e-12, atol=1e-12))
            raise AssertionError(f"SOR mismatch at {len(bad)} cells, first {bad[:3]}")
