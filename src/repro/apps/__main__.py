"""Command-line entry: run one benchmark application.

Examples::

    python -m repro.apps SOR
    python -m repro.apps RADIX --config 4T --nodes 8
    python -m repro.apps FFT --config P --preset small --seed 7
    python -m repro.apps SOR --trace sor.trace.json   # open in Perfetto
    python -m repro.apps SOR --crash 0.5 --loss 0.05  # crash + recovery
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps.registry import APP_ORDER, make_app
from repro.dsm.backend import BACKEND_NAMES
from repro.experiments.runner import parse_label
from repro.network.faults import FaultPlan, NodeCrash
from repro.network.transport import TransportConfig
from repro.telemetry import TelemetryConfig
from repro.trace import PhaseTimeline, TraceConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps",
        description="Run one application on the simulated software DSM.",
    )
    parser.add_argument("app", choices=APP_ORDER)
    parser.add_argument(
        "--config",
        default="O",
        help="paper configuration label: O, P, 2T, 4T, 8T, 2TP, 4TP, 8TP",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument(
        "--preset", default="default", choices=["small", "default", "paper"]
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--protocol",
        default="lrc",
        choices=sorted(BACKEND_NAMES),
        help="coherence backend: lrc (TreadMarks-style lazy release "
        "consistency), hlrc (home-based LRC), sc (single-writer "
        "sequentially-consistent invalidate)",
    )
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--history-prefetch",
        action="store_true",
        help="runtime-driven prefetching instead of explicit insertion",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record an event trace; writes Chrome/Perfetto JSON "
        "(or a flat event log if PATH ends in .jsonl)",
    )
    parser.add_argument(
        "--critpath",
        nargs="?",
        const="-",
        metavar="PATH",
        help="rebuild the program-activity graph after the run and print "
        "the critical-path epoch table plus what-if projections; writes "
        "the critpath report section as JSON to PATH if given",
    )
    parser.add_argument(
        "--crash",
        type=float,
        metavar="FRAC",
        help="crash-stop one node at FRAC of the fault-free wall time "
        "(a baseline run measures it first) and recover from the last "
        "coordinated checkpoint",
    )
    parser.add_argument(
        "--crash-node",
        type=int,
        default=3,
        metavar="N",
        help="which node crashes (default 3; node 0 cannot crash)",
    )
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        metavar="PROB",
        help="datagram drop probability (default 0)",
    )
    parser.add_argument(
        "--sanitizer",
        action="store_true",
        help="check the selected protocol's invariants at every transition",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="use the adaptive transport (RTT-estimated RTO, AIMD "
        "window, backpressure) instead of the static timeout/retry policy",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        metavar="PATH",
        help="collect latency histograms and hot-entity tables; prints a "
        "summary, and writes the full RunReport JSON to PATH if given",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const="-",
        metavar="PATH",
        help="record windowed time series across the stack and grade them "
        "with the watchdog monitors; prints findings, and writes the full "
        "RunReport JSON (telemetry section included) to PATH if given",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=5000.0,
        metavar="US",
        help="telemetry window width in simulated microseconds (default 5000)",
    )
    parser.add_argument(
        "--telemetry-strict",
        action="store_true",
        help="exit nonzero when the watchdog monitors report findings",
    )
    args = parser.parse_args(argv)

    if args.telemetry_strict and args.telemetry is None:
        args.telemetry = "-"  # strict grading implies collection

    threads_per_node, prefetch = parse_label(args.config)
    app = make_app(args.app, args.preset)
    app.use_prefetch = prefetch
    if prefetch and threads_per_node > 1:
        app.prefetch_dedup = True
        if args.app == "RADIX":
            app.throttle_prefetch = True

    def build_config(
        fault_plan=None,
        trace=False,
        sanitizer=False,
        profile=False,
        critpath=False,
        telemetry=False,
    ):
        return RunConfig(
            num_nodes=args.nodes,
            threads_per_node=threads_per_node,
            prefetch=prefetch,
            history_prefetch=args.history_prefetch,
            seed=args.seed,
            protocol=args.protocol,
            fault_plan=fault_plan,
            sanitizer=sanitizer,
            trace=TraceConfig() if trace else None,
            profile=profile,
            critpath=critpath,
            telemetry=(
                TelemetryConfig(interval_us=args.telemetry_interval)
                if telemetry
                else None
            ),
            transport=TransportConfig(adaptive=args.adaptive),
        )

    plan = None
    if args.crash is not None:
        baseline = DsmRuntime(build_config()).execute(
            make_app(args.app, args.preset), verify=False
        )
        crash_at = baseline.wall_time_us * args.crash
        plan = FaultPlan(
            drop_prob=args.loss,
            crashes=(NodeCrash(node=args.crash_node, at_us=crash_at),),
        )
        print(
            f"baseline wall time {baseline.wall_time_us / 1000:.2f} ms; "
            f"crashing node {args.crash_node} at {crash_at / 1000:.2f} ms"
        )
    elif args.loss > 0:
        plan = FaultPlan(drop_prob=args.loss)
    config = build_config(
        fault_plan=plan,
        trace=bool(args.trace),
        sanitizer=args.sanitizer,
        profile=args.profile is not None,
        critpath=args.critpath is not None,
        telemetry=args.telemetry is not None,
    )

    started = time.time()
    runtime = DsmRuntime(config)
    report = runtime.execute(app, verify=not args.no_verify)
    elapsed = time.time() - started

    verified = "skipped" if args.no_verify else "passed"
    print(f"{args.app} [{args.config}] on {args.nodes} nodes ({args.preset} preset)")
    print(f"  verification: {verified}   (simulated in {elapsed:.1f}s real time)")
    print(f"  wall time:    {report.wall_time_us / 1000:.2f} ms simulated")
    print("  breakdown (% of wall x nodes):")
    for category, pct in report.normalized_breakdown().items():
        if pct > 0.05:
            print(f"    {category:18s} {pct:6.1f}")
    events = report.events
    print(
        f"  remote misses {events.remote_misses} (avg {events.avg_miss_stall:.0f} us), "
        f"lock stalls {events.remote_lock_misses}, "
        f"barrier waits {events.barrier_waits}"
    )
    print(
        f"  traffic: {report.total_messages} messages, "
        f"{report.total_kbytes:.0f} KB, {report.message_drops} drops"
    )
    if "ft" in report.extra:
        ft = report.extra["ft"]
        print(
            f"  fault tolerance: {ft['crashes']} crash(es), "
            f"{ft['detections']} detected, {ft['recoveries']} recovered; "
            f"{ft['checkpoints']} checkpoints "
            f"({ft['checkpoint_bytes'] / 1024:.0f} KB), "
            f"downtime {ft['downtime_us'] / 1000:.1f} ms"
        )
    if report.prefetch_stats is not None:
        stats = report.prefetch_stats
        print(
            f"  prefetch: issued {stats.issued}, "
            f"{100 * stats.unnecessary_fraction:.0f}% unnecessary, "
            f"coverage {100 * stats.coverage_factor:.0f}% "
            f"(hits {stats.hits}, late {stats.late}, "
            f"invalidated {stats.invalidated})"
        )
    if args.profile is not None:
        profile = report.profile or {}
        print("  profile (cluster-wide latency, us):")
        for name, entry in profile.get("histograms", {}).items():
            print(
                f"    {name:22s} n={entry['count']:<7d} p50 {entry['p50']:8.0f}  "
                f"p90 {entry['p90']:8.0f}  p99 {entry['p99']:8.0f}  max {entry['max']:8.0f}"
            )
        for counter, value in profile.get("counters", {}).items():
            print(f"    counter {counter} = {value}")
        for table, key in (("hot_pages", "page"), ("hot_locks", "lock"), ("hot_barriers", "barrier")):
            rows = profile.get(table, [])
            if rows:
                print(f"  {table.replace('_', ' ')} (top {len(rows)}):")
                for row in rows:
                    detail = ", ".join(
                        f"{k}={v:.0f}" if isinstance(v, float) else f"{k}={v}"
                        for k, v in row.items()
                        if k != key and v is not None
                    )
                    print(f"    {key} {row[key]}: {detail}")
        if args.profile != "-":
            with open(args.profile, "w") as handle:
                handle.write(report.to_json(indent=2))
                handle.write("\n")
            print(f"  profile report -> {args.profile}")
    telemetry_ok = True
    if args.telemetry is not None:
        section = report.telemetry or {}
        findings = section.get("findings", [])
        print(
            f"  telemetry: {len(section.get('windows', []))} windows of "
            f"{section.get('interval_us', 0):g} us, {len(findings)} finding(s)"
        )
        for finding in findings:
            print(
                f"    [{finding['monitor']}] node {finding['node']}"
                + (f" peer {finding['peer']}" if "peer" in finding else "")
                + f" @ {finding['t_start_us'] / 1000:.1f}-"
                f"{finding['t_end_us'] / 1000:.1f} ms: {finding['detail']}"
            )
        if args.telemetry != "-":
            with open(args.telemetry, "w") as handle:
                handle.write(report.to_json(indent=2))
                handle.write("\n")
            print(f"  telemetry report -> {args.telemetry}")
        if args.telemetry_strict and findings:
            print(f"  telemetry: STRICT — {len(findings)} watchdog finding(s)")
            telemetry_ok = False
    critpath_ok = True
    if args.critpath is not None:
        from repro.critpath.format import format_critpath

        section = report.critpath or {}
        print()
        print(format_critpath(section, label=f"{args.app} {args.config}"))
        if args.critpath != "-":
            import json as _json

            with open(args.critpath, "w") as handle:
                _json.dump(section, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"  critpath report -> {args.critpath}")
        if not section.get("identity_exact", False):
            print("  critpath: IDENTITY VIOLATION (path length != wall clock)")
            critpath_ok = False
    if args.trace:
        tracer = runtime.tracer
        if args.trace.endswith(".jsonl"):
            tracer.write_jsonl(args.trace)
        else:
            # When the run was analyzed, the Perfetto export overlays
            # the critical path (dwell slices plus flow arrows) and the
            # telemetry series (counter tracks) on the same timeline.
            tracer.write_chrome(
                args.trace, critpath=report.critpath, telemetry=report.telemetry
            )
        print(f"  trace: {len(tracer)} events -> {args.trace}")
        if not tracer.complete:
            print(f"  trace: WARNING {tracer.dropped_events} events discarded (ring full)")
        # The accounting audit: the event stream must reproduce the
        # aggregate breakdown exactly.
        mismatches = PhaseTimeline.from_events(tracer.events).verify_against(report)
        if mismatches:
            print("  trace: TIMELINE MISMATCH vs TimeBreakdown accounting:")
            for line in mismatches:
                print(f"    {line}")
            return 1
        print("  trace: PhaseTimeline agrees with TimeBreakdown accounting")
    return 0 if (critpath_ok and telemetry_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
