"""RADIX: the SPLASH-2 parallel integer radix sort.

Each pass sorts one digit: threads build local histograms of their key
slice, a prefix-sum over all histograms assigns every (thread, bucket)
pair its global output offset, and the permutation phase writes each
thread's keys — grouped by bucket — into the destination array at those
offsets.  The permutation scatters writes across the whole destination
array, so every page is written by many threads (heavy false sharing)
and read remotely in the next pass: RADIX is the most
communication-intensive application in the paper (and the one whose
loop structure leaves prefetches no time to hide latency — its
prefetches are issued right before the data is used).

Paper parameters: 2^20 keys, max 2^21, radix 1024.  Scaled default:
16384 keys, max 2^21, radix 128 (3 passes).
"""

from __future__ import annotations

import numpy as np

from repro.api.ops import Barrier, Compute, Prefetch
from repro.apps.base import BARRIER_MAIN, AppBase, block_range

__all__ = ["Radix"]


class Radix(AppBase):
    """Parallel radix sort over the software DSM."""

    name = "RADIX"
    #: Calibrated (DESIGN.md): RADIX is the least compute-bound app.
    mflops = 4.4

    def __init__(
        self, num_keys: int = 16384, max_key: int = 1 << 21, digit_bits: int = 7
    ) -> None:
        super().__init__()
        if num_keys < 64:
            raise ValueError("need at least 64 keys")
        if not 1 <= digit_bits <= 16:
            raise ValueError("digit_bits must be in [1, 16]")
        self.num_keys = num_keys
        self.max_key = max_key
        self.digit_bits = digit_bits
        self.radix = 1 << digit_bits
        # Keys are drawn from [0, max_key), so the widest key has
        # (max_key - 1).bit_length() bits.
        key_bits = max(1, (max_key - 1).bit_length())
        self.passes = -(-key_bits // digit_bits)
        self._input: np.ndarray | None = None

    def setup(self, runtime) -> None:
        self.arr_a = runtime.alloc_vector("radix.a", np.int64, self.num_keys)
        self.arr_b = runtime.alloc_vector("radix.b", np.int64, self.num_keys)
        threads = runtime.config.total_threads
        self.hist = runtime.alloc_matrix("radix.hist", np.int64, threads, self.radix)
        self.offsets = runtime.alloc_matrix("radix.off", np.int64, threads, self.radix)
        rng = runtime.random.stream("radix.keys")
        self._input = rng.integers(0, self.max_key, self.num_keys).astype(np.int64)

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        if tid == 0:
            yield Compute(self.flops_us(self.num_keys))
            yield self.arr_a.write(0, self._input)
        yield Barrier(BARRIER_MAIN)

        lo, hi = block_range(self.num_keys, threads, tid)
        count = hi - lo
        src, dst = self.arr_a, self.arr_b
        for pass_no in range(self.passes):
            shift = pass_no * self.digit_bits
            # Phase 1: local histogram of the thread's slice of src.
            if self.use_prefetch:
                # The source slice was scattered here by the previous
                # pass — prefetch it at phase entry, well ahead of use.
                step = 2 if (self.throttle_prefetch and pass_no % 1 == 0) else 1
                region = src.region(lo, count)
                if step == 1:
                    yield Prefetch.of([region])
                else:
                    # Throttled: every other page only (Section 5.1).
                    page = runtime.config.page_size
                    addr, nbytes = region
                    pages = range(addr // page, (addr + nbytes + page - 1) // page, step)
                    yield Prefetch.of([(p * page, 1) for p in pages])
            keys = np.asarray((yield src.read(lo, count)))
            digits = (keys >> shift) & (self.radix - 1)
            local_hist = np.bincount(digits, minlength=self.radix).astype(np.int64)
            yield Compute(self.flops_us(2 * count))
            yield self.hist.write_row(tid, local_hist)
            yield Barrier(BARRIER_MAIN)

            # Phase 2: thread 0 computes global offsets.
            if tid == 0:
                all_hists = np.asarray(
                    (yield self.hist.read_rows(0, threads))
                ).reshape(threads, self.radix)
                totals = all_hists.sum(axis=0)
                bucket_starts = np.concatenate(([0], np.cumsum(totals)[:-1]))
                within = np.cumsum(all_hists, axis=0) - all_hists
                offsets = bucket_starts[None, :] + within
                yield Compute(self.flops_us(3 * threads * self.radix))
                yield self.offsets.write_rows(0, offsets.astype(np.int64))
            yield Barrier(BARRIER_MAIN)

            # Phase 3: permutation — scatter keys into dst, grouped by
            # bucket (stable: threads in tid order within each bucket).
            my_offsets = np.asarray((yield self.offsets.read_row(tid)))
            order = np.argsort(digits, kind="stable")
            yield Compute(self.flops_us(5 * count))
            sorted_digits = digits[order]
            sorted_keys = keys[order]
            if count == 0:
                starts = ends = np.array([], dtype=np.int64)
            else:
                boundaries = np.flatnonzero(np.diff(sorted_digits)) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [count]))
            throttle = self.use_prefetch and self.throttle_prefetch
            runs = [
                (int(my_offsets[int(sorted_digits[s])]), s, e)
                for s, e in zip(starts, ends)
            ]
            distance = 4  # software-pipelining depth
            for run_index, (position, start, end) in enumerate(runs):
                if self.use_prefetch and run_index % distance == 0:
                    # Software-pipelined destination prefetches: the
                    # addresses become known only inside the permutation
                    # loop, so the pipeline depth is all the lead RADIX
                    # can get — they are still largely "too late", the
                    # paper's RADIX signature (Section 5.2).  The
                    # combined scheme throttles every other window.
                    window = runs[run_index + distance : run_index + 2 * distance]
                    if throttle:
                        window = window[::2]
                    if window:
                        yield Prefetch.of(
                            [(dst.addr(p), (e - s) * 8) for p, s, e in window]
                        )
                yield dst.write(position, sorted_keys[start:end])
            yield Barrier(BARRIER_MAIN)
            src, dst = dst, src

        # One more barrier so the final array is globally consistent.
        yield Barrier(BARRIER_MAIN)

    def verify(self, runtime) -> None:
        final = self.arr_a if self.passes % 2 == 0 else self.arr_b
        result = runtime.read_vector(final)
        assert np.array_equal(np.sort(self._input), result), "RADIX output not sorted"
