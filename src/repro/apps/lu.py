"""LU: SPLASH-2 blocked dense LU factorization (no pivoting).

Blocks are assigned to threads in a 2-D cyclic layout.  Step ``k``
factors the diagonal block, then updates the perimeter (row/column
``k``), then the interior — with barriers between the three phases.
Readers fault on the diagonal and perimeter blocks they consume.

Two memory layouts, as in the paper:

- **LU-CONT**: each block is contiguous and page-aligned — a block read
  touches exactly its own pages (paper: block size 32, contiguous).
- **LU-NCONT**: the matrix is row-major, so a block is a set of strided
  row segments; neighbouring blocks share pages and the writers
  false-share heavily (paper: block size 128, non-contiguous).

Paper parameters: 1024 x 1024.  Scaled default: 192 x 192, B=32.
"""

from __future__ import annotations

import numpy as np

from repro.api.ops import Barrier, Compute, Prefetch
from repro.apps.base import BARRIER_MAIN, AppBase

__all__ = ["Lu", "LuContiguous", "LuNonContiguous", "lu_reference"]


def factor_diagonal(block: np.ndarray) -> None:
    """In-place LU of a block (unit lower diagonal)."""
    size = block.shape[0]
    for r in range(size - 1):
        block[r + 1 :, r] /= block[r, r]
        block[r + 1 :, r + 1 :] -= np.outer(block[r + 1 :, r], block[r, r + 1 :])


def solve_column_block(block: np.ndarray, diag: np.ndarray) -> None:
    """A_ik <- A_ik * U_kk^{-1} (in place)."""
    size = diag.shape[0]
    for c in range(size):
        block[:, c] -= block[:, :c] @ diag[:c, c]
        block[:, c] /= diag[c, c]


def solve_row_block(block: np.ndarray, diag: np.ndarray) -> None:
    """A_kj <- L_kk^{-1} * A_kj (in place, unit lower L)."""
    size = diag.shape[0]
    for r in range(1, size):
        block[r] -= diag[r, :r] @ block[:r]


def lu_reference(matrix: np.ndarray, block_size: int) -> np.ndarray:
    """Sequential blocked LU, bit-identical to the DSM computation."""
    a = matrix.copy()
    n = a.shape[0]
    nb = n // block_size

    def blk(bi, bj):
        return a[
            bi * block_size : (bi + 1) * block_size,
            bj * block_size : (bj + 1) * block_size,
        ]

    for k in range(nb):
        factor_diagonal(blk(k, k))
        for i in range(k + 1, nb):
            solve_column_block(blk(i, k), blk(k, k))
            solve_row_block(blk(k, i), blk(k, k))
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                blk(i, j)[...] -= blk(i, k) @ blk(k, j)
    return a


class Lu(AppBase):
    """Blocked LU over the software DSM (both layouts)."""

    def __init__(self, n: int = 192, block_size: int = 32, contiguous: bool = True) -> None:
        super().__init__()
        if n % block_size:
            raise ValueError(f"n={n} must be a multiple of block size {block_size}")
        if n // block_size < 2:
            raise ValueError("need at least a 2x2 grid of blocks")
        self.n = n
        self.block_size = block_size
        self.nb = n // block_size
        self.contiguous = contiguous
        self.name = "LU-CONT" if contiguous else "LU-NCONT"
        self._initial: np.ndarray | None = None

    # -- layout ------------------------------------------------------------

    def setup(self, runtime) -> None:
        n = self.n
        if self.contiguous:
            # One page-aligned segment per block row of blocks: blocks
            # are consecutive B*B cell chunks.
            self.mat = runtime.alloc_matrix(
                "lu.blocks", np.float64, self.nb * self.nb, self.block_size * self.block_size
            )
        else:
            self.mat = runtime.alloc_matrix("lu.rowmajor", np.float64, n, n)
        rng = runtime.random.stream("lu.init")
        base = rng.random((n, n))
        # Diagonally dominant, so factorization without pivoting is stable.
        self._initial = base + np.eye(n) * n

    def owner(self, bi: int, bj: int, threads: int) -> int:
        """2-D scatter decomposition (SPLASH-2): blocks are cyclically
        assigned over a pr x pc processor grid, spreading each step's
        perimeter and interior work over many threads."""
        pr = 1
        for candidate in range(int(threads**0.5), 0, -1):
            if threads % candidate == 0:
                pr = candidate
                break
        pc = threads // pr
        return (bi % pr) * pc + (bj % pc)

    def _read_block(self, bi: int, bj: int):
        """Sub-generator returning the block as a (B, B) array."""
        size = self.block_size
        if self.contiguous:
            row = yield self.mat.read_row(bi * self.nb + bj)
            return np.asarray(row, dtype=np.float64).reshape(size, size).copy()
        block = np.empty((size, size), dtype=np.float64)
        for r in range(size):
            span = yield self.mat.read_cell_span(bi * size + r, bj * size, size)
            block[r] = np.asarray(span)
        return block

    def _write_block(self, bi: int, bj: int, values: np.ndarray):
        size = self.block_size
        if self.contiguous:
            yield self.mat.write_row(bi * self.nb + bj, values.reshape(-1))
            return
        for r in range(size):
            yield self.mat.write_cell_span(bi * size + r, bj * size, values[r])

    def _block_regions(self, bi: int, bj: int) -> list[tuple[int, int]]:
        size = self.block_size
        if self.contiguous:
            return [self.mat.row_region(bi * self.nb + bj)]
        return [
            (self.mat.addr(bi * size + r, bj * size), size * 8) for r in range(size)
        ]

    # -- program -----------------------------------------------------------------

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        size = self.block_size
        if tid == 0:
            yield Compute(self.flops_us(self.n * self.n))
            if self.contiguous:
                for bi in range(self.nb):
                    for bj in range(self.nb):
                        block = self._initial[
                            bi * size : (bi + 1) * size, bj * size : (bj + 1) * size
                        ]
                        yield self.mat.write_row(bi * self.nb + bj, block.reshape(-1))
            else:
                yield self.mat.write_rows(0, self._initial)
        yield Barrier(BARRIER_MAIN)

        block_flops = float(size) ** 3
        for k in range(self.nb):
            # Phase 1: factor the diagonal block.
            if self.owner(k, k, threads) == tid:
                diag = yield from self._read_block(k, k)
                factor_diagonal(diag)
                yield Compute(self.flops_us(block_flops * 2 / 3))
                yield from self._write_block(k, k, diag)
            yield Barrier(BARRIER_MAIN)

            # Phase 2: perimeter row and column.
            if self.use_prefetch and any(
                self.owner(i, k, threads) == tid or self.owner(k, i, threads) == tid
                for i in range(k + 1, self.nb)
            ):
                yield Prefetch.of(
                    self._block_regions(k, k),
                    dedup_key=f"lu:d{k}" if self.prefetch_dedup else None,
                )
            diag = None
            for i in range(k + 1, self.nb):
                mine_col = self.owner(i, k, threads) == tid
                mine_row = self.owner(k, i, threads) == tid
                if not (mine_col or mine_row):
                    continue
                if diag is None:
                    diag = yield from self._read_block(k, k)
                if mine_col:
                    block = yield from self._read_block(i, k)
                    solve_column_block(block, diag)
                    yield Compute(self.flops_us(block_flops))
                    yield from self._write_block(i, k, block)
                if mine_row:
                    block = yield from self._read_block(k, i)
                    solve_row_block(block, diag)
                    yield Compute(self.flops_us(block_flops))
                    yield from self._write_block(k, i, block)
            yield Barrier(BARRIER_MAIN)

            # Phase 3: interior updates.
            if self.use_prefetch:
                needed: list[tuple[int, int]] = []
                for i in range(k + 1, self.nb):
                    for j in range(k + 1, self.nb):
                        if self.owner(i, j, threads) == tid:
                            needed.append((i, k))
                            needed.append((k, j))
                if needed:
                    regions = []
                    for bi, bj in dict.fromkeys(needed):
                        regions.extend(self._block_regions(bi, bj))
                    yield Prefetch.of(
                        regions,
                        dedup_key=f"lu:i{k}" if self.prefetch_dedup else None,
                    )
            col_cache: dict[int, np.ndarray] = {}
            row_cache: dict[int, np.ndarray] = {}
            for i in range(k + 1, self.nb):
                for j in range(k + 1, self.nb):
                    if self.owner(i, j, threads) != tid:
                        continue
                    if i not in col_cache:
                        col_cache[i] = yield from self._read_block(i, k)
                    if j not in row_cache:
                        row_cache[j] = yield from self._read_block(k, j)
                    block = yield from self._read_block(i, j)
                    block -= col_cache[i] @ row_cache[j]
                    yield Compute(self.flops_us(2 * block_flops))
                    yield from self._write_block(i, j, block)
            yield Barrier(BARRIER_MAIN)

    # -- verification ------------------------------------------------------------

    def _result_matrix(self, runtime) -> np.ndarray:
        size = self.block_size
        if not self.contiguous:
            return runtime.read_matrix(self.mat)
        blocks = runtime.read_matrix(self.mat)
        out = np.empty((self.n, self.n), dtype=np.float64)
        for bi in range(self.nb):
            for bj in range(self.nb):
                out[bi * size : (bi + 1) * size, bj * size : (bj + 1) * size] = blocks[
                    bi * self.nb + bj
                ].reshape(size, size)
        return out

    def verify(self, runtime) -> None:
        expected = lu_reference(self._initial, self.block_size)
        actual = self._result_matrix(runtime)
        if not np.allclose(actual, expected, rtol=1e-10, atol=1e-10):
            worst = np.abs(actual - expected).max()
            raise AssertionError(f"{self.name} mismatch: max abs error {worst}")
        # Independent check: L*U reconstructs the input matrix.
        lower = np.tril(actual, -1) + np.eye(self.n)
        upper = np.triu(actual)
        assert np.allclose(lower @ upper, self._initial, rtol=1e-6, atol=1e-6)


class LuContiguous(Lu):
    """LU-CONT: contiguous page-aligned blocks."""

    #: Calibrated (DESIGN.md).
    mflops = 2.2

    def __init__(self, n: int = 256, block_size: int = 32) -> None:
        super().__init__(n=n, block_size=block_size, contiguous=True)


class LuNonContiguous(Lu):
    """LU-NCONT: row-major layout; blocks false-share pages."""

    #: Calibrated (DESIGN.md).
    mflops = 3.0

    def __init__(self, n: int = 192, block_size: int = 32) -> None:
        super().__init__(n=n, block_size=block_size, contiguous=False)
