"""Shared machinery for the benchmark applications.

All eight applications follow the SPLASH-2 conventions:

- thread 0 initializes shared data, then everyone meets at barrier 0
  (this makes node 0 the startup hot spot, as in the paper);
- work is block-partitioned over the *global* thread count, so the same
  program runs single-threaded or multithreaded per node;
- computation is charged through :func:`AppBase.flops_us`, calibrated to
  a 133 MHz PowerPC 604-class machine.

Each application also knows how to insert its own prefetches (Section
3.2): bodies yield :class:`~repro.api.ops.Prefetch` operations, which
are free no-ops when the runtime has prefetching disabled — so one body
serves the O/P/nT/nTP configurations.
"""

from __future__ import annotations

from repro.api.program import Program

__all__ = ["AppBase", "block_range", "BARRIER_MAIN"]

#: The global barrier id every app uses for phase synchronization.
BARRIER_MAIN = 0


def block_range(total: int, parts: int, index: int) -> tuple[int, int]:
    """Contiguous block decomposition: [lo, hi) for block ``index``.

    Remainders are spread over the leading blocks, so sizes differ by at
    most one.
    """
    if parts <= 0 or not 0 <= index < parts:
        raise ValueError(f"bad partition {index}/{parts}")
    base, extra = divmod(total, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


class AppBase(Program):
    """Base class adding compute-cost accounting and prefetch gating."""

    #: Effective floating-point throughput used to convert work into
    #: simulated microseconds (133 MHz PowerPC 604 class, ~0.5 flop/cycle).
    mflops: float = 66.0

    def __init__(self) -> None:
        #: Set by experiment configs: issue prefetch ops from the body.
        self.use_prefetch = False
        #: RADIX's combined-scheme throttling (Section 5.1) and the
        #: redundant-prefetch flag optimization are driven from here.
        self.throttle_prefetch = False
        self.prefetch_dedup = False

    def flops_us(self, flops: float) -> float:
        """Microseconds of CPU time for ``flops`` floating-point ops."""
        return flops / self.mflops

    def total_threads(self, runtime) -> int:
        return runtime.config.total_threads

    def force_partitions(self, runtime) -> int:
        """Lock-partition count for shared accumulation structures.

        A property of the data decomposition (one per processor), NOT of
        the thread count — the paper's Table 2 shows total lock
        operations unchanged as threads per processor grow.
        """
        return runtime.config.num_nodes
