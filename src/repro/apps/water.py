"""WATER-NSQ and WATER-SP: molecular dynamics (SPLASH-2).

Both simulate forces among water molecules over a few timesteps; they
differ in how interaction partners are found, which completely changes
the sharing pattern:

- **WATER-NSQ** (O(n^2)): every molecule interacts with the next n/2
  molecules (cyclically), so each thread scatters force contributions
  into every other thread's partition, accumulating under per-partition
  locks — the paper's prototypical lock-bound application ("the major
  misses occur when updating shared locations protected by locks").
- **WATER-SP** (O(n)): molecules live in a uniform grid of cells and
  interact only with neighbouring cells.  Molecule records are chased
  through per-cell linked lists (head/next pointers embedded in the
  records), which defeats address prediction; the prefetch strategy is
  the paper's history scheme — record the traversal order once, then
  prefetch through the recorded list.

Substitution note (DESIGN.md): the intra-molecule potentials of the
original are replaced by a soft pairwise central force on point
molecules; the interaction structure (who reads/writes whom, under
which lock, between which barriers) is preserved and all forces are
verified against a sequential reference.

Paper parameters: NSQ 512 molecules / 9 steps; SP 4096 molecules.
Scaled defaults: NSQ 192 molecules / 2 steps; SP 512 molecules / 2 steps.
"""

from __future__ import annotations

import numpy as np

from repro.api.ops import Acquire, Barrier, Compute, Prefetch, Read, Release, Write
from repro.apps.base import BARRIER_MAIN, AppBase, block_range

__all__ = ["WaterNsquared", "WaterSpatial", "pair_force"]

#: Lock ids 8.. are partition locks (0..7 reserved for app scalars).
PARTITION_LOCK_BASE = 8

#: Flops charged per pairwise interaction (distance, force, accumulate).
PAIR_FLOPS = 30


def pair_force(pos_i: np.ndarray, pos_j: np.ndarray) -> np.ndarray:
    """Soft central force between two molecules (no singularity)."""
    delta = pos_i - pos_j
    r2 = float(delta @ delta) + 0.05
    return delta / (r2 * r2)


def nsq_pairs(n: int):
    """The SPLASH-2 NSQ pair enumeration: i with the next n//2 molecules."""
    half = n // 2
    for i in range(n):
        for step in range(1, half + 1):
            j = (i + step) % n
            if step == half and n % 2 == 0 and i >= j:
                continue  # each diametrical pair once
            yield i, j


def nsq_reference(positions: np.ndarray) -> np.ndarray:
    """Sequential force computation for WATER-NSQ."""
    n = positions.shape[0]
    forces = np.zeros((n, 3))
    for i, j in nsq_pairs(n):
        f = pair_force(positions[i], positions[j])
        forces[i] += f
        forces[j] -= f
    return forces


class WaterNsquared(AppBase):
    """WATER-NSQ over the software DSM."""

    name = "WATER-NSQ"
    #: Calibrated (DESIGN.md).
    mflops = 7.6

    def __init__(self, num_molecules: int = 192, steps: int = 2, dt: float = 1e-4) -> None:
        super().__init__()
        if num_molecules < 16:
            raise ValueError("need at least 16 molecules")
        self.n = num_molecules
        self.steps = steps
        self.dt = dt
        self._initial: np.ndarray | None = None

    def setup(self, runtime) -> None:
        # positions[i] = (x, y, z); forces likewise.
        self.pos = runtime.alloc_matrix("water.pos", np.float64, self.n, 3)
        self.force = runtime.alloc_matrix("water.force", np.float64, self.n, 3)
        rng = runtime.random.stream("water.init")
        self._initial = rng.random((self.n, 3))
        #: per-processor shared accumulation buffers (Section 4.2: the
        #: paper modified WATER-NSQ to keep one shared copy of the data
        #: structure per processor, merging co-located threads' work
        #: before touching remote memory).
        self._node_acc: dict[tuple[int, int], np.ndarray] = {}

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        if tid == 0:
            yield Compute(self.flops_us(self.n * 3))
            yield self.pos.write_rows(0, self._initial)
            yield self.force.write_rows(0, np.zeros((self.n, 3)))
        yield Barrier(BARRIER_MAIN)

        lo, hi = block_range(self.n, threads, tid)
        for _step in range(self.steps):
            # Read all positions (the n^2 algorithm touches everyone).
            if self.use_prefetch:
                # Hand-tuned insertion (Section 3.2): the position array
                # is written only at barriers, so its write notices are
                # fully known here and the prefetch covers every miss.
                # The loop below is reordered so locally available pairs
                # compute first — that computation is the lead time.
                yield self.pos.prefetch_rows(0, self.n)
            own = np.asarray(
                (yield self.pos.read_rows(lo, hi - lo))
            ).reshape(hi - lo, 3)
            local = np.zeros((self.n, 3))
            half = self.n // 2

            def in_window(i, j):
                step_ = (j - i) % self.n
                if not 1 <= step_ <= half:
                    return False
                if step_ == half and self.n % 2 == 0 and i >= j:
                    return False
                return True

            # Phase A: pairs fully inside the thread's own block (the
            # position rows are local — written here last step).
            pair_count = 0
            for i in range(lo, hi):
                for j in range(lo, hi):
                    if not in_window(i, j):
                        continue
                    f = pair_force(own[i - lo], own[j - lo])
                    local[i] += f
                    local[j] -= f
                    pair_count += 1
            yield Compute(self.flops_us(PAIR_FLOPS * pair_count))

            # Phase B: cross-block pairs; by now the prefetched remote
            # position pages have had phase A as lead time.
            positions = np.asarray(
                (yield self.pos.read_rows(0, self.n))
            ).reshape(self.n, 3)
            pair_count = 0
            for i in range(lo, hi):
                for step_ in range(1, half + 1):
                    j = (i + step_) % self.n
                    if lo <= j < hi:
                        continue  # handled in phase A
                    if step_ == half and self.n % 2 == 0 and i >= j:
                        continue
                    f = pair_force(positions[i], positions[j])
                    local[i] += f
                    local[j] -= f
                    pair_count += 1
            yield Compute(self.flops_us(PAIR_FLOPS * pair_count))

            # Merge into the per-processor shared buffer (Section 4.2's
            # optimization: co-located threads combine their work before
            # any remote accumulation), then one thread per node scatters
            # into the force partitions under their locks.  Lock
            # operations therefore do not grow with the thread count
            # (the paper's Table 2 shows exactly that for WATER-NSQ).
            tpn = runtime.config.threads_per_node
            node_id = tid // tpn
            acc = self._node_acc.setdefault(
                (node_id, _step), np.zeros((self.n, 3))
            )
            acc += local
            yield Compute(self.flops_us(3 * self.n))
            yield Barrier(BARRIER_MAIN)
            # Re-bind from the authoritative store: a barrier is a
            # potential recovery point, and a rollback replaces the
            # buffers (a stale local reference would see the replay's
            # double-accumulated copy).
            acc = self._node_acc[(node_id, _step)]
            if tid % tpn == 0:
                num_parts = self.force_partitions(runtime)
                part_bounds = [
                    block_range(self.n, num_parts, p) for p in range(num_parts)
                ]
                for step_offset in range(num_parts):
                    target = (node_id + step_offset) % num_parts  # stagger
                    plo, phi = part_bounds[target]
                    if not np.any(acc[plo:phi]):
                        continue
                    yield Acquire(PARTITION_LOCK_BASE + target)
                    current = np.asarray(
                        (yield self.force.read_rows(plo, phi - plo))
                    ).reshape(phi - plo, 3)
                    yield Compute(self.flops_us(3 * (phi - plo)))
                    yield self.force.write_rows(plo, current + acc[plo:phi])
                    yield Release(PARTITION_LOCK_BASE + target)
            yield Barrier(BARRIER_MAIN)

            # Advance own molecules, reset own forces.
            my_forces = np.asarray(
                (yield self.force.read_rows(lo, hi - lo))
            ).reshape(hi - lo, 3)
            yield Compute(self.flops_us(6 * (hi - lo)))
            yield self.pos.write_rows(lo, positions[lo:hi] + self.dt * my_forces)
            yield self.force.write_rows(lo, np.zeros((hi - lo, 3)))
            yield Barrier(BARRIER_MAIN)

    def snapshot_local(self):
        # The per-processor accumulation buffers are node-local memory,
        # not DSM state: without checkpointing them a crash rollback
        # would replay threads' ``acc += local`` on top of the discarded
        # execution's values and double-count every contribution.
        return {key: buf.copy() for key, buf in self._node_acc.items()}

    def restore_local(self, snapshot) -> None:
        self._node_acc = snapshot

    def verify(self, runtime) -> None:
        positions = self._initial.copy()
        for _ in range(self.steps):
            forces = nsq_reference(positions)
            positions = positions + self.dt * forces
        actual = runtime.read_matrix(self.pos)
        if not np.allclose(actual, positions, rtol=1e-8, atol=1e-10):
            worst = np.abs(actual - positions).max()
            raise AssertionError(f"WATER-NSQ position mismatch: {worst}")


# ---------------------------------------------------------------------------


def spatial_cells(positions: np.ndarray, cells_per_dim: int):
    """Assign each molecule to a cell of the unit cube."""
    index = np.minimum((positions * cells_per_dim).astype(int), cells_per_dim - 1)
    return index[:, 0] * cells_per_dim**2 + index[:, 1] * cells_per_dim + index[:, 2]


def sp_reference(positions: np.ndarray, cells_per_dim: int) -> np.ndarray:
    """Sequential force computation for WATER-SP (neighbour cells only)."""
    n = positions.shape[0]
    cell_of = spatial_cells(positions, cells_per_dim)
    members: dict[int, list[int]] = {}
    for mol in range(n):
        members.setdefault(int(cell_of[mol]), []).append(mol)
    forces = np.zeros((n, 3))
    c = cells_per_dim
    for i in range(n):
        ci = int(cell_of[i])
        cx, cy, cz = ci // c**2, (ci // c) % c, ci % c
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nx, ny, nz = cx + dx, cy + dy, cz + dz
                    if not (0 <= nx < c and 0 <= ny < c and 0 <= nz < c):
                        continue
                    for j in members.get(nx * c**2 + ny * c + nz, ()):
                        if j <= i:
                            continue
                        f = pair_force(positions[i], positions[j])
                        forces[i] += f
                        forces[j] -= f
    return forces


class WaterSpatial(AppBase):
    """WATER-SP over the software DSM (cell lists, pointer chasing)."""

    name = "WATER-SP"
    #: Calibrated (DESIGN.md).
    mflops = 3.05

    #: doubles per molecule record: x y z fx fy fz next pad
    RECORD_DOUBLES = 8

    def __init__(self, num_molecules: int = 512, steps: int = 2, cells_per_dim: int = 4) -> None:
        super().__init__()
        if num_molecules < 32:
            raise ValueError("need at least 32 molecules")
        self.n = num_molecules
        self.steps = steps
        self.c = cells_per_dim
        self.num_cells = cells_per_dim**3
        self._initial: np.ndarray | None = None

    def setup(self, runtime) -> None:
        # Molecule records scattered across pages; traversal chases the
        # embedded 'next' field, so addresses are unpredictable.
        self.mol = runtime.alloc_matrix(
            "sp.molecules", np.float64, self.n, self.RECORD_DOUBLES
        )
        self.head = runtime.alloc_vector("sp.head", np.float64, self.num_cells)
        self.force = runtime.alloc_matrix("sp.force", np.float64, self.n, 3)
        rng = runtime.random.stream("watersp.init")
        self._initial = rng.random((self.n, 3))
        # Per-node traversal history for the paper's history-based
        # prefetching of recursive structures (Luk & Mowry).
        self._history: dict[int, list[int]] = {}
        #: per-processor shared accumulation buffers (see WATER-NSQ).
        self._node_acc: dict[tuple[int, int], dict] = {}

    def thread_body(self, runtime, tid: int):
        threads = self.total_threads(runtime)
        c = self.c
        if tid == 0:
            yield Compute(self.flops_us(self.n * 8))
            cell_of = spatial_cells(self._initial, c)
            heads = np.full(self.num_cells, -1.0)
            records = np.zeros((self.n, self.RECORD_DOUBLES))
            records[:, :3] = self._initial
            # Build the linked lists: newest-first per cell.
            for mol in range(self.n):
                cell = int(cell_of[mol])
                records[mol, 6] = heads[cell]
                heads[cell] = mol
            yield self.mol.write_rows(0, records)
            yield self.head.write(0, heads)
            yield self.force.write_rows(0, np.zeros((self.n, 3)))
        yield Barrier(BARRIER_MAIN)

        cell_lo, cell_hi = block_range(self.num_cells, threads, tid)
        for step in range(self.steps):
            heads = np.asarray((yield self.head.read(0, self.num_cells)))
            # Gather the molecules of our cells and their neighbours by
            # chasing the linked lists (pointer-chasing reads).
            history_key = tid
            recorded = self._history.get(history_key)
            if self.use_prefetch and recorded:
                # History-based prefetching: we know the traversal order
                # from the previous step — prefetch straight through it.
                yield self.mol.prefetch_row_list(recorded)
            needed_cells: set[int] = set()
            for cell in range(cell_lo, cell_hi):
                cx, cy, cz = cell // c**2, (cell // c) % c, cell % c
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            nx, ny, nz = cx + dx, cy + dy, cz + dz
                            if 0 <= nx < c and 0 <= ny < c and 0 <= nz < c:
                                needed_cells.add(nx * c**2 + ny * c + nz)
            visited: list[int] = []
            records: dict[int, np.ndarray] = {}
            for cell in sorted(needed_cells):
                mol = int(heads[cell])
                while mol >= 0:
                    row = np.asarray((yield self.mol.read_row(mol)))
                    records[mol] = row.copy()
                    visited.append(mol)
                    yield Compute(self.flops_us(4))
                    mol = int(row[6])
            self._history[history_key] = visited

            # Compute pair forces: each unordered pair (i, j>i) is
            # handled exactly once, by the thread owning cell(i), and
            # only across neighbouring cells — mirroring sp_reference.
            local: dict[int, np.ndarray] = {}
            pair_count = 0
            for cell in range(cell_lo, cell_hi):
                cx, cy, cz = cell // c**2, (cell // c) % c, cell % c
                neighbours = [
                    nx * c**2 + ny * c + nz
                    for dx in (-1, 0, 1)
                    for dy in (-1, 0, 1)
                    for dz in (-1, 0, 1)
                    if 0 <= (nx := cx + dx) < c
                    and 0 <= (ny := cy + dy) < c
                    and 0 <= (nz := cz + dz) < c
                ]
                for i in self._chain(records, heads, cell):
                    pos_i = records[i][:3]
                    for ncell in neighbours:
                        for j in self._chain(records, heads, ncell):
                            if j <= i:
                                continue
                            f = pair_force(pos_i, records[j][:3])
                            local[i] = local.get(i, np.zeros(3)) + f
                            local[j] = local.get(j, np.zeros(3)) - f
                            pair_count += 1
            yield Compute(self.flops_us(PAIR_FLOPS * pair_count))

            # Merge into the per-processor shared buffer, then one
            # thread per node accumulates into the shared force array
            # under partition locks (fixed partition count and
            # per-processor combining — see WATER-NSQ).
            tpn = runtime.config.threads_per_node
            node_id = tid // tpn
            acc = self._node_acc.setdefault((node_id, step), {})
            for mol, contribution in local.items():
                if mol in acc:
                    acc[mol] = acc[mol] + contribution
                else:
                    acc[mol] = contribution
            yield Compute(self.flops_us(3 * len(local)))
            yield Barrier(BARRIER_MAIN)
            # Re-bind after the barrier (recovery point) — see WATER-NSQ.
            acc = self._node_acc[(node_id, step)]
            if tid % tpn == 0 and acc:
                num_parts = self.force_partitions(runtime)
                by_partition: dict[int, list[int]] = {}
                for mol in acc:
                    part = min(mol * num_parts // self.n, num_parts - 1)
                    by_partition.setdefault(part, []).append(mol)
                for part in sorted(by_partition):
                    yield Acquire(PARTITION_LOCK_BASE + part)
                    for mol in sorted(by_partition[part]):
                        current = np.asarray((yield self.force.read_row(mol)))
                        yield self.force.write_row(mol, current + acc[mol])
                    yield Compute(self.flops_us(3 * len(by_partition[part])))
                    yield Release(PARTITION_LOCK_BASE + part)

            # Per-step update of the owned molecule records (the real
            # application advances predictor/corrector state here).
            # Positions and list links stay fixed — the paper notes the
            # recursive structure does not change — but the records are
            # rewritten, so the next step's traversal refetches them.
            for cell in range(cell_lo, cell_hi):
                for mol in self._chain(records, heads, cell):
                    record = records[mol].copy()
                    record[3] = float(step + 1)
                    record[4] = float(mol)
                    yield Compute(self.flops_us(6))
                    yield self.mol.write_row(mol, record)
            yield Barrier(BARRIER_MAIN)

    @staticmethod
    def _chain(records: dict, heads: np.ndarray, cell: int) -> list[int]:
        chain = []
        mol = int(heads[cell])
        while mol >= 0:
            chain.append(mol)
            mol = int(records[mol][6])
        return chain

    def snapshot_local(self):
        # Accumulation buffers and traversal histories are node-local
        # memory (see WaterNsquared.snapshot_local).
        return {
            "acc": {
                key: {mol: vec.copy() for mol, vec in acc.items()}
                for key, acc in self._node_acc.items()
            },
            "history": {key: list(order) for key, order in self._history.items()},
        }

    def restore_local(self, snapshot) -> None:
        self._node_acc = snapshot["acc"]
        self._history = snapshot["history"]

    def verify(self, runtime) -> None:
        expected = sp_reference(self._initial, self.c) * self.steps
        actual = runtime.read_matrix(self.force)
        if not np.allclose(actual, expected, rtol=1e-7, atol=1e-9):
            worst = np.abs(actual - expected).max()
            raise AssertionError(f"WATER-SP force mismatch: {worst}")
        # Newton's third law: forces sum to ~zero.
        assert np.abs(actual.sum(axis=0)).max() < 1e-6
