"""Application registry: the paper's eight benchmarks by name.

Two size presets per application:

- ``default`` — scaled down so the full experiment suite runs in
  minutes under CPython (the simulator executes every page fault, diff
  and message; the paper's full sizes are impractical in pure Python);
- ``paper`` — the original parameters from Section 2.3, for users with
  patience.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import AppBase
from repro.apps.fft import Fft
from repro.apps.lu import LuContiguous, LuNonContiguous
from repro.apps.ocean import Ocean
from repro.apps.radix import Radix
from repro.apps.sor import Sor
from repro.apps.water import WaterNsquared, WaterSpatial
from repro.errors import ConfigError

__all__ = ["APP_ORDER", "make_app", "available_apps"]

#: The paper's presentation order (Figures 1-5).
APP_ORDER = [
    "FFT",
    "LU-NCONT",
    "LU-CONT",
    "OCEAN",
    "RADIX",
    "SOR",
    "WATER-NSQ",
    "WATER-SP",
]

_FACTORIES: dict[str, dict[str, Callable[[], AppBase]]] = {
    "FFT": {
        "default": lambda: Fft(m=96),
        "small": lambda: Fft(m=32),
        "paper": lambda: Fft(m=512),  # 256K points
    },
    "LU-CONT": {
        "default": lambda: LuContiguous(n=256, block_size=32),
        "small": lambda: LuContiguous(n=64, block_size=16),
        "paper": lambda: LuContiguous(n=1024, block_size=32),
    },
    "LU-NCONT": {
        "default": lambda: LuNonContiguous(n=192, block_size=32),
        "small": lambda: LuNonContiguous(n=64, block_size=16),
        "paper": lambda: LuNonContiguous(n=1024, block_size=128),
    },
    "OCEAN": {
        "default": lambda: Ocean(rows=66, cols=512, timesteps=3),
        "small": lambda: Ocean(rows=18, cols=128, timesteps=2),
        "paper": lambda: Ocean(rows=258, cols=512, timesteps=10),
    },
    "RADIX": {
        "default": lambda: Radix(num_keys=16384, max_key=1 << 21, digit_bits=7),
        "small": lambda: Radix(num_keys=2048, max_key=1 << 12, digit_bits=6),
        "paper": lambda: Radix(num_keys=1 << 20, max_key=1 << 21, digit_bits=7),
    },
    "SOR": {
        "default": lambda: Sor(rows=192, cols=512, iterations=6),
        "small": lambda: Sor(rows=32, cols=512, iterations=2),
        "paper": lambda: Sor(rows=2000, cols=512, iterations=50),
    },
    "WATER-NSQ": {
        "default": lambda: WaterNsquared(num_molecules=192, steps=2),
        "small": lambda: WaterNsquared(num_molecules=48, steps=1),
        "paper": lambda: WaterNsquared(num_molecules=512, steps=9),
    },
    "WATER-SP": {
        "default": lambda: WaterSpatial(num_molecules=512, steps=2, cells_per_dim=4),
        "small": lambda: WaterSpatial(num_molecules=64, steps=1, cells_per_dim=3),
        "paper": lambda: WaterSpatial(num_molecules=4096, steps=9, cells_per_dim=6),
    },
}


def available_apps() -> list[str]:
    return list(APP_ORDER)


def make_app(name: str, preset: str = "default") -> AppBase:
    """Instantiate a benchmark by name with a size preset."""
    if name not in _FACTORIES:
        raise ConfigError(f"unknown application {name!r}; choose from {APP_ORDER}")
    presets = _FACTORIES[name]
    if preset not in presets:
        raise ConfigError(f"unknown preset {preset!r}; choose from {sorted(presets)}")
    return presets[preset]()
