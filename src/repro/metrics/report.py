"""Run reports: everything a finished simulation tells you.

A :class:`RunReport` carries the wall time, per-node time breakdowns and
event counters, network traffic, and (when enabled) prefetch statistics.
The experiment harness renders these into the paper's figures/tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.counters import Category, EventCounters, TimeBreakdown

__all__ = ["RunReport"]


@dataclass
class RunReport:
    """Results of one application run on one configuration."""

    app_name: str
    config_label: str
    num_nodes: int
    threads_per_node: int
    wall_time_us: float
    node_breakdowns: list[TimeBreakdown]
    node_events: list[EventCounters]
    total_messages: int
    total_kbytes: float
    message_drops: int
    prefetch_stats: Optional[object] = None  # PrefetchStats when prefetching is on
    #: Retransmissions forced by transport timeouts (all nodes).
    retransmissions: int = 0
    #: Faults injected by the fault plan, by fault name (empty if none).
    injected_faults: dict = field(default_factory=dict)
    #: Per-message-kind traffic table (TrafficStats.kind_breakdown):
    #: separates prefetch drops from protocol retransmits in output.
    traffic_by_kind: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    # -- aggregation ----------------------------------------------------------

    @property
    def breakdown(self) -> TimeBreakdown:
        """Sum of all nodes' charged/idle time."""
        total = TimeBreakdown()
        for node_breakdown in self.node_breakdowns:
            total = total.merged_with(node_breakdown)
        return total

    @property
    def events(self) -> EventCounters:
        total = EventCounters()
        for events in self.node_events:
            total.remote_misses += events.remote_misses
            total.remote_miss_stall += events.remote_miss_stall
            total.cache_faults += events.cache_faults
            total.remote_lock_misses += events.remote_lock_misses
            total.remote_lock_stall += events.remote_lock_stall
            total.barrier_waits += events.barrier_waits
            total.barrier_stall += events.barrier_stall
            total.context_switches += events.context_switches
            total.retransmissions += events.retransmissions
            total.transport_timeouts += events.transport_timeouts
            total.acks_sent += events.acks_sent
            total.duplicates_suppressed += events.duplicates_suppressed
            total.run_lengths_sum += events.run_lengths_sum
            total.run_lengths_count += events.run_lengths_count
        return total

    def category_fraction(self, category: Category) -> float:
        """Fraction of total node-time in a category.

        The denominator is ``wall_time * num_nodes``: the full area of
        the paper's stacked bars.
        """
        denom = self.wall_time_us * self.num_nodes
        if denom <= 0:
            return 0.0
        return self.breakdown.times[category] / denom

    def normalized_breakdown(self, baseline: Optional["RunReport"] = None) -> dict[str, float]:
        """Category percentages, normalized to a baseline's wall time.

        With no baseline, the run is its own baseline (sums to <= 100;
        the remainder is uncharged scheduling slack).
        """
        base = baseline.wall_time_us if baseline is not None else self.wall_time_us
        denom = base * self.num_nodes
        if denom <= 0:
            return {category.value: 0.0 for category in Category}
        return {
            category.value: 100.0 * self.breakdown.times[category] / denom
            for category in Category
        }

    def normalized_total(self, baseline: Optional["RunReport"] = None) -> float:
        """This run's wall time as a percentage of the baseline's."""
        base = baseline.wall_time_us if baseline is not None else self.wall_time_us
        return 100.0 * self.wall_time_us / base if base > 0 else 0.0

    def speedup_over(self, baseline: "RunReport") -> float:
        if self.wall_time_us <= 0:
            return 0.0
        return baseline.wall_time_us / self.wall_time_us

    @property
    def avg_miss_latency_us(self) -> float:
        return self.events.avg_miss_stall

    def summary(self) -> dict[str, float]:
        events = self.events
        return {
            "wall_ms": self.wall_time_us / 1000.0,
            "messages": float(self.total_messages),
            "kbytes": self.total_kbytes,
            "drops": float(self.message_drops),
            "retransmits": float(events.retransmissions),
            "timeouts": float(events.transport_timeouts),
            "injected_faults": float(sum(self.injected_faults.values())),
            "misses": float(events.remote_misses),
            "avg_miss_us": events.avg_miss_stall,
            "lock_stalls": float(events.remote_lock_misses),
            "barrier_waits": float(events.barrier_waits),
        }
