"""Run reports: everything a finished simulation tells you.

A :class:`RunReport` carries the wall time, per-node time breakdowns and
event counters, network traffic, and (when enabled) prefetch statistics.
The experiment harness renders these into the paper's figures/tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.metrics.counters import Category, EventCounters, TimeBreakdown

if TYPE_CHECKING:
    from repro.prefetch.engine import PrefetchStats

__all__ = ["RunReport"]

#: Bumped whenever the serialized layout changes incompatibly.
#: v2 added the optional ``profile`` section (repro.profile); v3 the
#: optional ``critpath`` section (repro.critpath); v4 the optional
#: ``transport_health`` section (adaptive transport) and the
#: paced/shed event counters; v5 the optional ``telemetry`` section
#: (repro.telemetry) and the transport_health ``extremes`` watermarks.
#: Older payloads are still readable (the sections are simply absent
#: and the counters default to zero).
_SCHEMA_VERSION = 6
_COMPAT_VERSIONS = (1, 2, 3, 4, 5, 6)


@dataclass
class RunReport:
    """Results of one application run on one configuration."""

    app_name: str
    config_label: str
    num_nodes: int
    threads_per_node: int
    wall_time_us: float
    node_breakdowns: list[TimeBreakdown]
    node_events: list[EventCounters]
    total_messages: int
    total_kbytes: float
    message_drops: int
    #: Aggregated prefetch counters when prefetching is on, else None.
    prefetch_stats: Optional["PrefetchStats"] = None
    #: Retransmissions forced by transport timeouts (all nodes).
    retransmissions: int = 0
    #: Faults injected by the fault plan, by fault name (empty if none).
    injected_faults: dict[str, int] = field(default_factory=dict)
    #: Per-message-kind traffic table (TrafficStats.kind_breakdown):
    #: separates prefetch drops from protocol retransmits in output.
    traffic_by_kind: dict[str, dict] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    #: Versioned deep-profiling section (Profiler.to_dict) when the run
    #: had ``profile=`` on, else None.  Deliberately NOT part of the
    #: "core": two runs differing only in profiling produce identical
    #: reports apart from this field.
    profile: Optional[dict] = None
    #: Versioned critical-path section (CritpathResult.to_dict) when the
    #: run had ``critpath=`` on, else None.  Same contract as profile:
    #: not part of the core, reports are otherwise byte-identical.
    critpath: Optional[dict] = None
    #: Adaptive-transport health (per-node srtt/rttvar/rto/cwnd plus
    #: paced/shed/parked totals) when the run used an adaptive
    #: transport, else None — static runs carry no trace of the layer.
    transport_health: Optional[dict] = None
    #: Versioned telemetry section (TelemetrySampler.finalize: windowed
    #: time series, barrier epochs, watchdog findings) when the run had
    #: ``telemetry=`` on, else None.  Same contract as profile/critpath:
    #: not part of the core, reports are otherwise byte-identical.
    telemetry: Optional[dict] = None
    #: Coherence protocol the run used (``RunConfig.protocol``).  v6+;
    #: older payloads read back as the then-only protocol, ``lrc``.
    protocol: str = "lrc"

    # -- aggregation ----------------------------------------------------------

    @property
    def breakdown(self) -> TimeBreakdown:
        """Sum of all nodes' charged/idle time."""
        total = TimeBreakdown()
        for node_breakdown in self.node_breakdowns:
            total = total.merged_with(node_breakdown)
        return total

    @property
    def events(self) -> EventCounters:
        total = EventCounters()
        for events in self.node_events:
            total = total.merged_with(events)
        return total

    def category_fraction(self, category: Category) -> float:
        """Fraction of total node-time in a category.

        The denominator is ``wall_time * num_nodes``: the full area of
        the paper's stacked bars.
        """
        denom = self.wall_time_us * self.num_nodes
        if denom <= 0:
            return 0.0
        return self.breakdown.times[category] / denom

    def normalized_breakdown(self, baseline: Optional["RunReport"] = None) -> dict[str, float]:
        """Category percentages, normalized to a baseline's wall time.

        With no baseline, the run is its own baseline (sums to <= 100;
        the remainder is uncharged scheduling slack).
        """
        base = baseline.wall_time_us if baseline is not None else self.wall_time_us
        denom = base * self.num_nodes
        if denom <= 0:
            return {category.value: 0.0 for category in Category}
        return {
            category.value: 100.0 * self.breakdown.times[category] / denom
            for category in Category
        }

    def normalized_total(self, baseline: Optional["RunReport"] = None) -> float:
        """This run's wall time as a percentage of the baseline's."""
        base = baseline.wall_time_us if baseline is not None else self.wall_time_us
        return 100.0 * self.wall_time_us / base if base > 0 else 0.0

    def speedup_over(self, baseline: "RunReport") -> float:
        if self.wall_time_us <= 0:
            return 0.0
        return baseline.wall_time_us / self.wall_time_us

    @property
    def avg_miss_latency_us(self) -> float:
        return self.events.avg_miss_stall

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict: enum keys become their string values."""
        return {
            "schema": _SCHEMA_VERSION,
            "app_name": self.app_name,
            "config_label": self.config_label,
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "threads_per_node": self.threads_per_node,
            "wall_time_us": self.wall_time_us,
            "node_breakdowns": [b.as_dict() for b in self.node_breakdowns],
            "node_events": [e.as_dict() for e in self.node_events],
            "total_messages": self.total_messages,
            "total_kbytes": self.total_kbytes,
            "message_drops": self.message_drops,
            "prefetch_stats": (
                asdict(self.prefetch_stats) if self.prefetch_stats is not None else None
            ),
            "retransmissions": self.retransmissions,
            "injected_faults": {str(k): int(v) for k, v in self.injected_faults.items()},
            "traffic_by_kind": {str(k): dict(v) for k, v in self.traffic_by_kind.items()},
            "extra": dict(self.extra),
            "profile": self.profile,
            "critpath": self.critpath,
            "transport_health": self.transport_health,
            "telemetry": self.telemetry,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        version = data.get("schema")
        if version not in _COMPAT_VERSIONS:
            raise ValueError(
                f"unsupported RunReport schema {version!r} "
                f"(this build reads schemas {_COMPAT_VERSIONS})"
            )
        breakdowns = [TimeBreakdown.from_dict(times) for times in data["node_breakdowns"]]
        prefetch_stats = None
        if data.get("prefetch_stats") is not None:
            from repro.prefetch.engine import PrefetchStats

            prefetch_stats = PrefetchStats(**data["prefetch_stats"])
        return cls(
            app_name=data["app_name"],
            config_label=data["config_label"],
            num_nodes=data["num_nodes"],
            threads_per_node=data["threads_per_node"],
            wall_time_us=data["wall_time_us"],
            node_breakdowns=breakdowns,
            node_events=[EventCounters(**entry) for entry in data["node_events"]],
            total_messages=data["total_messages"],
            total_kbytes=data["total_kbytes"],
            message_drops=data["message_drops"],
            prefetch_stats=prefetch_stats,
            retransmissions=data.get("retransmissions", 0),
            injected_faults={
                str(k): int(v) for k, v in data.get("injected_faults", {}).items()
            },
            traffic_by_kind={
                str(k): dict(v) for k, v in data.get("traffic_by_kind", {}).items()
            },
            extra=dict(data.get("extra", {})),
            profile=data.get("profile"),  # absent in v1 payloads
            critpath=data.get("critpath"),  # absent in v1/v2 payloads
            transport_health=data.get("transport_health"),  # v4+
            telemetry=data.get("telemetry"),  # v5+
            protocol=data.get("protocol", "lrc"),  # v6+
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> dict[str, float]:
        events = self.events
        return {
            "wall_ms": self.wall_time_us / 1000.0,
            "messages": float(self.total_messages),
            "kbytes": self.total_kbytes,
            "drops": float(self.message_drops),
            "retransmits": float(events.retransmissions),
            "timeouts": float(events.transport_timeouts),
            "injected_faults": float(sum(self.injected_faults.values())),
            "misses": float(events.remote_misses),
            "avg_miss_us": events.avg_miss_stall,
            "lock_stalls": float(events.remote_lock_misses),
            "barrier_waits": float(events.barrier_waits),
        }
