"""Per-node time and event accounting.

The paper reports execution time split into the categories of Figures
1-5: Busy, DSM Overhead, Memory Miss Idle, Synchronization Idle, plus
Prefetch Overhead and Multithreading Overhead when the respective
technique is on.  :class:`TimeBreakdown` accumulates the *charged*
categories; idle time is derived as wall time minus charges and is
attributed to memory or synchronization by the scheduler.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from enum import Enum

__all__ = ["Category", "StallKind", "TimeBreakdown", "EventCounters"]


class Category(str, Enum):
    """Where a microsecond of CPU (or idle wall) time goes."""

    BUSY = "busy"
    DSM = "dsm_overhead"
    PREFETCH = "prefetch_overhead"
    MT = "mt_overhead"
    MEMORY_IDLE = "memory_idle"
    SYNC_IDLE = "sync_idle"
    # Fault-tolerance categories (repro.ft): all zero unless FT is on.
    CHECKPOINT = "checkpoint"
    RECOVERY = "recovery"
    #: Wall time a crashed node spent dead (crash -> restart); idle-like.
    DOWNTIME = "downtime"


class StallKind(str, Enum):
    """Why a thread is blocked (classifies the idle time it causes)."""

    MEMORY = "memory"
    LOCK = "lock"
    BARRIER = "barrier"

    @property
    def idle_category(self) -> Category:
        return Category.MEMORY_IDLE if self is StallKind.MEMORY else Category.SYNC_IDLE


@dataclass
class TimeBreakdown:
    """Accumulated microseconds per category for one node."""

    times: dict[Category, float] = field(
        default_factory=lambda: {category: 0.0 for category in Category}
    )

    def charge(self, category: Category, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative charge {amount} to {category}")
        self.times[category] += amount

    @property
    def charged_cpu(self) -> float:
        """CPU-occupying time (excludes idle categories)."""
        return (
            self.times[Category.BUSY]
            + self.times[Category.DSM]
            + self.times[Category.PREFETCH]
            + self.times[Category.MT]
            + self.times[Category.CHECKPOINT]
            + self.times[Category.RECOVERY]
        )

    @property
    def total(self) -> float:
        return sum(self.times.values())

    def as_dict(self) -> dict[str, float]:
        """Stable string keys (``Category.value``), in declaration
        order — emitted explicitly, never via ``dataclasses.asdict``
        (whose key rendering depends on the enum's str-ness)."""
        return {category.value: self.times[category] for category in Category}

    def to_json(self) -> str:
        return json.dumps(self.as_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "TimeBreakdown":
        """Inverse of :meth:`as_dict`; unknown category names raise.

        Missing categories stay zero, so payloads written before a
        category existed load cleanly.
        """
        breakdown = cls()
        for name, value in data.items():
            breakdown.times[Category(name)] = float(value)
        return breakdown

    @classmethod
    def from_json(cls, text: str) -> "TimeBreakdown":
        return cls.from_dict(json.loads(text))

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        merged = TimeBreakdown()
        for category in Category:
            merged.times[category] = self.times[category] + other.times[category]
        return merged


@dataclass
class EventCounters:
    """Event counts and stall sums used by Tables 1 and 2."""

    remote_misses: int = 0
    remote_miss_stall: float = 0.0
    #: faults satisfied without remote messages (e.g. from the prefetch
    #: heap) — not "misses" in the paper's Table 1 sense.
    cache_faults: int = 0
    remote_lock_misses: int = 0
    remote_lock_stall: float = 0.0
    barrier_waits: int = 0
    barrier_stall: float = 0.0
    context_switches: int = 0
    # Reliable-transport activity (zero in fault-free runs with a
    # generous timeout; the chaos suite asserts they move under loss).
    retransmissions: int = 0
    transport_timeouts: int = 0
    acks_sent: int = 0
    duplicates_suppressed: int = 0
    #: Reliable messages the transport abandoned after max_retries.
    retries_exhausted: int = 0
    #: Arrivals discarded by the end-to-end checksum (injected bit
    #: corruption); each one costs a receive and provokes a retransmit.
    corruption_detected: int = 0
    # Adaptive-transport backpressure (zero with the adaptive layer off).
    #: Sends the AIMD window deferred into the transport pacing queue.
    messages_paced: int = 0
    #: Prefetches shed at the source because the transport reported the
    #: destination under pressure (counted, never silent).
    prefetch_shed: int = 0
    # Thread run lengths: busy time between consecutive long-latency events.
    run_lengths_sum: float = 0.0
    run_lengths_count: int = 0

    def merged_with(self, other: "EventCounters") -> "EventCounters":
        """Field-wise sum.  Iterates the dataclass fields so a counter
        added later is aggregated without touching this method."""
        merged = EventCounters()
        for spec in fields(self):
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged

    def as_dict(self) -> dict[str, float]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def record_run_length(self, length: float) -> None:
        if length > 0:
            self.run_lengths_sum += length
            self.run_lengths_count += 1

    @property
    def avg_run_length(self) -> float:
        if self.run_lengths_count == 0:
            return 0.0
        return self.run_lengths_sum / self.run_lengths_count

    @property
    def avg_miss_stall(self) -> float:
        return self.remote_miss_stall / self.remote_misses if self.remote_misses else 0.0

    @property
    def avg_lock_stall(self) -> float:
        return self.remote_lock_stall / self.remote_lock_misses if self.remote_lock_misses else 0.0

    @property
    def avg_barrier_stall(self) -> float:
        return self.barrier_stall / self.barrier_waits if self.barrier_waits else 0.0

    @property
    def total_stall(self) -> float:
        return self.remote_miss_stall + self.remote_lock_stall + self.barrier_stall

    @property
    def total_stall_events(self) -> int:
        return self.remote_misses + self.remote_lock_misses + self.barrier_waits

    @property
    def avg_stall(self) -> float:
        events = self.total_stall_events
        return self.total_stall / events if events else 0.0
