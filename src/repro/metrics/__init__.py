"""Time breakdowns, event counters, and run reports."""

from repro.metrics.counters import Category, EventCounters, StallKind, TimeBreakdown
from repro.metrics.report import RunReport

__all__ = ["Category", "EventCounters", "RunReport", "StallKind", "TimeBreakdown"]
