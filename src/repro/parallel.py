"""Fan simulation runs out across CPU cores.

The simulator is single-threaded by construction (one deterministic
event loop per run), so the way to use a multicore machine is to run
*different* (app, configuration) cells in separate processes.  This
module is the one place that knows how:

- a :class:`RunSpec` is the complete, picklable description of one run —
  app name + size preset + configuration label (the app object itself is
  rebuilt inside the worker; app instances hold numpy state and
  generators that must not cross process boundaries) plus the frozen
  :class:`~repro.api.runtime.RunConfig`;
- the worker builds the cluster from the spec, executes it, and streams
  the finished :class:`~repro.metrics.report.RunReport` back as JSON
  (reports are designed to round-trip; nothing else needs to be
  picklable);
- results are reassembled **by spec index**, so the output order is
  deterministic regardless of completion order, and a ``--jobs N`` sweep
  is byte-identical to the serial one for every N.

Workers are spawn-safe: the ``spawn`` start method is used explicitly
(fork would duplicate the parent's interpreter state, and is unavailable
on some platforms anyway), so each worker imports the library fresh and
shares nothing with the parent but the pickled spec.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.api.runtime import DsmRuntime, RunConfig
from repro.experiments.runner import make_configured_app
from repro.metrics.report import RunReport

__all__ = ["RunSpec", "default_jobs", "fan_out", "run_specs"]


@dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs to execute one run, picklable."""

    index: int
    app_name: str
    preset: str
    label: str
    config: RunConfig
    verify: bool = True


def default_jobs() -> int:
    """A sensible --jobs default: all cores, floor 1."""
    return max(1, os.cpu_count() or 1)


def execute_spec(spec: RunSpec) -> RunReport:
    """Run one spec to completion in the current process."""
    app = make_configured_app(spec.app_name, spec.preset, spec.label)
    return DsmRuntime(spec.config).execute(app, verify=spec.verify)


def _worker(spec: RunSpec) -> tuple[int, str]:
    """Pool entry point: returns (index, RunReport JSON)."""
    return spec.index, execute_spec(spec).to_json()


def _fan_out_entry(packed):
    """Pool entry point for :func:`fan_out`: returns (index, result)."""
    index, worker, item = packed
    return index, worker(item)


def fan_out(items, worker, jobs: int = 1, on_done=None) -> list:
    """Apply ``worker`` to every item; return results in item order.

    The generic sibling of :func:`run_specs` for work that is not a
    :class:`RunSpec` (the chaos harness fans out whole search samples).
    ``worker`` must be a module-level function and both items and
    results must pickle — with ``jobs > 1`` they cross a spawn-context
    process boundary.  ``on_done(index, result)`` fires in *completion*
    order; the returned list is always in item order, so a ``--jobs N``
    sweep is identical to the serial one for every N.
    """
    items = list(items)
    results: list = [None] * len(items)
    if jobs <= 1 or len(items) <= 1:
        for index, item in enumerate(items):
            result = worker(item)
            results[index] = result
            if on_done is not None:
                on_done(index, result)
        return results
    packed = [(index, worker, item) for index, item in enumerate(items)]
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(items))) as pool:
        for index, result in pool.imap_unordered(_fan_out_entry, packed):
            results[index] = result
            if on_done is not None:
                on_done(index, result)
    return results


def run_specs(
    specs: list[RunSpec],
    jobs: int = 1,
    on_done: Optional[Callable[[RunSpec, RunReport], None]] = None,
) -> list[RunReport]:
    """Execute every spec; return reports in spec-index order.

    With ``jobs <= 1`` runs serially in-process (no pickling, cheapest
    for a single core).  With more, fans out over a spawn-context
    process pool; ``on_done`` fires in *completion* order (progress
    reporting), while the returned list is always in spec order.
    """
    if sorted(spec.index for spec in specs) != list(range(len(specs))):
        raise ValueError("spec indices must be exactly 0..N-1")
    results: list[Optional[RunReport]] = [None] * len(specs)
    if jobs <= 1 or len(specs) <= 1:
        for spec in specs:
            report = execute_spec(spec)
            results[spec.index] = report
            if on_done is not None:
                on_done(spec, report)
        return results  # type: ignore[return-value]

    by_index = {spec.index: spec for spec in specs}
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(specs))) as pool:
        for index, payload in pool.imap_unordered(_worker, specs):
            report = RunReport.from_json(payload)
            results[index] = report
            if on_done is not None:
                on_done(by_index[index], report)
    return results  # type: ignore[return-value]
