"""Page-granularity backing store holding real bytes.

Each simulated node owns a :class:`PageStore`: a lazily materialized map
from page id to a numpy ``uint8`` array.  All shared data in the system
really lives in these arrays — diffs are computed from content, and the
application results read back through them are verified against
sequential computations in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PagedMemoryError

__all__ = ["PageStore"]


class PageStore:
    """All pages of the shared address space, as seen by one node.

    Pages spring into existence zero-filled on first touch, mirroring
    demand-zero allocation of shared segments.
    """

    def __init__(self, page_size: int) -> None:
        if page_size <= 0 or page_size % 8 != 0:
            raise PagedMemoryError(f"page size must be a positive multiple of 8, got {page_size}")
        self.page_size = page_size
        self._pages: dict[int, np.ndarray] = {}

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    @property
    def materialized_pages(self) -> int:
        return len(self._pages)

    def page(self, page_id: int) -> np.ndarray:
        """The mutable contents of ``page_id`` (created zeroed on demand)."""
        if page_id < 0:
            raise PagedMemoryError(f"negative page id {page_id}")
        existing = self._pages.get(page_id)
        if existing is None:
            existing = np.zeros(self.page_size, dtype=np.uint8)
            self._pages[page_id] = existing
        return existing

    def snapshot(self, page_id: int) -> np.ndarray:
        """An independent copy of the page (used to make twins)."""
        return self.page(page_id).copy()

    def snapshot_all(self) -> dict[int, np.ndarray]:
        """Independent copies of every materialized page (checkpointing)."""
        return {pid: arr.copy() for pid, arr in self._pages.items()}

    def restore_all(self, snapshot: dict[int, np.ndarray]) -> None:
        """Replace all contents from a :meth:`snapshot_all` result."""
        self._pages = {pid: arr.copy() for pid, arr in snapshot.items()}

    # -- byte-granularity region access ----------------------------------

    def read(self, addr: int, nbytes: int) -> np.ndarray:
        """Gather ``nbytes`` starting at global byte address ``addr``."""
        self._check_range(addr, nbytes)
        out = np.empty(nbytes, dtype=np.uint8)
        copied = 0
        while copied < nbytes:
            page_id, offset = divmod(addr + copied, self.page_size)
            chunk = min(nbytes - copied, self.page_size - offset)
            out[copied : copied + chunk] = self.page(page_id)[offset : offset + chunk]
            copied += chunk
        return out

    def write(self, addr: int, data: np.ndarray) -> None:
        """Scatter ``data`` (uint8) starting at global byte address ``addr``."""
        data = np.ascontiguousarray(data, dtype=np.uint8).ravel()
        self._check_range(addr, len(data))
        copied = 0
        nbytes = len(data)
        while copied < nbytes:
            page_id, offset = divmod(addr + copied, self.page_size)
            chunk = min(nbytes - copied, self.page_size - offset)
            self.page(page_id)[offset : offset + chunk] = data[copied : copied + chunk]
            copied += chunk

    def pages_in_range(self, addr: int, nbytes: int) -> list[int]:
        """Ids of every page a region touches, in ascending order."""
        self._check_range(addr, nbytes)
        if nbytes == 0:
            return []
        first = addr // self.page_size
        last = (addr + nbytes - 1) // self.page_size
        return list(range(first, last + 1))

    @staticmethod
    def _check_range(addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0:
            raise PagedMemoryError(f"bad region addr={addr} nbytes={nbytes}")
