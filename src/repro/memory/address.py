"""Shared address space allocation.

A single global allocator hands out byte ranges of the shared segment.
Applications allocate named regions (arrays, matrices, scratch areas) at
setup time; the allocator can align regions to page boundaries, which is
how LU-CONT gets contiguous (page-aligned) blocks while LU-NCONT does
not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PagedMemoryError

__all__ = ["Segment", "SharedAddressSpace"]


@dataclass(frozen=True)
class Segment:
    """A named allocation in the shared address space."""

    name: str
    base: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def addr(self, offset: int) -> int:
        """Global address of a byte offset within the segment."""
        if not 0 <= offset < self.nbytes:
            raise PagedMemoryError(f"offset {offset} outside segment {self.name!r} ({self.nbytes}B)")
        return self.base + offset


class SharedAddressSpace:
    """Bump allocator over the global shared segment."""

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise PagedMemoryError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self._next = 0
        self._segments: dict[str, Segment] = {}

    @property
    def total_bytes(self) -> int:
        return self._next

    @property
    def total_pages(self) -> int:
        return (self._next + self.page_size - 1) // self.page_size

    def alloc(self, name: str, nbytes: int, page_aligned: bool = True) -> Segment:
        """Allocate ``nbytes``; optionally round the base up to a page.

        Shared arrays default to page alignment (as malloc'd shared
        segments effectively are); pass ``page_aligned=False`` to model
        non-contiguous layouts that straddle page boundaries.
        """
        if nbytes <= 0:
            raise PagedMemoryError(f"allocation must be positive, got {nbytes}")
        if name in self._segments:
            raise PagedMemoryError(f"segment {name!r} already allocated")
        base = self._next
        if page_aligned and base % self.page_size:
            base += self.page_size - base % self.page_size
        segment = Segment(name, base, nbytes)
        self._segments[name] = segment
        self._next = segment.end
        return segment

    def segment(self, name: str) -> Segment:
        if name not in self._segments:
            raise PagedMemoryError(f"unknown segment {name!r}")
        return self._segments[name]

    def segments(self) -> list[Segment]:
        return list(self._segments.values())

    def page_of(self, addr: int) -> int:
        if not 0 <= addr < max(self._next, 1):
            raise PagedMemoryError(f"address {addr} outside allocated space [0, {self._next})")
        return addr // self.page_size
