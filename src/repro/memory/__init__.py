"""Paged shared memory: real page contents, twins, RLE diffs, allocation."""

from repro.memory.address import Segment, SharedAddressSpace
from repro.memory.diff import Diff, apply_diff, make_diff
from repro.memory.page import PageStore

__all__ = ["Diff", "PageStore", "Segment", "SharedAddressSpace", "apply_diff", "make_diff"]
