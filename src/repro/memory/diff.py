"""Twin/diff machinery of the multiple-writer protocol.

TreadMarks lets several nodes write the same page concurrently; each
writer keeps a clean copy (*twin*) made at its first write, and later
produces a run-length-encoded *diff* — the byte runs where the modified
page differs from the twin.  Applying all writers' diffs to any copy of
the page merges the concurrent modifications (they are guaranteed
disjoint for data-race-free programs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PagedMemoryError

__all__ = ["Diff", "make_diff", "apply_diff"]

# Per-run encoding overhead in the wire format: 2 shorts (offset, length).
RUN_HEADER_BYTES = 4
# Fixed diff header (page id, interval id, run count).
DIFF_HEADER_BYTES = 12


@dataclass(slots=True)
class Diff:
    """A run-length-encoded page delta.

    Attributes:
        page_id: which page this diff modifies.
        runs: list of ``(offset, bytes)`` with strictly increasing,
            non-overlapping offsets.
    """

    page_id: int
    runs: list[tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.runs

    @property
    def modified_bytes(self) -> int:
        return sum(len(data) for _off, data in self.runs)

    @property
    def size_bytes(self) -> int:
        """Encoded size on the wire."""
        return DIFF_HEADER_BYTES + sum(RUN_HEADER_BYTES + len(data) for _off, data in self.runs)


def make_diff(page_id: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Compute the RLE delta turning ``twin`` into ``current``.

    Comparison is at **word** (8-byte) granularity, exactly as in
    TreadMarks.  Word granularity matters for correctness, not just
    fidelity: a value change can leave some of its bytes coincidentally
    equal, and byte-granular runs would then ship *partial* values —
    a later out-of-order application could interleave bytes of two
    writes into a torn word.
    """
    if twin.shape != current.shape:
        raise PagedMemoryError("twin and page must have identical shapes")
    if len(twin) % 8:
        raise PagedMemoryError("pages must be a whole number of 8-byte words")
    changed_words = twin.view(np.uint64) != current.view(np.uint64)
    if not changed_words.any():
        return Diff(page_id)
    # Find run boundaries in the changed-word mask.
    idx = np.flatnonzero(changed_words)
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([idx[0]], idx[breaks + 1]))
    ends = np.concatenate((idx[breaks], [idx[-1]]))
    runs = [
        (int(s) * 8, current[s * 8 : (e + 1) * 8].copy()) for s, e in zip(starts, ends)
    ]
    return Diff(page_id, runs)


def apply_diff(page: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` to ``page`` in place."""
    for offset, data in diff.runs:
        if offset < 0 or offset + len(data) > len(page):
            raise PagedMemoryError(
                f"diff run [{offset}, {offset + len(data)}) outside page of {len(page)} bytes"
            )
        page[offset : offset + len(data)] = data
