"""The operation vocabulary of application threads.

Application code runs as generators that *yield operation objects*; the
node scheduler interprets them against the DSM.  This mirrors how a real
DSM program interleaves computation, shared loads/stores, explicit
synchronization, and (optionally) prefetch calls::

    def body(tid):
        yield Acquire(3)
        row = yield Read(addr, 64, dtype=np.float64)
        yield Compute(12.5)
        yield Write(addr, row * 2)
        yield Release(3)
        yield Barrier(0)

``Read`` yields back the bytes at the address, viewed as ``dtype``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["Compute", "Read", "Write", "Acquire", "Release", "Barrier", "Prefetch", "Op"]


@dataclass(frozen=True)
class Compute:
    """Spend ``us`` microseconds of pure computation."""

    us: float

    def __post_init__(self) -> None:
        if self.us < 0:
            raise ValueError(f"negative compute time {self.us}")


@dataclass(frozen=True)
class Read:
    """Load ``nbytes`` from shared address ``addr``.

    The scheduler faults in any stale page (sequentially, in address
    order — a loop over the region faults as it walks) and sends back
    the data viewed as ``dtype``.
    """

    addr: int
    nbytes: int
    dtype: np.dtype = np.dtype(np.uint8)


@dataclass(frozen=True)
class Write:
    """Store ``data`` (any scalar numpy dtype) at shared address ``addr``."""

    addr: int
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


@dataclass(frozen=True)
class Acquire:
    """Acquire a global lock (an LRC acquire)."""

    lock_id: int


@dataclass(frozen=True)
class Release:
    """Release a global lock (an LRC release)."""

    lock_id: int


@dataclass(frozen=True)
class Barrier:
    """Arrive at a global barrier; resumes when all threads arrive."""

    barrier_id: int


@dataclass(frozen=True)
class Prefetch:
    """Issue non-binding prefetches for the pages covering ``regions``.

    ``dedup_key``: threads on one node prefetching the same data under
    the combined scheme pass a shared key; the first toucher suppresses
    the others' redundant prefetches (Section 5.1).
    """

    regions: tuple[tuple[int, int], ...]  # (addr, nbytes) pairs
    dedup_key: Optional[str] = None

    @staticmethod
    def of(regions: Sequence[tuple[int, int]], dedup_key: Optional[str] = None) -> "Prefetch":
        return Prefetch(tuple((int(a), int(n)) for a, n in regions), dedup_key)


Op = Compute | Read | Write | Acquire | Release | Barrier | Prefetch
