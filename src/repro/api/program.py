"""The application programming model.

A :class:`Program` is what runs on the DSM: it allocates shared data in
``setup``, provides one generator per thread in ``thread_body``, and
checks its own results in ``verify`` against a sequential computation.

Convention (SPLASH-2 style): thread 0 initializes shared data and all
threads meet at a barrier before the parallel phase — which is what
makes node 0 the hot spot during startup, as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.runtime import DsmRuntime

__all__ = ["Program"]


class Program:
    """Base class for DSM applications."""

    #: Short identifier used in reports and experiment tables.
    name: str = "program"

    def setup(self, runtime: "DsmRuntime") -> None:
        """Allocate shared segments; runs before any thread starts."""
        raise NotImplementedError

    def thread_body(self, runtime: "DsmRuntime", tid: int) -> Generator:
        """The generator executed by thread ``tid`` (yields Ops)."""
        raise NotImplementedError

    def verify(self, runtime: "DsmRuntime") -> None:
        """Check final shared memory against a sequential computation.

        Raise :class:`AssertionError` (or any exception) on mismatch.
        """
        raise ProgramError(f"program {self.name!r} provides no verifier")
