"""The application programming model.

A :class:`Program` is what runs on the DSM: it allocates shared data in
``setup``, provides one generator per thread in ``thread_body``, and
checks its own results in ``verify`` against a sequential computation.

Convention (SPLASH-2 style): thread 0 initializes shared data and all
threads meet at a barrier before the parallel phase — which is what
makes node 0 the hot spot during startup, as in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.runtime import DsmRuntime

__all__ = ["Program"]


class Program:
    """Base class for DSM applications."""

    #: Short identifier used in reports and experiment tables.
    name: str = "program"

    def setup(self, runtime: "DsmRuntime") -> None:
        """Allocate shared segments; runs before any thread starts."""
        raise NotImplementedError

    def thread_body(self, runtime: "DsmRuntime", tid: int) -> Generator:
        """The generator executed by thread ``tid`` (yields Ops)."""
        raise NotImplementedError

    def verify(self, runtime: "DsmRuntime") -> None:
        """Check final shared memory against a sequential computation.

        Raise :class:`AssertionError` (or any exception) on mismatch.
        """
        raise ProgramError(f"program {self.name!r} provides no verifier")

    # -- fault-tolerance hooks (repro.ft) ---------------------------------

    def snapshot_local(self):
        """Node-local (non-DSM) state to include in a checkpoint.

        Programs that model per-processor *local-memory* structures as
        plain Python state on the program object (e.g. WATER's shared
        per-processor accumulation buffers) must return it here, or a
        crash rollback would replay thread bodies against state the
        discarded execution already mutated.  The returned value is
        deep-copied by the checkpointing layer.
        """
        return None

    def restore_local(self, snapshot) -> None:
        """Reinstall state captured by :meth:`snapshot_local`.

        Called *after* thread replay during recovery: replay re-runs the
        bodies' local mutations, and this call discards those re-runs in
        favour of the checkpointed truth.

        Caveat: this replaces state on the *program object*; generator
        locals are untouched.  Thread bodies must therefore re-bind any
        reference into this state after each barrier (the recovery
        points) rather than holding one across it.
        """
