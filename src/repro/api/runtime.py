"""The DSM runtime: build a cluster, run a program, report results.

This is the library's main entry point::

    from repro import DsmRuntime, RunConfig
    from repro.apps import Sor

    report = DsmRuntime(RunConfig(num_nodes=8)).execute(Sor(rows=128, cols=128))
    print(report.summary())

Configurations map onto the paper's labels:

- ``O``   — ``RunConfig(threads_per_node=1)``
- ``P``   — ``RunConfig(threads_per_node=1, prefetch=True)``
- ``nT``  — ``RunConfig(threads_per_node=n)``
- ``nTP`` — ``RunConfig(threads_per_node=n, prefetch=True)`` (combined:
  threads switch on synchronization only; prefetching owns memory
  latency — the winning split of Section 5)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.api.program import Program
from repro.api.shared import SharedMatrix, SharedVector
from repro.dsm.backend import BACKEND_NAMES
from repro.dsm.protocol import DsmNode
from repro.errors import ConfigError
from repro.ft import FtConfig, FtManager, ProtocolSanitizer
from repro.machine import Cluster, CostModel
from repro.memory import SharedAddressSpace, Segment
from repro.metrics.report import RunReport
from repro.network import FaultPlan, LinkConfig, TransportConfig
from repro.prefetch.engine import PrefetchEngine, PrefetchStats
from repro.profile import NULL_PROFILER, ProfileConfig, Profiler
from repro.sim import RandomSource
from repro.telemetry import NULL_TELEMETRY, TelemetryConfig, TelemetrySampler
from repro.threads import DsmThread, NodeScheduler, SchedulingPolicy
from repro.trace import NULL_TRACER, TraceConfig, Tracer

__all__ = ["RunConfig", "DsmRuntime"]


@dataclass(frozen=True)
class RunConfig:
    """Everything that defines one experimental configuration."""

    num_nodes: int = 8
    threads_per_node: int = 1
    prefetch: bool = False
    #: Extension (related work, Bianchini et al.): let the DSM runtime
    #: issue prefetches automatically from per-synchronization fault
    #: histories, instead of explicit program insertion.
    history_prefetch: bool = False
    page_size: int = 4096
    seed: int = 42
    costs: CostModel = field(default_factory=CostModel)
    link: LinkConfig = field(default_factory=LinkConfig)
    #: Reliable transport under the DSM protocol (on by default): seq
    #: numbers, acks, timeout/retry/backoff, duplicate suppression.
    #: ``None`` reverts to the legacy "reliable messages are never
    #: lost" link-model magic.
    transport: Optional[TransportConfig] = field(default_factory=TransportConfig)
    #: Seed-driven fault injection (drops, duplicates, reordering,
    #: degradation and stall windows); ``None`` = pristine network.
    fault_plan: Optional[FaultPlan] = None
    compute_quantum: float = 250.0
    #: Structured event tracing (``repro.trace``): ``None`` (default)
    #: disables collection entirely; a :class:`TraceConfig` (or ``True``
    #: for the defaults) records every instrumented event for export and
    #: for the ``PhaseTimeline`` accounting audit.
    trace: Optional[TraceConfig] = None
    #: Fault tolerance (``repro.ft``): failure detection, coordinated
    #: barrier checkpoints, and crash recovery.  Auto-enabled with the
    #: defaults whenever the fault plan schedules node crashes.
    ft: Optional[FtConfig] = None
    #: Runtime protocol-invariant checking (``repro.ft.sanitizer``).
    #: Off by default: when off the hook sites cost one attribute check.
    sanitizer: bool = False
    #: Deep profiling (``repro.profile``): latency histograms and
    #: hot-entity attribution.  ``None`` (default) collects nothing; a
    #: :class:`ProfileConfig` (or ``True`` for the defaults) adds a
    #: versioned ``profile`` section to the report.  The profiler only
    #: observes (no RNG, no scheduling), so the RunReport core is
    #: byte-identical with it on or off.
    profile: Optional[ProfileConfig] = None
    #: Causal critical-path analysis (``repro.critpath``): rebuild the
    #: program-activity graph after the run, attribute the exact
    #: critical path, and attach what-if projections as a versioned
    #: ``critpath`` report section.  Implies event collection: when no
    #: tracer is configured, an internal one is created (its events are
    #: consumed by the analysis and discarded).  Pure post-processing —
    #: the simulation schedule is untouched and the report core is
    #: byte-identical with it on or off.
    critpath: bool = False
    #: Sim-time telemetry (``repro.telemetry``): windowed time series of
    #: gauges and counter deltas across the stack, with watchdog
    #: findings, as a versioned ``telemetry`` report section.  ``None``
    #: (default) samples nothing; a :class:`TelemetryConfig` (or ``True``
    #: for the defaults) enables the flight recorder.  Pure observation:
    #: the simulation schedule and the report core are byte-identical
    #: with it on or off.
    telemetry: Optional[TelemetryConfig] = None
    #: Safety valve for runaway simulations (events, not microseconds).
    max_events: Optional[int] = 50_000_000
    #: Coherence protocol (``repro.dsm.backend``): ``lrc`` (TreadMarks-
    #: style lazy release consistency, the default), ``hlrc`` (home-based
    #: LRC), or ``sc`` (single-writer sequentially-consistent invalidate).
    protocol: str = "lrc"

    def __post_init__(self) -> None:
        if self.threads_per_node < 1:
            raise ConfigError("threads_per_node must be >= 1")
        if self.protocol not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown protocol {self.protocol!r} (choose from {BACKEND_NAMES})"
            )
        if self.num_nodes < 2:
            raise ConfigError("num_nodes must be >= 2")
        if self.ft is None and self.fault_plan is not None and (
            self.fault_plan.crashes or self.fault_plan.partitions
        ):
            # A crash schedule without recovery would hang the run, and
            # a partition without membership would strand the cut-off
            # nodes: both need the FT layer.
            object.__setattr__(self, "ft", FtConfig())
        if self.trace is not None and not isinstance(self.trace, TraceConfig):
            if self.trace is True:
                object.__setattr__(self, "trace", TraceConfig())
            elif self.trace is False:
                object.__setattr__(self, "trace", None)
            else:
                raise ConfigError(f"trace must be a TraceConfig or bool, got {self.trace!r}")
        if not isinstance(self.critpath, bool):
            object.__setattr__(self, "critpath", bool(self.critpath))
        if self.profile is not None and not isinstance(self.profile, ProfileConfig):
            if self.profile is True:
                object.__setattr__(self, "profile", ProfileConfig())
            elif self.profile is False:
                object.__setattr__(self, "profile", None)
            else:
                raise ConfigError(
                    f"profile must be a ProfileConfig or bool, got {self.profile!r}"
                )
        if self.telemetry is not None and not isinstance(self.telemetry, TelemetryConfig):
            if self.telemetry is True:
                object.__setattr__(self, "telemetry", TelemetryConfig())
            elif self.telemetry is False:
                object.__setattr__(self, "telemetry", None)
            else:
                raise ConfigError(
                    f"telemetry must be a TelemetryConfig or bool, got {self.telemetry!r}"
                )

    @property
    def total_threads(self) -> int:
        return self.num_nodes * self.threads_per_node

    @property
    def label(self) -> str:
        """The paper's configuration label (O, P, nT, nTP)."""
        if self.threads_per_node == 1:
            return "P" if self.prefetch else "O"
        suffix = "TP" if self.prefetch else "T"
        return f"{self.threads_per_node}{suffix}"

    @property
    def policy(self) -> SchedulingPolicy:
        if self.threads_per_node == 1:
            return SchedulingPolicy.single_threaded()
        if self.prefetch:
            # Combined scheme: multithreading only hides synchronization.
            return SchedulingPolicy.sync_only()
        return SchedulingPolicy.multithreaded()


class DsmRuntime:
    """Owns one cluster and runs one program on it."""

    def __init__(self, config: RunConfig) -> None:
        self.config = config
        self.random = RandomSource(config.seed)
        #: The run's tracer: a collecting Tracer when config.trace is
        #: set, else the shared null tracer (zero collection overhead).
        #: Critical-path analysis needs the event stream, so it forces
        #: an internal tracer when none was requested explicitly.
        if config.trace is not None:
            self.tracer: Tracer = Tracer(config.trace)
        elif config.critpath:
            self.tracer = Tracer(TraceConfig())
        else:
            self.tracer = NULL_TRACER
        self.cluster = Cluster(
            num_nodes=config.num_nodes,
            page_size=config.page_size,
            costs=config.costs,
            link_config=config.link,
            fault_plan=config.fault_plan,
            transport=config.transport,
            rng=self.random,
            tracer=self.tracer,
        )
        self.space = SharedAddressSpace(config.page_size)
        self.dsm_nodes: list[DsmNode] = [
            DsmNode(node, config.num_nodes, protocol=config.protocol)
            for node in self.cluster.nodes
        ]
        self.prefetch_engines: list[PrefetchEngine] = []
        if config.prefetch or config.history_prefetch:
            self.prefetch_engines = [PrefetchEngine(dsm) for dsm in self.dsm_nodes]
        self.schedulers: list[NodeScheduler] = [
            NodeScheduler(
                node,
                dsm,
                policy=config.policy,
                compute_quantum=config.compute_quantum,
            )
            for node, dsm in zip(self.cluster.nodes, self.dsm_nodes)
        ]
        for scheduler, engine in zip(self.schedulers, self.prefetch_engines):
            scheduler.prefetch = engine
        if config.history_prefetch:
            from repro.prefetch.history import HistoryPrefetcher

            for scheduler, engine in zip(self.schedulers, self.prefetch_engines):
                scheduler.history = HistoryPrefetcher(engine, config.page_size)
        #: The run's profiler: collecting when config.profile is set,
        #: else the shared null profiler (zero collection overhead).
        self.profiler: Profiler = (
            Profiler(config.profile, config.num_nodes)
            if config.profile is not None
            else NULL_PROFILER
        )
        self.cluster.sim.profile = self.profiler
        if config.sanitizer:
            sanitizer = ProtocolSanitizer(config.num_nodes, protocol=config.protocol)
            sanitizer.profile = self.profiler
            self.cluster.sim.sanitizer = sanitizer
        #: The run's telemetry sampler: collecting when config.telemetry
        #: is set, else the shared null sampler (one cached-boolean check
        #: in the run loop).
        if config.telemetry is not None:
            self.telemetry = TelemetrySampler(config.telemetry)
            self.telemetry.attach(self)
        else:
            self.telemetry = NULL_TELEMETRY
        self.cluster.sim.telemetry = self.telemetry
        #: Fault-tolerance layer (failure detection, checkpoint/recovery).
        self.ft: Optional[FtManager] = (
            FtManager(self, config.ft) if config.ft is not None else None
        )

    # -- allocation helpers -------------------------------------------------

    def alloc(self, name: str, nbytes: int, page_aligned: bool = True) -> Segment:
        return self.space.alloc(name, nbytes, page_aligned=page_aligned)

    def alloc_vector(
        self, name: str, dtype: np.dtype, length: int, page_aligned: bool = True
    ) -> SharedVector:
        dtype = np.dtype(dtype)
        segment = self.alloc(name, length * dtype.itemsize, page_aligned=page_aligned)
        return SharedVector(segment, dtype, length)

    def alloc_matrix(
        self, name: str, dtype: np.dtype, rows: int, cols: int, page_aligned: bool = True
    ) -> SharedMatrix:
        dtype = np.dtype(dtype)
        segment = self.alloc(name, rows * cols * dtype.itemsize, page_aligned=page_aligned)
        return SharedMatrix(segment, dtype, rows, cols)

    # -- execution -------------------------------------------------------------

    def execute(self, program: Program, verify: bool = True) -> RunReport:
        """Run the program to completion and return its report."""
        program.setup(self)
        tpn = self.config.threads_per_node
        for tid in range(self.config.total_threads):
            node_id = tid // tpn
            thread = DsmThread(tid, node_id, program.thread_body(self, tid))
            self.schedulers[node_id].add_thread(thread)
        if self.ft is not None:
            # Takes the initial checkpoint (the rollback target for a
            # crash before the first barrier) and arms the crash plan.
            self.ft.start(program)
        for scheduler in self.schedulers:
            scheduler.start()
        self.cluster.run(max_events=self.config.max_events)
        # Recovery replaces scheduler processes, so consult the *current*
        # done_event, not the one start() returned before any rollback.
        for scheduler in self.schedulers:
            done = scheduler.done_event
            if done is None or not done.triggered:
                raise ConfigError(
                    f"node {scheduler.node.node_id} never finished — deadlock?"
                )
            done.value  # re-raise any thread exception
        wall = max(s.finished_at for s in self.schedulers if s.finished_at is not None)
        report = self._build_report(program, wall)
        if verify:
            program.verify(self)
        return report

    def _build_report(self, program: Program, wall: float) -> RunReport:
        stats = self.cluster.network.stats
        prefetch_stats: Optional[PrefetchStats] = None
        if self.prefetch_engines:
            prefetch_stats = PrefetchStats()
            for engine in self.prefetch_engines:
                for name in vars(engine.stats):
                    setattr(
                        prefetch_stats,
                        name,
                        getattr(prefetch_stats, name) + getattr(engine.stats, name),
                    )
        extra = {}
        if self.ft is not None:
            extra["ft"] = self.ft.summary()
        profile = self.profiler.to_dict(self.space) if self.profiler.enabled else None
        critpath = None
        if self.config.critpath:
            from repro.critpath import analyze_events

            critpath = analyze_events(
                self.tracer.events, events_dropped=self.tracer.dropped_events
            ).to_dict()
        transport_health = None
        transports = self.cluster.transports
        if transports and transports[0].adaptive:
            network = self.cluster.network
            per_node = {}
            parked_live = 0
            for transport in transports:
                snapshot = transport.health_snapshot()
                per_node[str(transport.node.node_id)] = snapshot
                # Parked messages toward peers that are neither down nor
                # fenced at end of run: the no-livelock invariant's
                # numerator (down/fenced peers are legitimately parked —
                # their revival belongs to a rollback/rejoin that the
                # workload finished without needing).
                parked_live += sum(
                    count
                    for dst, count in snapshot["parked_by_peer"].items()
                    if not network.is_down(int(dst)) and not network.is_fenced(int(dst))
                )
            min_cwnds = [
                t.extremes.min_cwnd for t in transports if t.extremes.min_cwnd >= 0
            ]
            transport_health = {
                "per_node": per_node,
                "cwnd_max": transports[0].config.cwnd_max,
                # Worst-case excursions across all nodes: the end-of-run
                # gauges only show where the run *landed*, the extremes
                # show where it *went*.
                "extremes": {
                    "max_backlog": max(t.extremes.max_backlog for t in transports),
                    "min_cwnd": round(min(min_cwnds), 3) if min_cwnds else -1.0,
                    "max_rto_us": round(
                        max(t.extremes.max_rto_us for t in transports), 3
                    ),
                },
                "max_in_flight": max(
                    s["max_in_flight"] for s in per_node.values()
                ),
                "paced": sum(s["paced"] for s in per_node.values()),
                "shed": stats.total_shed,
                "rtt_samples": sum(s["rtt_samples"] for s in per_node.values()),
                "cwnd_halvings": sum(s["cwnd_halvings"] for s in per_node.values()),
                "unacked": sum(s["unacked"] for s in per_node.values()),
                "pacing_backlog": sum(s["pacing_backlog"] for s in per_node.values()),
                "parked_live": parked_live,
            }
        return RunReport(
            app_name=program.name,
            config_label=self.config.label,
            protocol=self.config.protocol,
            num_nodes=self.config.num_nodes,
            threads_per_node=self.config.threads_per_node,
            wall_time_us=wall,
            node_breakdowns=[node.breakdown for node in self.cluster.nodes],
            node_events=[node.events for node in self.cluster.nodes],
            total_messages=stats.total_messages,
            total_kbytes=stats.total_bytes / 1024.0,
            message_drops=stats.total_drops,
            prefetch_stats=prefetch_stats,
            retransmissions=stats.total_retransmits,
            injected_faults={
                fault: sum(by_kind.values())
                for fault, by_kind in stats.injected_by_fault.items()
                if sum(by_kind.values())
            },
            traffic_by_kind=stats.kind_breakdown(),
            extra=extra,
            profile=profile,
            critpath=critpath,
            transport_health=transport_health,
            telemetry=(
                self.telemetry.finalize(wall) if self.telemetry.enabled else None
            ),
        )

    # -- verification support ------------------------------------------------------

    def global_page(self, page_id: int) -> np.ndarray:
        """The authoritative final contents of a page.

        How the value is reconstructed is protocol-specific (LRC replays
        the cluster-wide diff history; SC reads the owner's copy), so
        the work is delegated to the coherence backend.
        """
        return self.dsm_nodes[0].backend.global_page(self, page_id)

    def read_global(self, addr: int, nbytes: int, dtype: np.dtype = np.uint8) -> np.ndarray:
        """Authoritative bytes for a region (for verifiers)."""
        page_size = self.config.page_size
        out = np.empty(nbytes, dtype=np.uint8)
        copied = 0
        while copied < nbytes:
            page_id, offset = divmod(addr + copied, page_size)
            chunk = min(nbytes - copied, page_size - offset)
            out[copied : copied + chunk] = self.global_page(page_id)[offset : offset + chunk]
            copied += chunk
        return out.view(dtype)

    def read_vector(self, vector: SharedVector) -> np.ndarray:
        return self.read_global(
            vector.segment.base, vector.length * vector.dtype.itemsize, vector.dtype
        )

    def read_matrix(self, matrix: SharedMatrix) -> np.ndarray:
        flat = self.read_global(
            matrix.segment.base,
            matrix.rows * matrix.cols * matrix.dtype.itemsize,
            matrix.dtype,
        )
        return flat.reshape(matrix.rows, matrix.cols)
