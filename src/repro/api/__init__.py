"""Public programming API: ops, shared arrays, programs, the runtime."""

from repro.api.ops import Acquire, Barrier, Compute, Prefetch, Read, Release, Write
from repro.api.program import Program
from repro.api.runtime import DsmRuntime, RunConfig
from repro.api.shared import SharedMatrix, SharedVector

__all__ = [
    "Acquire",
    "Barrier",
    "Compute",
    "DsmRuntime",
    "Prefetch",
    "Program",
    "Read",
    "Release",
    "RunConfig",
    "SharedMatrix",
    "SharedVector",
    "Write",
]
