"""Typed views over the shared address space.

Applications allocate :class:`SharedVector` / :class:`SharedMatrix`
objects at setup time and use them inside thread bodies to build
``Read``/``Write``/``Prefetch`` operations without raw address
arithmetic::

    grid = runtime.alloc_matrix("grid", np.float64, rows, cols)
    row = yield grid.read_row(5)          # -> np.ndarray of float64
    yield grid.write_row(5, row * 0.5)
    yield grid.prefetch_rows(6, 8)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.api.ops import Prefetch, Read, Write
from repro.errors import ProgramError
from repro.memory import Segment

__all__ = ["SharedVector", "SharedMatrix"]


class SharedVector:
    """A 1-D typed array living in the shared segment."""

    def __init__(self, segment: Segment, dtype: np.dtype, length: int) -> None:
        self.segment = segment
        self.dtype = np.dtype(dtype)
        self.length = length
        if length * self.dtype.itemsize > segment.nbytes:
            raise ProgramError(
                f"vector {segment.name!r}: {length} x {self.dtype} exceeds segment size"
            )

    def addr(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise ProgramError(f"index {index} outside vector {self.segment.name!r}")
        return self.segment.base + index * self.dtype.itemsize

    def region(self, start: int, count: int) -> tuple[int, int]:
        """(addr, nbytes) covering elements [start, start+count)."""
        if count < 0 or start < 0 or start + count > self.length:
            raise ProgramError(
                f"range [{start}, {start + count}) outside vector {self.segment.name!r}"
            )
        return self.addr(start) if count else self.segment.base, count * self.dtype.itemsize

    def read(self, start: int, count: int) -> Read:
        addr, nbytes = self.region(start, count)
        return Read(addr, nbytes, dtype=self.dtype)

    def write(self, start: int, values: np.ndarray) -> Write:
        values = np.ascontiguousarray(values, dtype=self.dtype)
        addr, nbytes = self.region(start, values.size)
        return Write(addr, values)

    def prefetch(self, start: int, count: int, dedup_key: Optional[str] = None) -> Prefetch:
        return Prefetch.of([self.region(start, count)], dedup_key)


class SharedMatrix:
    """A 2-D row-major typed array living in the shared segment."""

    def __init__(self, segment: Segment, dtype: np.dtype, rows: int, cols: int) -> None:
        self.segment = segment
        self.dtype = np.dtype(dtype)
        self.rows = rows
        self.cols = cols
        if rows * cols * self.dtype.itemsize > segment.nbytes:
            raise ProgramError(
                f"matrix {segment.name!r}: {rows}x{cols} x {self.dtype} exceeds segment size"
            )

    @property
    def row_bytes(self) -> int:
        return self.cols * self.dtype.itemsize

    def addr(self, row: int, col: int = 0) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ProgramError(f"({row},{col}) outside matrix {self.segment.name!r}")
        return self.segment.base + (row * self.cols + col) * self.dtype.itemsize

    def row_region(self, row: int, row_count: int = 1) -> tuple[int, int]:
        if row_count < 0 or row < 0 or row + row_count > self.rows:
            raise ProgramError(
                f"rows [{row}, {row + row_count}) outside matrix {self.segment.name!r}"
            )
        return self.addr(row), row_count * self.row_bytes

    def read_row(self, row: int) -> Read:
        addr, nbytes = self.row_region(row)
        return Read(addr, nbytes, dtype=self.dtype)

    def read_rows(self, row: int, row_count: int) -> Read:
        addr, nbytes = self.row_region(row, row_count)
        return Read(addr, nbytes, dtype=self.dtype)

    def write_row(self, row: int, values: np.ndarray) -> Write:
        values = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        if values.size != self.cols:
            raise ProgramError(f"row write needs {self.cols} values, got {values.size}")
        return Write(self.addr(row), values)

    def write_rows(self, row: int, values: np.ndarray) -> Write:
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.ndim != 2 or values.shape[1] != self.cols:
            raise ProgramError(f"expected (k, {self.cols}) block, got {values.shape}")
        addr, nbytes = self.row_region(row, values.shape[0])
        if values.nbytes != nbytes:
            raise ProgramError("block size mismatch")
        return Write(addr, values)

    def read_cell_span(self, row: int, col: int, count: int) -> Read:
        """Read ``count`` consecutive cells starting at (row, col)."""
        if col + count > self.cols:
            raise ProgramError("cell span crosses a row boundary")
        return Read(self.addr(row, col), count * self.dtype.itemsize, dtype=self.dtype)

    def write_cell_span(self, row: int, col: int, values: np.ndarray) -> Write:
        values = np.ascontiguousarray(values, dtype=self.dtype).ravel()
        if col + values.size > self.cols:
            raise ProgramError("cell span crosses a row boundary")
        return Write(self.addr(row, col), values)

    def prefetch_rows(
        self, row: int, row_count: int, dedup_key: Optional[str] = None
    ) -> Prefetch:
        return Prefetch.of([self.row_region(row, row_count)], dedup_key)

    def prefetch_row_list(
        self, rows: Sequence[int], dedup_key: Optional[str] = None
    ) -> Prefetch:
        return Prefetch.of([self.row_region(r) for r in rows], dedup_key)
