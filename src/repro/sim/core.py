"""Discrete-event simulation kernel.

The kernel is a small, deterministic event-driven engine in the style of
SimPy: a :class:`Simulator` owns a time-ordered event heap, and
:class:`Event` objects are one-shot waitable values that callbacks (or
generator-based processes, see :mod:`repro.sim.process`) attach to.

Time is a ``float`` in **microseconds** throughout the library; this is
the natural unit for the paper, whose constants (140 us prefetch issue,
110 us context switch, millisecond-scale remote misses) all live in the
microsecond-to-millisecond range.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "Condition", "AnyOf", "AllOf", "Simulator"]


class Event:
    """A one-shot occurrence that callbacks can wait on.

    An event starts *pending*; it is *triggered* exactly once, either by
    :meth:`succeed` (with an optional value) or :meth:`fail` (with an
    exception).  Callbacks added before the trigger run when it fires;
    callbacks added afterwards run immediately.
    """

    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = Event._PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    # -- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._value is not Event._PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True once the event succeeded (not failed)."""
        return self._value is not Event._PENDING

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self!r} has no value yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- waiting --------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered the callback runs synchronously.
        """
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=f"timeout({delay})")
        sim.schedule(delay, self.succeed, value)


class Condition(Event):
    """Base for events composed from several child events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        if not self.events:
            raise SimulationError("condition requires at least one event")
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(Condition):
    """Succeeds when the first child event triggers.

    The value is the child event itself, so the waiter can learn *which*
    event fired and read its value.
    """

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event)


class AllOf(Condition):
    """Succeeds when every child event has triggered.

    The value is the list of child values, in construction order.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        # _check calls arriving synchronously (pre-triggered children)
        # during construction must not count down or complete: the full
        # child list is not registered yet.
        self._counting = False
        super().__init__(sim, events)
        if self.triggered:  # a pre-triggered child had already failed
            return
        self._remaining = sum(1 for e in self.events if not e.triggered)
        self._counting = True
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        if not self._counting:
            return
        self._remaining -= 1
        if self._remaining <= 0:
            self.succeed([e.value for e in self.events])


class Simulator:
    """The event loop: a heap of ``(time, sequence, callable)`` entries.

    Ties at the same timestamp are broken by insertion order, which makes
    every run fully deterministic.

    The simulator also carries the run's tracer (``self.trace``): every
    layer owns a ``sim`` reference, so attaching the tracer here gives
    the whole stack an instrumentation point without extra plumbing.
    The default is the shared null tracer (``trace.enabled`` is False),
    so untraced runs pay one attribute check per potential event.
    """

    def __init__(self) -> None:
        from repro.ft.sanitizer import NULL_SANITIZER  # deferred: keep sim dep-free
        from repro.profile.profiler import NULL_PROFILER  # deferred: keep sim dep-free
        from repro.trace.tracer import NULL_TRACER  # deferred: keep sim dep-free

        self._now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._handled = 0
        self.trace = NULL_TRACER
        self.sanitizer = NULL_SANITIZER
        self.profile = NULL_PROFILER
        #: Live (spawned, not yet finished/cancelled) processes, in spawn
        #: order.  Powers group cancellation and the deadlock watchdog.
        self._processes: dict[int, Any] = {}
        self._process_ids = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_handled(self) -> int:
        """Number of scheduled callbacks executed so far."""
        return self._handled

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry_time = self._now + delay
        if args:
            heapq.heappush(self._heap, (entry_time, next(self._sequence), lambda: fn(*args)))
        else:
            heapq.heappush(self._heap, (entry_time, next(self._sequence), fn))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- process registry ------------------------------------------------

    def _register_process(self, process: Any) -> int:
        handle = next(self._process_ids)
        self._processes[handle] = process
        return handle

    def _unregister_process(self, handle: int) -> None:
        self._processes.pop(handle, None)

    def live_processes(self, group: Optional[str] = None) -> list:
        """Live processes, optionally restricted to one spawn group."""
        procs = list(self._processes.values())
        if group is None:
            return procs
        return [p for p in procs if p.group == group]

    def cancel_group(self, group: str) -> int:
        """Cancel every live process in ``group``; returns the count."""
        return self.cancel_groups((group,))

    def cancel_groups(self, groups: Iterable[str]) -> int:
        """Cancel every live process in any of ``groups``, two-phase.

        All victims are *marked* cancelled first, then every generator
        is closed (in spawn order).  The split matters: a ``finally``
        block in one victim may synchronously fire events that other
        victims wait on; marking first makes their ``_resume`` a no-op,
        so no protocol code runs mid-teardown.  Closing happens *now*,
        at a controlled point, instead of at an arbitrary future GC.
        """
        wanted = set(groups)
        victims = [p for p in self._processes.values() if p.group in wanted]
        for process in victims:
            process._mark_cancelled()
        for process in victims:
            process._close_generator()
        return len(victims)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Args:
            until: stop once simulated time would exceed this bound.
            max_events: safety valve against runaway simulations.

        Returns:
            The final simulated time.
        """
        count = 0
        while self._heap:
            time, _seq, fn = self._heap[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            if time < self._now:
                raise SimulationError("event heap produced a time in the past")
            self._now = time
            fn()
            self._handled += 1
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}; likely a livelock")
        if not self._heap:
            # Liveness watchdog: the heap drained but processes are still
            # blocked on events nobody can trigger any more — a deadlock.
            # Daemon processes (perpetual service loops) don't count.
            stuck = [p for p in self._processes.values() if not p.daemon]
            if stuck:
                waiters = ", ".join(
                    f"{p.name!r} waiting on {p.waiting_on_name()}" for p in stuck
                )
                raise SimulationError(
                    f"deadlock: event queue empty with blocked processes: {waiters}"
                )
        return self._now
