"""Discrete-event simulation kernel.

The kernel is a small, deterministic event-driven engine in the style of
SimPy: a :class:`Simulator` owns a time-ordered event heap, and
:class:`Event` objects are one-shot waitable values that callbacks (or
generator-based processes, see :mod:`repro.sim.process`) attach to.

Time is a ``float`` in **microseconds** throughout the library; this is
the natural unit for the paper, whose constants (140 us prefetch issue,
110 us context switch, millisecond-scale remote misses) all live in the
microsecond-to-millisecond range.

Hot-path design: every protocol action in a run funnels through this
module, so the kernel avoids interpreter overhead that higher layers
cannot buy back —

- heap entries are plain ``(time, seq, fn, args)`` tuples; ``schedule``
  never allocates a closure per call;
- zero-delay scheduling (process starts, interrupts, same-tick wakeups)
  bypasses the heap entirely via a FIFO of "run at the current time"
  entries, preserving exact global (time, seq) ordering;
- :class:`Event` and its subclasses are ``__slots__``-based, and
  ``triggered`` is a plain attribute rather than a property;
- the run's tracer/sanitizer/profiler hang off the simulator behind
  cached ``trace_on``/``sanitizer_on``/``profile_on`` booleans, so a
  disabled instrument costs one attribute read per hook site.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "Condition", "AnyOf", "AllOf", "Simulator"]


class Event:
    """A one-shot occurrence that callbacks can wait on.

    An event starts *pending*; it is *triggered* exactly once, either by
    :meth:`succeed` (with an optional value) or :meth:`fail` (with an
    exception).  Callbacks added before the trigger run when it fires;
    callbacks added afterwards run immediately.
    """

    # Slot layout: the first five are the event machinery; the last four
    # are *stash* slots — instrumentation state that other layers pin on
    # events crossing process boundaries (resource wait start, profiler
    # span start, remote-miss classification).  They are left unset
    # until first assignment; readers use ``getattr(event, ..., default)``.
    __slots__ = (
        "sim",
        "name",
        "triggered",
        "_value",
        "_exception",
        "_callbacks",
        "_requested_at",
        "profile_t0",
        "needed_remote",
        "miss_counted",
    )

    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self._value: Any = Event._PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[["Event"], None]] = []

    # -- state ----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True once the event succeeded (not failed)."""
        return self._value is not Event._PENDING

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self!r} has no value yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self.triggered = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self.triggered = True
        self._exception = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- waiting --------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered the callback runs synchronously.
        """
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # A static name: formatting the delay per instance would cost an
        # f-string on one of the hottest allocation sites in a run.
        super().__init__(sim, name="timeout")
        sim.schedule(delay, self.succeed, value)


class Condition(Event):
    """Base for events composed from several child events.

    Conditions register one ``_check`` callback per child and *detach*
    from every still-pending child once the outcome is decided, so a
    triggered condition never leaves callback references behind (e.g.
    the losing timeout of a remote-miss-vs-timeout race).
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        if not self.events:
            raise SimulationError("condition requires at least one event")
        for event in self.events:
            if self.triggered:
                # A pre-triggered child already decided the outcome
                # synchronously; registering on the rest would only
                # leak callbacks.
                break
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _detach(self) -> None:
        """Remove ``_check`` from every still-pending child."""
        check = self._check
        for event in self.events:
            if not event.triggered:
                try:
                    event._callbacks.remove(check)
                except ValueError:
                    pass


class AnyOf(Condition):
    """Succeeds when the first child event triggers.

    The value is the child event itself, so the waiter can learn *which*
    event fired and read its value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event)
        self._detach()


class AllOf(Condition):
    """Succeeds when every child event has triggered.

    The value is the list of child values, in construction order.
    """

    __slots__ = ("_counting", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        # _check calls arriving synchronously (pre-triggered children)
        # during construction must not count down or complete: the full
        # child list is not registered yet.
        self._counting = False
        super().__init__(sim, events)
        if self.triggered:  # a pre-triggered child had already failed
            return
        self._remaining = sum(1 for e in self.events if not e.triggered)
        self._counting = True
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            self._detach()
            return
        if not self._counting:
            return
        self._remaining -= 1
        if self._remaining <= 0:
            self.succeed([e.value for e in self.events])


class Simulator:
    """The event loop: a heap of ``(time, sequence, fn, args)`` entries.

    Ties at the same timestamp are broken by insertion order, which makes
    every run fully deterministic.  Zero-delay entries ride a separate
    FIFO (``_nowq``) and interleave with the heap by the same global
    (time, sequence) order — a pure O(1) fast path for the kernel's most
    common scheduling pattern (process starts and same-tick callbacks).

    The simulator also carries the run's tracer (``self.trace``),
    sanitizer and profiler: every layer owns a ``sim`` reference, so
    attaching them here gives the whole stack an instrumentation point
    without extra plumbing.  Each is paired with a cached ``*_on``
    boolean (kept in sync by the property setters), so the shared null
    defaults cost hook sites a single attribute read.
    """

    def __init__(self) -> None:
        from repro.ft.sanitizer import NULL_SANITIZER  # deferred: keep sim dep-free
        from repro.profile.profiler import NULL_PROFILER  # deferred: keep sim dep-free
        from repro.telemetry.sampler import NULL_TELEMETRY  # deferred: keep sim dep-free
        from repro.trace.tracer import NULL_TRACER  # deferred: keep sim dep-free

        #: Current simulated time in microseconds (read-only for users).
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[..., Any], tuple]] = []
        self._nowq: deque[tuple[int, Callable[..., Any], tuple]] = deque()
        self._sequence = itertools.count()
        self._handled = 0
        self.trace = NULL_TRACER
        self.sanitizer = NULL_SANITIZER
        self.profile = NULL_PROFILER
        self.telemetry = NULL_TELEMETRY
        #: Live (spawned, not yet finished/cancelled) processes, in spawn
        #: order.  Powers group cancellation and the deadlock watchdog.
        self._processes: dict[int, Any] = {}
        self._process_ids = itertools.count()

    # -- instrumentation attachment (cached enabled flags) ---------------

    @property
    def trace(self):
        return self._trace

    @trace.setter
    def trace(self, tracer) -> None:
        self._trace = tracer
        self.trace_on = bool(tracer.enabled)

    @property
    def sanitizer(self):
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, sanitizer) -> None:
        self._sanitizer = sanitizer
        self.sanitizer_on = bool(sanitizer.enabled)

    @property
    def profile(self):
        return self._profile

    @profile.setter
    def profile(self, profiler) -> None:
        self._profile = profiler
        self.profile_on = bool(profiler.enabled)

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, sampler) -> None:
        self._telemetry = sampler
        self.telemetry_on = bool(sampler.enabled)

    @property
    def events_handled(self) -> int:
        """Number of scheduled callbacks executed so far."""
        return self._handled

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` microseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if delay == 0:
            # Fast path: runs at the current time, after everything
            # already queued for it (the fresh sequence number is larger
            # than every pending entry's), so FIFO order is exact.
            self._nowq.append((next(self._sequence), fn, args))
        else:
            heapq.heappush(self._heap, (self.now + delay, next(self._sequence), fn, args))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- process registry ------------------------------------------------

    def _register_process(self, process: Any) -> int:
        handle = next(self._process_ids)
        self._processes[handle] = process
        return handle

    def _unregister_process(self, handle: int) -> None:
        self._processes.pop(handle, None)

    def live_processes(self, group: Optional[str] = None) -> list:
        """Live processes, optionally restricted to one spawn group."""
        procs = list(self._processes.values())
        if group is None:
            return procs
        return [p for p in procs if p.group == group]

    def cancel_group(self, group: str) -> int:
        """Cancel every live process in ``group``; returns the count."""
        return self.cancel_groups((group,))

    def cancel_groups(self, groups: Iterable[str]) -> int:
        """Cancel every live process in any of ``groups``, two-phase.

        All victims are *marked* cancelled first, then every generator
        is closed (in spawn order).  The split matters: a ``finally``
        block in one victim may synchronously fire events that other
        victims wait on; marking first makes their ``_resume`` a no-op,
        so no protocol code runs mid-teardown.  Closing happens *now*,
        at a controlled point, instead of at an arbitrary future GC.
        """
        wanted = set(groups)
        victims = [p for p in self._processes.values() if p.group in wanted]
        for process in victims:
            process._mark_cancelled()
        for process in victims:
            process._close_generator()
        return len(victims)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event heap.

        Args:
            until: stop once simulated time would exceed this bound.
                Bounded runs always return exactly ``until`` (clamped up
                when the heap drains early), and never trip the deadlock
                watchdog — the caller deliberately truncated the run.
            max_events: safety valve against runaway simulations.

        Returns:
            The final simulated time.
        """
        heap = self._heap
        nowq = self._nowq
        pop = heapq.heappop
        handled = 0
        truncated = False
        try:
            while True:
                # Pick the globally next entry by (time, seq): _nowq
                # entries run at the current time with later sequence
                # numbers than anything already in the heap for it.
                if nowq:
                    use_heap = False
                    if heap:
                        head = heap[0]
                        if head[0] <= self.now and head[1] < nowq[0][0]:
                            use_heap = True
                elif heap:
                    use_heap = True
                else:
                    break
                if use_heap:
                    if until is not None and heap[0][0] > until:
                        truncated = True
                        break
                    time, _seq, fn, args = pop(heap)
                    if time < self.now:
                        raise SimulationError("event heap produced a time in the past")
                    # Sample telemetry windows *before* time advances
                    # past their boundaries: a sample at boundary W must
                    # see the world with every event before W executed
                    # and none at/after W.  One cached-boolean check on
                    # the heap path only — the _nowq fast path cannot
                    # advance time.
                    if self.telemetry_on and time >= self._telemetry.next_due:
                        self._telemetry.advance_to(time)
                    self.now = time
                else:
                    _seq, fn, args = nowq.popleft()
                fn(*args)
                handled += 1
                if max_events is not None and handled >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._handled += handled
        if until is not None:
            # Bounded run: report the bound itself, whether the next
            # event lies beyond it or the heap drained early — the
            # caller asked for "simulate up to `until`", and downstream
            # accounting (end times, watchdogs) treats it that way.
            if self.now < until:
                self.now = until
            return self.now
        if not truncated:
            # Liveness watchdog (unbounded drains only): the heap
            # drained but processes are still blocked on events nobody
            # can trigger any more — a deadlock.  Daemon processes
            # (perpetual service loops) don't count.
            stuck = [p for p in self._processes.values() if not p.daemon]
            if stuck:
                waiters = ", ".join(
                    f"{p.name!r} waiting on {p.waiting_on_name()}" for p in stuck
                )
                raise SimulationError(
                    f"deadlock: event queue empty with blocked processes: {waiters}"
                )
        return self.now
