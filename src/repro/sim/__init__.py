"""Discrete-event simulation kernel (events, processes, resources, RNG)."""

from repro.sim.core import AllOf, AnyOf, Condition, Event, Simulator, Timeout
from repro.sim.process import Process, spawn
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomSource

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "Process",
    "RandomSource",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
    "spawn",
]
