"""Queueing resources for the simulation kernel.

Two primitives cover everything the library needs:

- :class:`Resource` — a counted resource with a FIFO (optionally
  priority-ordered) wait queue; models a CPU, a link, a NIC.
- :class:`Store` — an unbounded FIFO of items with blocking ``get``;
  models a message queue.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with a priority wait queue.

    ``acquire`` returns an :class:`Event` that succeeds when a unit is
    granted; the holder must call ``release`` exactly once per grant.
    Lower ``priority`` values are served first; ties are FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._acquire_name = f"acquire({name})"
        self._in_use = 0
        self._queue: list[tuple[int, int, Event]] = []
        self._sequence = itertools.count()
        # Occupancy statistics.
        self.total_wait_time = 0.0
        self.total_grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self, priority: int = 0) -> Event:
        event = Event(self.sim, name=self._acquire_name)
        event._requested_at = self.sim.now  # type: ignore[attr-defined]
        if self._in_use < self.capacity and not self._queue:
            self._grant(event)
        else:
            heapq.heappush(self._queue, (priority, next(self._sequence), event))
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._queue and self._in_use < self.capacity:
            _prio, _seq, event = heapq.heappop(self._queue)
            self._grant(event)

    def _grant(self, event: Event) -> None:
        self._in_use += 1
        self.total_grants += 1
        self.total_wait_time += self.sim.now - event._requested_at  # type: ignore[attr-defined]
        event.succeed(self)

    def use(self, duration: float, priority: int = 0) -> Generator[Event, Any, None]:
        """Generator helper: hold the resource for ``duration``.

        Usage inside a process: ``yield from resource.use(10.0)``.
        """
        yield self.acquire(priority)
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an Event that succeeds with
    the oldest item; waiters are served in FIFO order.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._get_name = f"get({name})"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim, name=self._get_name)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (for inspection/tests)."""
        return list(self._items)
