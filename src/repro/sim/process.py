"""Generator-based processes for the simulation kernel.

A *process* is a Python generator that yields :class:`~repro.sim.core.Event`
objects; the process resumes — receiving the event's value — when the
event triggers.  Processes are themselves events, succeeding with the
generator's return value, so they compose (a process can wait on another
process, or on ``AllOf`` over several).

Example::

    def worker(sim):
        yield sim.timeout(5)
        result = yield sim.timeout(3, value="done")
        return result

    sim = Simulator()
    proc = spawn(sim, worker(sim))
    sim.run()
    assert proc.value == "done"

Processes register with the simulator while alive, so the kernel can
(a) detect deadlock — every process blocked with an empty event heap —
and (b) cancel whole *groups* at once, which the fault-tolerance layer
uses to silence a crashed node's in-flight work.
"""

from __future__ import annotations

import contextlib
from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Process", "spawn"]

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator; succeeds with the generator's return value."""

    __slots__ = ("_generator", "_waiting_on", "_cancelled", "group", "daemon", "_handle")

    def __init__(
        self,
        sim: Simulator,
        generator: ProcessGenerator,
        name: str = "",
        group: str = "",
        daemon: bool = False,
    ) -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        self._cancelled = False
        #: Cancellation group (e.g. ``node3`` for everything a crash of
        #: node 3 must silence); empty string means ungrouped.
        self.group = group
        #: Daemon processes (infinite service loops, e.g. link
        #: transmitters) are expected to outlive the workload and do not
        #: count as deadlocked when the event heap drains.
        self.daemon = daemon
        self._handle = sim._register_process(self)
        # Start on the next scheduler tick so the creator finishes its
        # own setup first (matches SimPy semantics).
        sim.schedule(0.0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered and not self._cancelled

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def waiting_on_name(self) -> str:
        """Human-readable description of what blocks this process."""
        if self._waiting_on is None:
            return "<scheduler tick>"
        return self._waiting_on.name or type(self._waiting_on).__name__

    def _dispatch(self) -> None:
        self.sim._unregister_process(self._handle)
        super()._dispatch()

    def _resume(self, value: Any, exception: BaseException | None) -> None:
        if self.triggered or self._cancelled:
            return
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Propagate to waiters; a fire-and-forget process (nobody
            # waiting) must not die silently — crash the simulation.
            if self._callbacks:
                self.fail(exc)
                return
            self.sim._unregister_process(self._handle)
            raise
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event.value, None)

    def interrupt(self, exception: BaseException | None = None) -> None:
        """Throw an exception into the process at its current yield point."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        exc = exception if exception is not None else SimulationError("interrupted")
        self.sim.schedule(0.0, self._resume, None, exc)

    def cancel(self) -> None:
        """Stop the process without triggering it as an event.

        The generator is closed *now* so its ``finally`` blocks run at a
        deterministic point; any callbacks those blocks fire land on a
        process already marked cancelled, whose ``_resume`` is a no-op.
        The process never succeeds nor fails — waiters are abandoned, so
        cancellation is reserved for teardown paths (crash rollback)
        where the waiters are being discarded too.  Group teardown uses
        the two split phases directly (see ``Simulator.cancel_groups``).
        """
        self._mark_cancelled()
        self._close_generator()

    def _mark_cancelled(self) -> None:
        if self.triggered or self._cancelled:
            return
        self._cancelled = True
        self._waiting_on = None
        self.sim._unregister_process(self._handle)

    def _close_generator(self) -> None:
        if not self._cancelled:
            return
        with contextlib.suppress(Exception):
            self._generator.close()


def spawn(
    sim: Simulator,
    generator: ProcessGenerator,
    name: str = "",
    group: str = "",
    daemon: bool = False,
) -> Process:
    """Create and start a :class:`Process` from a generator."""
    return Process(sim, generator, name=name, group=group, daemon=daemon)
