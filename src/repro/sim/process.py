"""Generator-based processes for the simulation kernel.

A *process* is a Python generator that yields :class:`~repro.sim.core.Event`
objects; the process resumes — receiving the event's value — when the
event triggers.  Processes are themselves events, succeeding with the
generator's return value, so they compose (a process can wait on another
process, or on ``AllOf`` over several).

Example::

    def worker(sim):
        yield sim.timeout(5)
        result = yield sim.timeout(3, value="done")
        return result

    sim = Simulator()
    proc = spawn(sim, worker(sim))
    sim.run()
    assert proc.value == "done"
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator

__all__ = ["Process", "spawn"]

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator; succeeds with the generator's return value."""

    def __init__(self, sim: Simulator, generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Start on the next scheduler tick so the creator finishes its
        # own setup first (matches SimPy semantics).
        sim.schedule(0.0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _resume(self, value: Any, exception: BaseException | None) -> None:
        if self.triggered:
            return
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # Propagate to waiters; a fire-and-forget process (nobody
            # waiting) must not die silently — crash the simulation.
            if self._callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event.value, None)

    def interrupt(self, exception: BaseException | None = None) -> None:
        """Throw an exception into the process at its current yield point."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        exc = exception if exception is not None else SimulationError("interrupted")
        self.sim.schedule(0.0, self._resume, None, exc)


def spawn(sim: Simulator, generator: ProcessGenerator, name: str = "") -> Process:
    """Create and start a :class:`Process` from a generator."""
    return Process(sim, generator, name=name)
