"""Deterministic random-number plumbing.

Every stochastic choice in the library (initial molecule positions,
radix keys, jitter) draws from a :class:`RandomSource` derived from one
experiment-level seed, so runs are reproducible bit-for-bit and
sub-streams are independent of each other (adding a draw in one
subsystem does not perturb another).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomSource"]


class RandomSource:
    """A tree of named, independently seeded numpy generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._children: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields the same stream.
        """
        if name not in self._children:
            # Derive a child seed from the name deterministically.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence([self.seed, *digest.tolist()])
            self._children[name] = np.random.Generator(np.random.PCG64(child))
        return self._children[name]

    def fork(self, name: str) -> "RandomSource":
        """A new RandomSource whose streams are independent of this one."""
        offset = sum(name.encode("utf-8")) + 1
        return RandomSource(self.seed * 1_000_003 + offset)
