"""User-level threads and the switch-on-long-latency-event scheduler."""

from repro.threads.scheduler import NodeScheduler, SchedulingPolicy, WaitRequest
from repro.threads.thread import DsmThread, ThreadState

__all__ = ["DsmThread", "NodeScheduler", "SchedulingPolicy", "ThreadState", "WaitRequest"]
