"""User-level thread objects."""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.metrics.counters import StallKind
from repro.sim import Event

__all__ = ["ThreadState", "DsmThread"]


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class DsmThread:
    """One application thread: a generator plus scheduling state."""

    __slots__ = (
        "tid",
        "node_id",
        "body",
        "state",
        "pending_value",
        "wake_event",
        "stall_kind",
        "block_start",
        "run_accum",
        "op_continuation",
        "value_log",
        "total_blocks",
    )

    def __init__(self, tid: int, node_id: int, body: Generator) -> None:
        self.tid = tid
        self.node_id = node_id
        self.body = body
        self.state = ThreadState.READY
        #: value to send into the generator at next resume (Read results).
        self.pending_value: Any = None
        #: event whose trigger makes the thread runnable again.
        self.wake_event: Optional[Event] = None
        self.stall_kind: Optional[StallKind] = None
        self.block_start: float = 0.0
        #: busy time accumulated since the last long-latency event
        #: (feeds the paper's "average run length" statistic).
        self.run_accum: float = 0.0
        #: in-progress operation, resumed after an unblock (set by the
        #: scheduler; an op spanning several faults keeps its place).
        self.op_continuation: Optional[Generator] = None
        #: Every value fed into ``body.send`` so far (recorded only when
        #: the fault-tolerance layer is active).  Generators cannot be
        #: deep-copied, so checkpointing a thread means keeping its input
        #: log: replaying the log into a fresh body deterministically
        #: rebuilds the generator's internal state.
        self.value_log: list = []
        # lifetime statistics
        self.total_blocks = 0

    @property
    def is_done(self) -> bool:
        return self.state is ThreadState.DONE

    @property
    def is_ready(self) -> bool:
        return self.state is ThreadState.READY

    def block(self, wake_event: Event, kind: StallKind, now: float) -> None:
        self.state = ThreadState.BLOCKED
        self.wake_event = wake_event
        self.stall_kind = kind
        self.block_start = now
        self.total_blocks += 1

    def unblock(self) -> float:
        """Mark ready; returns nothing — stall accounting is the
        scheduler's job (it knows the wall clock)."""
        self.state = ThreadState.READY
        self.wake_event = None
        return self.block_start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DsmThread {self.tid} on node {self.node_id} {self.state.value}>"
