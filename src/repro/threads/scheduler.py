"""The per-node user-level thread scheduler.

One scheduler process per node runs application threads and interprets
their operations against the DSM.  The scheduling policy is the paper's:
a thread switch happens on *long-latency events* only — remote memory
misses and/or remote synchronization, depending on which technique is
enabled:

==================  =================  ================
configuration       switch on memory   switch on sync
==================  =================  ================
single-threaded     (no other thread)  (no other thread)
multithreading      yes                yes
combined (nTP)      no (prefetch it)   yes
==================  =================  ================

When no thread is runnable the node idles; the idle interval (minus any
CPU time message handlers consumed during it) is attributed to the stall
kind of the thread whose wake-up ends it — producing the paper's
"Memory Miss Idle" vs "Synchronization Idle" split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.api.ops import Acquire, Barrier, Compute, Op, Prefetch, Read, Release, Write
from repro.errors import ProgramError
from repro.machine.node import Node
from repro.metrics.counters import Category, StallKind
from repro.sim import Event, spawn
from repro.threads.thread import DsmThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.protocol import DsmNode
    from repro.prefetch.engine import PrefetchEngine

__all__ = ["SchedulingPolicy", "WaitRequest", "NodeScheduler"]


@dataclass(frozen=True)
class SchedulingPolicy:
    """Which long-latency events cause a thread switch."""

    switch_on_memory: bool = True
    switch_on_sync: bool = True

    @staticmethod
    def single_threaded() -> "SchedulingPolicy":
        return SchedulingPolicy(switch_on_memory=False, switch_on_sync=False)

    @staticmethod
    def multithreaded() -> "SchedulingPolicy":
        return SchedulingPolicy(switch_on_memory=True, switch_on_sync=True)

    @staticmethod
    def sync_only() -> "SchedulingPolicy":
        """The combined scheme: prefetching owns memory latency."""
        return SchedulingPolicy(switch_on_memory=False, switch_on_sync=True)


@dataclass(frozen=True)
class WaitRequest:
    """Yielded by op execution when the thread must wait for an event."""

    event: Event
    kind: StallKind


class NodeScheduler:
    """Runs this node's threads against the DSM."""

    def __init__(
        self,
        node: Node,
        dsm: "DsmNode",
        policy: SchedulingPolicy,
        compute_quantum: float = 250.0,
    ) -> None:
        self.node = node
        self.dsm = dsm
        self.policy = policy
        self.compute_quantum = compute_quantum
        self.threads: list[DsmThread] = []
        self.prefetch: Optional["PrefetchEngine"] = None
        #: optional runtime-driven prefetcher (Bianchini-style ablation).
        self.history = None
        #: Log every value sent into thread bodies (fault tolerance on):
        #: the logs are what checkpointing a generator-based thread means.
        self.record_values = False
        self._last_run: Optional[DsmThread] = None
        self._ready_signal: Optional[Event] = None
        self._last_woken: Optional[DsmThread] = None
        self._rr = 0
        self.finished_at: Optional[float] = None
        self.done_event: Optional[Event] = None
        #: Trace-only thread segment counters (tid -> segment index): a
        #: context_switch instant names the segment it ends and the one
        #: it starts, so offline analysis can link thread segments into
        #: causal chains.  Touched only under trace_on.
        self._segments: dict[int, int] = {}
        #: Trace stall spans currently open, as (name, tid) pairs, so a
        #: crash rollback can close the spans its cancellations orphan.
        self._open_stalls: list[tuple[str, int]] = []

    # -- setup -------------------------------------------------------------

    def add_thread(self, thread: DsmThread) -> None:
        if thread.node_id != self.node.node_id:
            raise ProgramError(
                f"thread {thread.tid} belongs to node {thread.node_id}, "
                f"not node {self.node.node_id}"
            )
        self.threads.append(thread)

    def start(self) -> Event:
        """Spawn the scheduler process; returns its completion event."""
        if not self.threads:
            raise ProgramError(f"node {self.node.node_id} has no threads")
        self.node.mt_mode = len(self.threads) > 1
        self.done_event = spawn(
            self.node.sim,
            self._main(),
            name=f"sched[{self.node.node_id}]",
            group=f"node{self.node.node_id}",
        )
        return self.done_event

    def restart(self, threads: list[DsmThread]) -> Event:
        """Replace the thread set and spawn a fresh scheduler process.

        Used by crash recovery after the old scheduler process (and its
        threads) were cancelled: the rebuilt threads take over and a new
        ``done_event`` supersedes the abandoned one.
        """
        if self.node.sim.trace_on:
            tr = self.node.sim.trace
            # Close the stall spans the discarded threads left open
            # (their wake callbacks will never fire), so exported
            # traces keep balanced begin/end pairs.
            for name, tid in self._open_stalls:
                tr.end(self.node.sim.now, "sched", name, self.node.node_id, tid=tid)
        self._open_stalls.clear()
        self._segments = {}
        self.threads = threads
        self._last_run = None
        self._ready_signal = None
        self._last_woken = None
        self._rr = 0
        self.finished_at = None
        return self.start()

    @property
    def local_thread_count(self) -> int:
        return len(self.threads)

    # -- main loop -----------------------------------------------------------

    def _main(self) -> Generator:
        while True:
            thread = self._next_ready()
            if thread is None:
                blocked = [t for t in self.threads if t.state is ThreadState.BLOCKED]
                if not blocked:
                    break  # every thread is done
                yield from self._idle_until_wakeup()
                continue
            yield from self._dispatch(thread)
        if self.node.sim.trace_on:
            # Causal end-of-node marker: the PAG takes the run's wall
            # clock as the latest sched_finish across nodes (trailing
            # transport acks may still occupy the CPU afterwards, but
            # they are off the application's critical path by definition).
            self.node.sim.trace.instant(
                self.node.sim.now, "sched", "sched_finish", self.node.node_id
            )
        self.finished_at = self.node.sim.now

    def _next_ready(self) -> Optional[DsmThread]:
        n = len(self.threads)
        for step in range(n):
            candidate = self.threads[(self._rr + step) % n]
            if candidate.is_ready:
                self._rr = (self._rr + step + 1) % n
                return candidate
        return None

    def _idle_until_wakeup(self) -> Generator:
        """No runnable thread: wait, then attribute the idle time."""
        sim = self.node.sim
        t_start = sim.now
        charged_start = self.node.breakdown.charged_cpu
        self._ready_signal = Event(sim, name=f"ready@{self.node.node_id}")
        self._last_woken = None
        yield self._ready_signal
        woken = self._last_woken
        self._ready_signal = None
        interval = sim.now - t_start
        handler_time = self.node.breakdown.charged_cpu - charged_start
        idle = max(0.0, interval - handler_time)
        kind = woken.stall_kind if woken is not None and woken.stall_kind else StallKind.MEMORY
        self.node.breakdown.charge(kind.idle_category, idle)
        tr = sim.trace
        if tr.enabled and idle > 0:
            tr.slice(sim.now - idle, idle, "cpu", kind.idle_category.value, self.node.node_id)

    # -- blocking/waking -------------------------------------------------------

    def _begin_stall(self, thread: DsmThread) -> None:
        self.node.events.record_run_length(thread.run_accum)
        thread.run_accum = 0.0

    def _end_stall(
        self, thread: DsmThread, kind: StallKind, started: float, event: Optional[Event] = None
    ) -> None:
        stall = self.node.sim.now - started
        if self.node.sim.profile_on:
            pf = self.node.sim.profile
            # Per-thread stall distributions, before the miss/fault
            # classification below (which early-returns for some kinds).
            pf.observe(self.node.node_id, f"stall_{kind.value}_us", stall)
        events = self.node.events
        if kind is StallKind.MEMORY:
            if event is not None and not getattr(event, "needed_remote", False):
                # Satisfied locally (prefetch heap): a fault, not a miss.
                events.cache_faults += 1
                return
            if event is not None and getattr(event, "miss_counted", False):
                # Several local threads sharing one fetch (request
                # combining) are ONE remote miss, as in the paper's
                # Table 2 accounting.
                return
            if event is not None:
                event.miss_counted = True  # type: ignore[attr-defined]
            events.remote_misses += 1
            events.remote_miss_stall += stall
        elif kind is StallKind.LOCK:
            events.remote_lock_misses += 1
            events.remote_lock_stall += stall
        else:
            events.barrier_waits += 1
            events.barrier_stall += stall

    def _block(self, thread: DsmThread, request: WaitRequest) -> None:
        self._begin_stall(thread)
        thread.block(request.event, request.kind, self.node.sim.now)
        if self.node.sim.trace_on:
            tr = self.node.sim.trace
            tr.begin(
                self.node.sim.now,
                "sched",
                f"stall:{request.kind.value}",
                self.node.node_id,
                tid=thread.tid,
            )
            self._open_stalls.append((f"stall:{request.kind.value}", thread.tid))

        def on_wake(_event: Event) -> None:
            started = thread.block_start
            thread.unblock()
            self._end_stall(thread, request.kind, started, request.event)
            if self.node.sim.trace_on:
                tr = self.node.sim.trace
                tr.end(
                    self.node.sim.now,
                    "sched",
                    f"stall:{request.kind.value}",
                    self.node.node_id,
                    tid=thread.tid,
                )
                self._open_stalls.remove((f"stall:{request.kind.value}", thread.tid))
            if self._ready_signal is not None and not self._ready_signal.triggered:
                self._last_woken = thread
                self._ready_signal.succeed(None)

        request.event.add_callback(on_wake)

    def _inline_wait(self, thread: DsmThread, request: WaitRequest) -> Generator:
        """Wait without switching (single-threaded, or policy says so)."""
        self._begin_stall(thread)
        sim = self.node.sim
        t_start = sim.now
        charged_start = self.node.breakdown.charged_cpu
        tr = sim.trace
        stall_name = f"stall:{request.kind.value}"
        if tr.enabled:
            tr.begin(t_start, "sched", stall_name, self.node.node_id, tid=thread.tid)
            self._open_stalls.append((stall_name, thread.tid))
        yield request.event
        self._end_stall(thread, request.kind, t_start, request.event)
        if tr.enabled:
            tr.end(sim.now, "sched", stall_name, self.node.node_id, tid=thread.tid)
            self._open_stalls.remove((stall_name, thread.tid))
        interval = sim.now - t_start
        handler_time = self.node.breakdown.charged_cpu - charged_start
        idle = max(0.0, interval - handler_time)
        self.node.breakdown.charge(request.kind.idle_category, idle)
        if tr.enabled and idle > 0:
            tr.slice(sim.now - idle, idle, "cpu", request.kind.idle_category.value, self.node.node_id)

    def _should_switch(self, kind: StallKind) -> bool:
        if len(self.threads) <= 1:
            return False
        if kind is StallKind.MEMORY:
            return self.policy.switch_on_memory
        return self.policy.switch_on_sync

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, thread: DsmThread) -> Generator:
        if (
            self._last_run is not None
            and self._last_run is not thread
            and len(self.threads) > 1
        ):
            yield from self.node.occupy(self.node.costs.context_switch, Category.MT)
            self.node.events.context_switches += 1
            if self.node.sim.trace_on:
                tr = self.node.sim.trace
                # Segment links: the switch ends from_tid's current
                # segment and starts a fresh one for to_tid, so offline
                # analysis can stitch per-thread execution chains.
                from_seg = self._segments.get(self._last_run.tid, 0)
                to_seg = self._segments.get(thread.tid, 0) + 1
                self._segments[thread.tid] = to_seg
                tr.instant(
                    self.node.sim.now,
                    "sched",
                    "context_switch",
                    self.node.node_id,
                    from_tid=self._last_run.tid,
                    to_tid=thread.tid,
                    from_seg=from_seg,
                    to_seg=to_seg,
                )
        self._last_run = thread
        thread.state = ThreadState.RUNNING

        while True:
            continuation = getattr(thread, "op_continuation", None)
            if continuation is None:
                if self.record_values:
                    v = thread.pending_value
                    thread.value_log.append(v.copy() if isinstance(v, np.ndarray) else v)
                try:
                    op = thread.body.send(thread.pending_value)
                except StopIteration:
                    thread.state = ThreadState.DONE
                    return
                thread.pending_value = None
                continuation = self._execute(thread, op)
                thread.op_continuation = continuation
            outcome = yield from self._drive(thread, continuation)
            if outcome == "blocked":
                return

    def _drive(self, thread: DsmThread, continuation: Generator) -> Generator:
        """Advance one op's execution; returns 'blocked' or 'finished'."""
        send_value: Any = None
        while True:
            try:
                item = continuation.send(send_value)
            except StopIteration as stop:
                thread.pending_value = stop.value
                thread.op_continuation = None
                return "finished"
            send_value = None
            if isinstance(item, WaitRequest):
                if self._should_switch(item.kind):
                    self._block(thread, item)
                    return "blocked"
                yield from self._inline_wait(thread, item)
            else:
                send_value = yield item

    # -- op execution (thread-context generators) -----------------------------------

    def _execute(self, thread: DsmThread, op: Op) -> Generator:
        if isinstance(op, Compute):
            return self._execute_compute(thread, op)
        if isinstance(op, Read):
            return self._execute_read(thread, op)
        if isinstance(op, Write):
            return self._execute_write(thread, op)
        if isinstance(op, Acquire):
            return self._execute_acquire(thread, op)
        if isinstance(op, Release):
            return self._execute_release(thread, op)
        if isinstance(op, Barrier):
            return self._execute_barrier(thread, op)
        if isinstance(op, Prefetch):
            return self._execute_prefetch(thread, op)
        raise ProgramError(f"thread {thread.tid} yielded unknown op {op!r}")

    def _execute_compute(self, thread: DsmThread, op: Compute) -> Generator:
        remaining = op.us
        while remaining > 0:
            chunk = min(self.compute_quantum, remaining)
            yield from self.node.occupy(chunk, Category.BUSY)
            thread.run_accum += chunk
            remaining -= chunk

    def _ensure_pages(
        self, thread: DsmThread, addr: int, nbytes: int, write: bool = False
    ) -> Generator:
        """Fault in every stale page of a region, in address order."""
        for page_id in self.node.pages.pages_in_range(addr, nbytes):
            guard = 0
            while True:
                fetch = self.dsm.ensure_valid(page_id, write)
                if fetch is None:
                    break
                guard += 1
                if guard > 128:
                    raise ProgramError(f"page {page_id} never becomes valid")
                if self.prefetch is not None:
                    self.prefetch.on_fault_stall(page_id)
                if self.history is not None:
                    self.history.on_fault(page_id)
                yield WaitRequest(fetch, StallKind.MEMORY)

    def _execute_read(self, thread: DsmThread, op: Read) -> Generator:
        yield from self._ensure_pages(thread, op.addr, op.nbytes)
        data = self.node.pages.read(op.addr, op.nbytes)
        return data.view(op.dtype)

    def _execute_write(self, thread: DsmThread, op: Write) -> Generator:
        data = np.ascontiguousarray(op.data).view(np.uint8).ravel()
        pages = self.node.pages.pages_in_range(op.addr, len(data))
        # The store must land while every page is verifiably writable
        # (the protocol's predicate: valid + dirty with a live twin
        # under LRC, exclusively owned under SC).  Each touch may yield
        # for the CPU, and during that yield a remote diff request can
        # flush the page — or an invalidation strip ownership — so the
        # final check-and-store below runs with NO yields between a
        # successful check and the write.
        guard = 0
        while True:
            ready = all(self.dsm.page_writable(page_id) for page_id in pages)
            if ready:
                break
            guard += 1
            if guard > 256:
                raise ProgramError(f"write to {op.addr} cannot stabilize")
            yield from self._ensure_pages(thread, op.addr, len(data), write=True)
            for page_id in pages:
                # A concurrent invalidation (e.g. a lock grant to another
                # local thread) may strike while touching a neighbour;
                # skip it now — the loop re-ensures before the store.
                if self.dsm.page_valid(page_id):
                    yield from self.dsm.op_write_touch(page_id)
        self.node.pages.write(op.addr, data)

    def _execute_acquire(self, thread: DsmThread, op: Acquire) -> Generator:
        wait = yield from self.dsm.locks.op_acquire(op.lock_id)
        if wait is not None:
            yield WaitRequest(wait, StallKind.LOCK)
        if self.history is not None:
            yield from self.history.on_sync_complete(("lock", op.lock_id))

    def _execute_release(self, thread: DsmThread, op: Release) -> Generator:
        yield from self.dsm.locks.op_release(op.lock_id)

    def _execute_barrier(self, thread: DsmThread, op: Barrier) -> Generator:
        wait = yield from self.dsm.barriers.op_arrive(op.barrier_id, self.local_thread_count)
        yield WaitRequest(wait, StallKind.BARRIER)
        if self.history is not None:
            yield from self.history.on_sync_complete(("barrier", op.barrier_id))

    def _execute_prefetch(self, thread: DsmThread, op: Prefetch) -> Generator:
        if self.prefetch is None:
            return  # prefetch ops are no-ops when the technique is off
        yield from self.prefetch.op_prefetch(op)

    # -- checkpoint / recovery ---------------------------------------------

    def rebuild_thread(self, tid: int, body: Generator, values: list) -> DsmThread:
        """Reconstruct a thread from a fresh body and its input log.

        Replaying the logged values into the fresh generator rebuilds its
        internal state without re-running any protocol action.  A thread
        with a non-empty log was (by the consistent-cut argument) blocked
        at a barrier when the checkpoint was taken: after replay the body
        has just yielded that :class:`Barrier` op, so the thread is left
        READY with a continuation that re-waits on the restored episode.
        ndarray values are fed as copies — the body may mutate what it
        receives, and the log must survive for later rollbacks.
        """
        from repro.errors import CheckpointError

        thread = DsmThread(tid, self.node.node_id, body)
        thread.value_log = [
            v.copy() if isinstance(v, np.ndarray) else v for v in values
        ]
        op: Optional[Op] = None
        for v in values:
            feed = v.copy() if isinstance(v, np.ndarray) else v
            try:
                op = body.send(feed)
            except StopIteration:
                thread.state = ThreadState.DONE
                return thread
        if values:
            if not isinstance(op, Barrier):
                raise CheckpointError(
                    f"thread {tid} was checkpointed mid-{type(op).__name__}, "
                    "not at a barrier — the cut is not consistent"
                )
            wake = self.dsm.barriers.register_restored_waiter(op.barrier_id)
            thread.op_continuation = self._restored_barrier_continuation(op.barrier_id, wake)
        return thread

    def _restored_barrier_continuation(self, barrier_id: int, wake: Event) -> Generator:
        """The tail of ``_execute_barrier`` for a restored thread: the
        arrival already happened (it is part of the checkpointed barrier
        state), only the wait — and the post-barrier hook — remain."""
        yield WaitRequest(wake, StallKind.BARRIER)
        if self.history is not None:
            yield from self.history.on_sync_complete(("barrier", barrier_id))
