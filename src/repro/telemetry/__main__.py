"""Offline telemetry rendering: ``python -m repro.telemetry FILE``.

``FILE`` is a RunReport JSON with a telemetry section, a bare section
written by ``--telemetry PATH``, or a Chrome trace whose counter tracks
were exported alongside the run.  Renders a text dashboard to stdout
(or ``--html OUT`` for a self-contained page) and re-runs the watchdogs
over the loaded series.

Exit status: 0 on success, 1 when ``--strict`` and the watchdogs
report findings, 2 when the file cannot be loaded.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.render import load_section, render_html, render_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Render a telemetry dashboard from a RunReport or trace file.",
    )
    parser.add_argument("file", help="RunReport JSON, telemetry section, or Chrome trace")
    parser.add_argument("--html", metavar="OUT", help="write a self-contained HTML dashboard")
    parser.add_argument("--node", type=int, help="restrict the text dashboard to one node")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the watchdogs report findings",
    )
    args = parser.parse_args(argv)
    try:
        section = load_section(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(section, title=args.file))
        print(f"wrote {args.html}")
    else:
        print(render_text(section, node=args.node))
    findings = section.get("findings", [])
    if args.strict and findings:
        print(f"strict: {len(findings)} watchdog finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
