"""Deterministic sim-time telemetry: flight recorder, watchdogs, rendering.

``repro.telemetry`` is the observability plane over the simulator: an
opt-in windowed sampler (:class:`TelemetrySampler`) that records
per-node time series into the RunReport, watchdog monitors
(:func:`run_watchdogs`) that grade those series for mid-run pathologies
the end-of-run aggregates hide, and offline renderers
(``python -m repro.telemetry``) for self-contained dashboards.  Like
the tracer and sanitizer, the default is a NULL object
(:data:`NULL_TELEMETRY`) whose cost is one cached-boolean check in the
run loop — disabled runs are byte-identical to a build without the
plane at all.
"""

from repro.telemetry.sampler import (
    DELTA_METRICS,
    GAUGE_METRICS,
    NETWORK_METRICS,
    NULL_TELEMETRY,
    PEER_METRICS,
    TELEMETRY_SCHEMA_VERSION,
    NullTelemetry,
    TelemetryConfig,
    TelemetrySampler,
)
from repro.telemetry.watchdog import WatchdogConfig, run_watchdogs

__all__ = [
    "TelemetryConfig",
    "TelemetrySampler",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "WatchdogConfig",
    "run_watchdogs",
    "TELEMETRY_SCHEMA_VERSION",
    "GAUGE_METRICS",
    "DELTA_METRICS",
    "PEER_METRICS",
    "NETWORK_METRICS",
]
