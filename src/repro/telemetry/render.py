"""Offline dashboard rendering for telemetry sections.

Input is either a RunReport JSON carrying a ``telemetry`` section or a
Chrome/Perfetto trace whose counter (``"C"``) tracks were exported by
:func:`repro.trace.export.chrome_trace` — the exporter and this module
share the metric taxonomy in :mod:`repro.telemetry.sampler`, so a trace
round-trips back into the same section shape.

Output is a plain-text dashboard (sparkline rows per node per metric)
or a fully self-contained HTML page (inline SVG polylines, no external
assets), so a CI artifact renders anywhere.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Optional

from repro.telemetry.sampler import DELTA_METRICS, GAUGE_METRICS, PEER_METRICS

__all__ = ["load_section", "section_from_trace", "render_text", "render_html"]

_SPARK = "▁▂▃▄▅▆▇█"


def load_section(path: str) -> dict:
    """Load a telemetry section from a RunReport or Chrome trace file.

    Raises ``ValueError`` when the file carries no telemetry.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    if isinstance(data.get("telemetry"), dict):
        return data["telemetry"]  # a RunReport with the section attached
    if isinstance(data.get("version"), int) and "windows" in data:
        return data  # a bare section written by --telemetry PATH
    if isinstance(data.get("traceEvents"), list):
        section = section_from_trace(data)
        if section is None:
            raise ValueError(f"{path}: trace has no telemetry counter tracks")
        return section
    raise ValueError(f"{path}: neither a RunReport, a telemetry section, nor a trace")


def section_from_trace(trace: dict) -> Optional[dict]:
    """Rebuild a (partial) telemetry section from Chrome counter events.

    Counter events carry one value per (pid, metric, ts); per-peer
    metrics carry one series per peer in their args.  Epochs and the
    original findings are not exported as counters, so the rebuilt
    section re-runs the watchdogs over the recovered series — the
    series are identical, hence so are the findings.
    """
    samples: dict[int, dict[str, list]] = {}
    peer_samples: dict[int, dict[str, dict[str, list]]] = {}
    windows: list[float] = []
    seen_ts: set[float] = set()
    interval = None
    for event in trace["traceEvents"]:
        if not isinstance(event, dict) or event.get("ph") != "C":
            continue
        if event.get("cat") != "telemetry":
            continue
        name = event.get("name")
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        ts = float(event["ts"])
        if ts not in seen_ts:
            seen_ts.add(ts)
            windows.append(ts)
        pid = int(event["pid"])
        if name in GAUGE_METRICS or name in DELTA_METRICS:
            samples.setdefault(pid, {}).setdefault(name, []).append(args["value"])
        elif isinstance(name, str) and name.startswith("transport.peer."):
            metric = name[len("transport.peer.") :]
            if metric in PEER_METRICS:
                by_peer = peer_samples.setdefault(pid, {})
                for peer_key, value in args.items():
                    by_peer.setdefault(peer_key, {}).setdefault(metric, []).append(value)
    if not windows:
        return None
    nodes: dict[str, dict] = {}
    for pid in sorted(samples):
        series = samples[pid]
        entry: dict[str, Any] = {
            "gauges": {m: series[m] for m in GAUGE_METRICS if m in series},
            "deltas": {m: series[m] for m in DELTA_METRICS if m in series},
        }
        peers = peer_samples.get(pid)
        if peers:
            entry["peers"] = {
                key: peers[key] for key in sorted(peers, key=int)
            }
        nodes[str(pid)] = entry
    section = {
        "version": int(trace.get("otherData", {}).get("telemetry_version", 1)),
        "interval_us": interval if interval is not None else (
            windows[1] - windows[0] if len(windows) > 1 else 0.0
        ),
        "windows": windows,
        "nodes": nodes,
    }
    from repro.telemetry.watchdog import run_watchdogs

    section["findings"] = run_watchdogs(section)
    return section


def _sparkline(values: list, width: int = 60) -> str:
    if not values:
        return ""
    numeric = [float(v) for v in values]
    if len(numeric) > width:
        # Downsample by taking the max of each bucket (peaks matter).
        bucketed = []
        for index in range(width):
            lo = index * len(numeric) // width
            hi = max(lo + 1, (index + 1) * len(numeric) // width)
            bucketed.append(max(numeric[lo:hi]))
        numeric = bucketed
    low, high = min(numeric), max(numeric)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(numeric)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - low) / span * (len(_SPARK) - 1) + 0.5))]
        for v in numeric
    )


def _node_metrics(entry: dict) -> list[tuple[str, list]]:
    rows: list[tuple[str, list]] = []
    for name in GAUGE_METRICS:
        series = entry.get("gauges", {}).get(name)
        if series:
            rows.append((name, series))
    for name in DELTA_METRICS:
        series = entry.get("deltas", {}).get(name)
        if series:
            rows.append((name, series))
    return rows


def render_text(section: dict, node: Optional[int] = None) -> str:
    """The terminal dashboard: sparkline per metric per node."""
    lines: list[str] = []
    windows = section.get("windows", [])
    lines.append(
        f"telemetry v{section.get('version')}: {len(windows)} windows of "
        f"{section.get('interval_us', 0):g} us"
        + (f" (last at {windows[-1]:g} us)" if windows else "")
    )
    for node_key in sorted(section.get("nodes", {}), key=int):
        if node is not None and int(node_key) != node:
            continue
        entry = section["nodes"][node_key]
        lines.append(f"node {node_key}:")
        for name, series in _node_metrics(entry):
            numeric = [float(v) for v in series]
            lines.append(
                f"  {name:24s} {_sparkline(series)}  "
                f"min {min(numeric):g} max {max(numeric):g} last {numeric[-1]:g}"
            )
        for peer_key in sorted(entry.get("peers", {}), key=int):
            track = entry["peers"][peer_key]
            cwnd = track.get("cwnd", [])
            rto = track.get("rto_us", [])
            if cwnd:
                lines.append(
                    f"  peer {peer_key} cwnd{' ':15s}{_sparkline(cwnd)}  "
                    f"min {min(cwnd):g} last {cwnd[-1]:g}"
                )
            if rto:
                lines.append(
                    f"  peer {peer_key} rto_us{' ':13s}{_sparkline(rto)}  "
                    f"max {max(rto):g} last {rto[-1]:g}"
                )
        epochs = entry.get("epochs", [])
        if epochs:
            worst = max(epochs, key=lambda e: e.get("stall_ratio", 0.0))
            lines.append(
                f"  epochs: {len(epochs)}, worst stall_ratio "
                f"{worst.get('stall_ratio', 0.0):g} "
                f"(barrier {worst.get('barrier')} episode {worst.get('episode')})"
            )
    network = section.get("network", {}).get("deltas", {})
    if network:
        lines.append("network:")
        for name, series in network.items():
            numeric = [float(v) for v in series]
            lines.append(
                f"  {name:24s} {_sparkline(series)}  "
                f"sum {sum(numeric):g} max {max(numeric):g}"
            )
    findings = section.get("findings", [])
    if findings:
        lines.append(f"findings ({len(findings)}):")
        for finding in findings:
            lines.append(
                f"  [{finding['monitor']}] node {finding['node']}"
                + (f" peer {finding['peer']}" if "peer" in finding else "")
                + f" windows {finding['window_start']}..{finding['window_end']}"
                f" ({finding['t_start_us']:g}-{finding['t_end_us']:g} us): "
                f"{finding['detail']}"
            )
    else:
        lines.append("findings: none")
    return "\n".join(lines)


def _svg_polyline(values: list, width: int = 360, height: int = 48) -> str:
    numeric = [float(v) for v in values]
    low, high = min(numeric), max(numeric)
    span = high - low or 1.0
    step = width / max(1, len(numeric) - 1)
    points = " ".join(
        f"{index * step:.1f},{height - (value - low) / span * (height - 4) - 2:.1f}"
        for index, value in enumerate(numeric)
    )
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#2b6cb0" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def render_html(section: dict, title: str = "telemetry") -> str:
    """A self-contained HTML dashboard (inline SVG, no assets)."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        "<style>body{font-family:monospace;margin:1.5em;background:#fafafa}"
        "table{border-collapse:collapse}td,th{padding:2px 10px;text-align:left;"
        "border-bottom:1px solid #eee}h2{margin-top:1.2em}"
        ".finding{color:#b00;margin:2px 0}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f"<p>{len(section.get('windows', []))} windows of "
        f"{section.get('interval_us', 0):g} us "
        f"(schema v{section.get('version')})</p>",
    ]
    findings = section.get("findings", [])
    parts.append(f"<h2>watchdog findings ({len(findings)})</h2>")
    if findings:
        for finding in findings:
            parts.append(
                f"<div class='finding'>[{_html.escape(finding['monitor'])}] "
                f"node {finding['node']}"
                + (f" peer {finding['peer']}" if "peer" in finding else "")
                + f" windows {finding['window_start']}&ndash;{finding['window_end']}: "
                f"{_html.escape(finding['detail'])}</div>"
            )
    else:
        parts.append("<p>none</p>")
    for node_key in sorted(section.get("nodes", {}), key=int):
        entry = section["nodes"][node_key]
        parts.append(f"<h2>node {node_key}</h2><table>")
        parts.append("<tr><th>metric</th><th>series</th><th>min</th><th>max</th>"
                     "<th>last</th></tr>")
        for name, series in _node_metrics(entry):
            numeric = [float(v) for v in series]
            parts.append(
                f"<tr><td>{_html.escape(name)}</td><td>{_svg_polyline(series)}</td>"
                f"<td>{min(numeric):g}</td><td>{max(numeric):g}</td>"
                f"<td>{numeric[-1]:g}</td></tr>"
            )
        for peer_key in sorted(entry.get("peers", {}), key=int):
            track = entry["peers"][peer_key]
            for metric in ("cwnd", "rto_us", "backlog"):
                series = track.get(metric)
                if series:
                    numeric = [float(v) for v in series]
                    parts.append(
                        f"<tr><td>peer {peer_key} {metric}</td>"
                        f"<td>{_svg_polyline(series)}</td>"
                        f"<td>{min(numeric):g}</td><td>{max(numeric):g}</td>"
                        f"<td>{numeric[-1]:g}</td></tr>"
                    )
        parts.append("</table>")
        epochs = entry.get("epochs", [])
        if epochs:
            parts.append("<h3>barrier epochs</h3><table>")
            parts.append(
                "<tr><th>barrier</th><th>episode</th><th>start us</th><th>end us</th>"
                "<th>stall us</th><th>switches</th><th>stall ratio</th></tr>"
            )
            for epoch in epochs:
                parts.append(
                    f"<tr><td>{epoch.get('barrier')}</td><td>{epoch.get('episode')}</td>"
                    f"<td>{epoch.get('start_us'):g}</td><td>{epoch.get('end_us'):g}</td>"
                    f"<td>{epoch.get('stall_us'):g}</td><td>{epoch.get('switches')}</td>"
                    f"<td>{epoch.get('stall_ratio', 0.0):g}</td></tr>"
                )
            parts.append("</table>")
    network = section.get("network", {}).get("deltas", {})
    if network:
        parts.append("<h2>network</h2><table>")
        for name, series in network.items():
            numeric = [float(v) for v in series]
            parts.append(
                f"<tr><td>{_html.escape(name)}</td><td>{_svg_polyline(series)}</td>"
                f"<td>sum {sum(numeric):g}</td><td>max {max(numeric):g}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)
