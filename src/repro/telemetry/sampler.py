"""The sim-time flight recorder: deterministic windowed sampling.

A :class:`TelemetrySampler` rides the simulation clock: every
``interval_us`` of *simulated* time it snapshots gauges and counter
deltas across the whole stack — scheduler occupancy, DSM protocol
state, prefetch activity, and the adaptive transport's live estimator —
into per-node time series.  The sampler is a pure observer (no RNG, no
scheduling, no protocol mutation), so the simulation schedule and the
RunReport core are byte-identical with it on or off; with it on, the
series are identical across repeated runs and ``--jobs N``.

Mechanically the sampler does **not** schedule events: a perpetual
sampling process would keep the event heap alive forever.  Instead the
:class:`~repro.sim.Simulator` run loop consults ``next_due`` whenever
simulated time is about to advance (one cached-boolean check per heap
pop, the same cost model as the tracer) and calls :meth:`advance_to`,
which emits one sample per crossed window boundary.  A sample at
boundary ``W`` covers ``[W - interval, W)``: every event strictly
before ``W`` has executed, no event at or after ``W`` has.  The final
(usually partial) window is flushed by :meth:`finalize` at end of run,
so summing a delta series always reconciles exactly with the end-of-run
counter totals.

Series taxonomy (one list per metric per node, one entry per window):

- *gauges* — instantaneous values at the window boundary (runnable and
  blocked thread counts, write-notice backlog, stored diff bytes,
  unacked/backlog/parked transport queues) plus cumulative float sums
  (busy and stall microseconds), which consumers difference themselves;
- *deltas* — integer counter increments within the window.  Integer
  arithmetic is exact, so ``sum(series) == end-of-run total`` holds
  bit-for-bit; float counters deliberately stay on the gauge side.
- *peers* — per-destination adaptive estimator state (srtt, rttvar,
  rto, cwnd, in-flight, pacing backlog, parked), present only on
  adaptive runs with ``TelemetryConfig(transport_peers=True)``.
- *epochs* — per-barrier-episode stall/switch accounting, closed by the
  barrier-release hook rather than the sampling clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.metrics.counters import Category
from repro.threads.thread import ThreadState

__all__ = [
    "TelemetryConfig",
    "TelemetrySampler",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TELEMETRY_SCHEMA_VERSION",
    "GAUGE_METRICS",
    "DELTA_METRICS",
    "PEER_METRICS",
]

#: Bumped when the telemetry section layout changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

#: Per-node gauge series (instantaneous or cumulative-float), in
#: emission order.  Shared with the Perfetto exporter and the offline
#: renderer so counter tracks round-trip back into the same taxonomy.
GAUGE_METRICS = (
    "sched.runnable",
    "sched.blocked",
    "sched.busy_us_total",
    "sched.stall_us_total",
    "dsm.wn_backlog",
    "dsm.diff_bytes_stored",
    "dsm.intervals",
    "transport.unacked",
    "transport.backlog",
    "transport.parked",
)

#: Per-node integer counter-delta series, in emission order.  Each maps
#: to an exact end-of-run total (the reconciliation invariant).
DELTA_METRICS = (
    "sched.ctx_switches",
    "mem.remote_misses",
    "sync.lock_misses",
    "sync.barrier_waits",
    "dsm.faults",
    "dsm.diff_requests",
    "transport.retransmissions",
    "transport.timeouts",
    "transport.paced",
    "prefetch.issued",
    "prefetch.hits",
    "prefetch.shed",
)

#: Per-peer adaptive estimator series (adaptive runs only).
PEER_METRICS = (
    "srtt_us",
    "rttvar_us",
    "rto_us",
    "cwnd",
    "in_flight",
    "backlog",
    "parked",
)

#: Cluster-wide integer traffic deltas.
NETWORK_METRICS = ("net.messages", "net.bytes", "net.drops", "net.retransmits")


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling-plane configuration (``RunConfig(telemetry=...)``)."""

    #: Window width in simulated microseconds.
    interval_us: float = 5_000.0
    #: Record per-peer adaptive estimator series (srtt/rto/cwnd/...).
    #: Only meaningful on adaptive-transport runs; dropping it shrinks
    #: the section by O(nodes^2) series.
    transport_peers: bool = True
    #: Record per-barrier-episode stall/switch accounting.
    epochs: bool = True

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ConfigError(f"telemetry interval_us must be > 0, got {self.interval_us}")


class _NodeSeries:
    """Collected series for one node."""

    __slots__ = ("gauges", "deltas", "peers", "epochs", "last")

    def __init__(self) -> None:
        self.gauges: dict[str, list] = {name: [] for name in GAUGE_METRICS}
        self.deltas: dict[str, list] = {name: [] for name in DELTA_METRICS}
        #: peer id (str) -> metric -> series.
        self.peers: dict[str, dict[str, list]] = {}
        self.epochs: list[dict] = []
        #: Previous counter snapshot (dict metric -> value).
        self.last: dict[str, int] = {name: 0 for name in DELTA_METRICS}


class TelemetrySampler:
    """Collects the time series; attach to a runtime, then to the sim."""

    enabled = True

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        #: Next window boundary in simulated microseconds.  The run loop
        #: checks this before every time advance.
        self.next_due: float = self.config.interval_us
        self._windows_done = 0
        self._window_ts: list[float] = []
        self._runtime = None
        self._nodes: list[_NodeSeries] = []
        self._net_last = {name: 0 for name in NETWORK_METRICS}
        self._net_deltas: dict[str, list] = {name: [] for name in NETWORK_METRICS}
        #: Per-node open barrier-epoch snapshot.
        self._epoch_open: list[dict] = []
        self._finalized: Optional[dict] = None

    # -- wiring ----------------------------------------------------------

    def attach(self, runtime) -> None:
        """Bind to a DsmRuntime's nodes/schedulers/transports."""
        self._runtime = runtime
        count = runtime.config.num_nodes
        self._nodes = [_NodeSeries() for _ in range(count)]
        self._epoch_open = [
            {"start": 0.0, "barrier": None, "stall0": 0.0, "switches0": 0, "busy0": 0.0}
            for _ in range(count)
        ]

    @property
    def _adaptive(self) -> bool:
        transports = self._runtime.cluster.transports
        return bool(transports) and transports[0].adaptive

    # -- sampling --------------------------------------------------------

    def advance_to(self, time: float) -> None:
        """Emit one sample per window boundary in ``(last, time]``.

        Called by the simulator run loop just before simulated time
        advances past ``next_due``; events at exactly the boundary have
        *not* run yet, so a window cleanly covers ``[W - interval, W)``.
        """
        interval = self.config.interval_us
        while self.next_due <= time:
            self._sample(self.next_due)
            self._windows_done += 1
            # Multiply, don't accumulate: repeated float addition would
            # drift the boundaries across long runs.
            self.next_due = interval * (self._windows_done + 1)

    def _sample(self, boundary: float) -> None:
        self._window_ts.append(boundary)
        runtime = self._runtime
        adaptive = self._adaptive
        peers_on = adaptive and self.config.transport_peers
        transports = runtime.cluster.transports
        num_nodes = runtime.config.num_nodes
        for node_id in range(num_nodes):
            series = self._nodes[node_id]
            scheduler = runtime.schedulers[node_id]
            node = runtime.cluster.nodes[node_id]
            dsm = runtime.dsm_nodes[node_id]
            events = node.events
            runnable = 0
            blocked = 0
            for thread in scheduler.threads:
                state = thread.state
                if state is ThreadState.BLOCKED:
                    blocked += 1
                elif state is ThreadState.READY or state is ThreadState.RUNNING:
                    runnable += 1
            gauges = series.gauges
            gauges["sched.runnable"].append(runnable)
            gauges["sched.blocked"].append(blocked)
            gauges["sched.busy_us_total"].append(
                round(node.breakdown.times[Category.BUSY], 6)
            )
            gauges["sched.stall_us_total"].append(
                round(
                    events.remote_miss_stall
                    + events.remote_lock_stall
                    + events.barrier_stall,
                    6,
                )
            )
            gauges["dsm.wn_backlog"].append(dsm.wn_log.total())
            gauges["dsm.diff_bytes_stored"].append(dsm.diff_store.total_diff_bytes)
            gauges["dsm.intervals"].append(dsm.vc[dsm.node_id])
            transport = transports[node_id] if transports else None
            if transport is not None:
                gauges["transport.unacked"].append(len(transport._pending))
                gauges["transport.backlog"].append(
                    sum(len(p.queued) for p in transport._peers.values())
                )
                gauges["transport.parked"].append(len(transport._parked))
            else:
                gauges["transport.unacked"].append(0)
                gauges["transport.backlog"].append(0)
                gauges["transport.parked"].append(0)
            engine = None
            if runtime.prefetch_engines:
                engine = runtime.prefetch_engines[node_id]
            current = {
                "sched.ctx_switches": events.context_switches,
                "mem.remote_misses": events.remote_misses,
                "sync.lock_misses": events.remote_lock_misses,
                "sync.barrier_waits": events.barrier_waits,
                "dsm.faults": dsm.faults,
                "dsm.diff_requests": dsm.diff_requests_served,
                "transport.retransmissions": events.retransmissions,
                "transport.timeouts": events.transport_timeouts,
                "transport.paced": events.messages_paced,
                "prefetch.issued": engine.stats.issued if engine else 0,
                "prefetch.hits": engine.stats.hits if engine else 0,
                "prefetch.shed": engine.stats.shed if engine else 0,
            }
            last = series.last
            for name in DELTA_METRICS:
                series.deltas[name].append(current[name] - last[name])
            series.last = current
            if peers_on:
                self._sample_peers(series, transport, node_id, num_nodes)
        net = runtime.cluster.network.stats
        current_net = {
            "net.messages": net.total_messages,
            "net.bytes": net.total_bytes,
            "net.drops": net.total_drops,
            "net.retransmits": net.total_retransmits,
        }
        for name in NETWORK_METRICS:
            self._net_deltas[name].append(current_net[name] - self._net_last[name])
        self._net_last = current_net

    def _sample_peers(self, series, transport, node_id: int, num_nodes: int) -> None:
        parked_by_peer: dict[int, int] = {}
        for (dst, _seq) in transport._parked:
            parked_by_peer[dst] = parked_by_peer.get(dst, 0) + 1
        for dst in range(num_nodes):
            if dst == node_id:
                continue
            key = str(dst)
            track = series.peers.get(key)
            if track is None:
                track = {name: [] for name in PEER_METRICS}
                # Back-fill windows from before this sample so every
                # series stays window-aligned (peers never appear late:
                # all are registered up front, but be defensive).
                for name in PEER_METRICS:
                    track[name].extend([0] * (len(self._window_ts) - 1))
                series.peers[key] = track
            peer = transport._peers.get(dst)
            if peer is None:
                track["srtt_us"].append(-1.0)
                track["rttvar_us"].append(0.0)
                track["rto_us"].append(0.0)
                track["cwnd"].append(0.0)
                track["in_flight"].append(0)
                track["backlog"].append(0)
            else:
                track["srtt_us"].append(round(peer.srtt, 3))
                track["rttvar_us"].append(round(peer.rttvar, 3))
                track["rto_us"].append(round(peer.rto, 3))
                track["cwnd"].append(round(peer.cwnd, 3))
                track["in_flight"].append(peer.in_flight)
                track["backlog"].append(len(peer.queued))
            track["parked"].append(parked_by_peer.get(dst, 0))

    # -- barrier epochs --------------------------------------------------

    def on_barrier_epoch(self, node_id: int, barrier_id: int, episode: int) -> None:
        """Close the node's open epoch at a barrier release.

        Called from the barrier subsystem's release path (behind the
        sim's cached ``telemetry_on`` flag); pure observation.
        """
        if not self.config.epochs:
            return
        now = self._runtime.cluster.sim.now
        self._close_epoch(node_id, now, barrier_id, episode)

    def _close_epoch(self, node_id: int, now: float, barrier_id, episode) -> None:
        node = self._runtime.cluster.nodes[node_id]
        events = node.events
        open_ = self._epoch_open[node_id]
        stall = (
            events.remote_miss_stall + events.remote_lock_stall + events.barrier_stall
        )
        busy = node.breakdown.times[Category.BUSY]
        duration = now - open_["start"]
        record = {
            "barrier": barrier_id,
            "episode": episode,
            "start_us": round(open_["start"], 6),
            "end_us": round(now, 6),
            "stall_us": round(stall - open_["stall0"], 6),
            "switches": events.context_switches - open_["switches0"],
            "busy_us": round(busy - open_["busy0"], 6),
        }
        if duration > 0:
            record["stall_ratio"] = round((stall - open_["stall0"]) / duration, 6)
            record["switch_rate_per_ms"] = round(
                1000.0 * (events.context_switches - open_["switches0"]) / duration, 6
            )
        else:
            record["stall_ratio"] = 0.0
            record["switch_rate_per_ms"] = 0.0
        self._nodes[node_id].epochs.append(record)
        self._epoch_open[node_id] = {
            "start": now,
            "barrier": None,
            "stall0": stall,
            "switches0": events.context_switches,
            "busy0": busy,
        }

    # -- report section --------------------------------------------------

    def finalize(self, wall: float) -> dict:
        """Flush the tail window, grade the run, return the section.

        Idempotent: repeated calls return the same dict (the runtime
        builds the report once, but tests re-enter freely).
        """
        if self._finalized is not None:
            return self._finalized
        # The tail sample must cover everything through the *final*
        # simulated instant, not just the last scheduler's finish time:
        # trailing acks and timer pops after ``wall`` still move
        # counters that the report totals include.  Sampling at the
        # drained clock keeps the delta sums telescoping to the
        # end-of-run totals with no gap.
        tail = max(wall, self._runtime.cluster.sim.now)
        self._sample(tail)
        if self.config.epochs:
            for node_id in range(len(self._nodes)):
                self._close_epoch(node_id, tail, -1, -1)
        nodes = {}
        for node_id, series in enumerate(self._nodes):
            entry: dict = {
                "gauges": series.gauges,
                "deltas": series.deltas,
            }
            if series.peers:
                entry["peers"] = {
                    key: series.peers[key] for key in sorted(series.peers, key=int)
                }
            if self.config.epochs:
                entry["epochs"] = series.epochs
            nodes[str(node_id)] = entry
        section = {
            "version": TELEMETRY_SCHEMA_VERSION,
            "interval_us": self.config.interval_us,
            "windows": self._window_ts,
            "nodes": nodes,
            "network": {"deltas": self._net_deltas},
        }
        from repro.telemetry.watchdog import run_watchdogs

        section["findings"] = run_watchdogs(section)
        self._finalized = section
        return section


class NullTelemetry:
    """Shared no-op default: ``enabled`` is False, so the simulator's
    cached ``telemetry_on`` flag keeps the run loop check to a single
    attribute read."""

    enabled = False
    config = TelemetryConfig()
    #: Never due: the run loop's guard short-circuits on telemetry_on
    #: before reading this, but keep it safe anyway.
    next_due = float("inf")

    def advance_to(self, time: float) -> None:  # pragma: no cover - defensive
        pass

    def on_barrier_epoch(self, node_id, barrier_id, episode):  # pragma: no cover
        pass

    def finalize(self, wall: float) -> None:  # pragma: no cover - defensive
        return None


NULL_TELEMETRY = NullTelemetry()
