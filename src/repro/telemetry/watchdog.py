"""Watchdog monitors: deterministic grading of telemetry time series.

End-of-run aggregates cannot distinguish a run that was healthy
throughout from one that spent half its life livelocked and then
recovered — the totals look the same.  The watchdogs walk the completed
per-node series (pure post-processing, like the critical-path analyzer)
and emit *findings* for mid-run pathologies:

- ``cwnd_pinned`` — a peer's congestion window sat at the AIMD floor
  for N consecutive windows (sustained multiplicative-decrease
  pressure; the final snapshot usually shows it recovered);
- ``backlog_growth`` — a node's transport pacing backlog grew
  monotonically for N consecutive windows (the queue is not draining);
- ``stall_spike`` — a window's stall time jumped past ``factor`` times
  the node's median window stall (a phase-local convoy the whole-run
  average dilutes away);
- ``shed_storm`` — prefetches shed under backpressure at or above the
  storm threshold within one window;
- ``zero_progress`` — N consecutive windows with zero busy progress on
  a node while its transport kept timing out or retransmitting:
  livelock evidence.

Every threshold lives in :class:`WatchdogConfig` and every input is a
deterministic series, so the findings are identical across repeats and
``--jobs N``.  Consecutive flagged windows coalesce into one finding;
findings are sorted by (monitor, node, peer, start window).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WatchdogConfig", "run_watchdogs"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Deterministic grading thresholds."""

    #: cwnd values at or below this count as "at the floor" (the AIMD
    #: multiplicative decrease clamps at 1.0).
    cwnd_floor: float = 1.0
    #: Consecutive floor windows before a cwnd_pinned finding.
    cwnd_floor_windows: int = 4
    #: Consecutive strictly-increasing backlog windows before a
    #: backlog_growth finding.
    backlog_growth_windows: int = 4
    #: A window's stall time must exceed ``median * factor`` ...
    stall_spike_factor: float = 8.0
    #: ... and this absolute floor (us) to count as a spike — a 9 us
    #: window over a 1 us median is noise, not a convoy.
    stall_spike_min_us: float = 20_000.0
    #: Prefetches shed in one window at/above this is a shed storm.
    shed_storm: int = 25
    #: Consecutive zero-busy windows (with transport distress) before a
    #: zero_progress finding.
    zero_progress_windows: int = 3


def _coalesce(flags: list[bool], min_run: int) -> list[tuple[int, int]]:
    """Maximal runs of True of length >= min_run, as (start, end) inclusive."""
    runs: list[tuple[int, int]] = []
    start = None
    for index, flag in enumerate(flags):
        if flag and start is None:
            start = index
        elif not flag and start is not None:
            if index - start >= min_run:
                runs.append((start, index - 1))
            start = None
    if start is not None and len(flags) - start >= min_run:
        runs.append((start, len(flags) - 1))
    return runs


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _finding(monitor, node, ts, start, end, value, detail, peer=None):
    record = {
        "monitor": monitor,
        "node": node,
        "window_start": start,
        "window_end": end,
        "t_start_us": ts[start],
        "t_end_us": ts[end],
        "value": value,
        "detail": detail,
    }
    if peer is not None:
        record["peer"] = peer
    return record


def run_watchdogs(section: dict, config: WatchdogConfig | None = None) -> list[dict]:
    """Grade a telemetry section; returns the (possibly empty) findings."""
    config = config or WatchdogConfig()
    ts = section.get("windows") or []
    if not ts:
        return []
    findings: list[dict] = []
    for node_key in sorted(section.get("nodes", {}), key=int):
        node = int(node_key)
        entry = section["nodes"][node_key]
        gauges = entry.get("gauges", {})
        deltas = entry.get("deltas", {})

        # cwnd pinned at the AIMD floor for N consecutive windows.
        for peer_key in sorted(entry.get("peers", {}), key=int):
            cwnd = entry["peers"][peer_key].get("cwnd", [])
            flags = [0.0 < value <= config.cwnd_floor for value in cwnd]
            for start, end in _coalesce(flags, config.cwnd_floor_windows):
                findings.append(
                    _finding(
                        "cwnd_pinned",
                        node,
                        ts,
                        start,
                        end,
                        end - start + 1,
                        f"cwnd <= {config.cwnd_floor:g} toward peer {peer_key} "
                        f"for {end - start + 1} windows",
                        peer=int(peer_key),
                    )
                )

        # Monotone pacing-backlog growth: the queue is not draining.
        backlog = gauges.get("transport.backlog", [])
        flags = [False] * len(backlog)
        for index in range(1, len(backlog)):
            flags[index] = backlog[index] > backlog[index - 1]
        for start, end in _coalesce(flags, config.backlog_growth_windows):
            findings.append(
                _finding(
                    "backlog_growth",
                    node,
                    ts,
                    start,
                    end,
                    backlog[end],
                    f"pacing backlog grew every window for "
                    f"{end - start + 1} windows (now {backlog[end]})",
                )
            )

        # Stall-ratio spikes vs the node's own median window.
        stall_total = gauges.get("sched.stall_us_total", [])
        stall_windows = [
            stall_total[i] - (stall_total[i - 1] if i else 0.0)
            for i in range(len(stall_total))
        ]
        median = _median([value for value in stall_windows if value > 0])
        threshold = max(config.stall_spike_min_us, median * config.stall_spike_factor)
        flags = [value >= threshold and median > 0 for value in stall_windows]
        for start, end in _coalesce(flags, 1):
            peak = max(stall_windows[start : end + 1])
            findings.append(
                _finding(
                    "stall_spike",
                    node,
                    ts,
                    start,
                    end,
                    round(peak, 3),
                    f"window stall {peak:.0f} us vs median {median:.0f} us "
                    f"(threshold {threshold:.0f} us)",
                )
            )

        # Prefetch-shed storms.
        shed = deltas.get("prefetch.shed", [])
        flags = [value >= config.shed_storm for value in shed]
        for start, end in _coalesce(flags, 1):
            peak = max(shed[start : end + 1])
            findings.append(
                _finding(
                    "shed_storm",
                    node,
                    ts,
                    start,
                    end,
                    peak,
                    f"{peak} prefetches shed in one window "
                    f"(storm threshold {config.shed_storm})",
                )
            )

        # Zero-progress windows: no busy time while the transport churns.
        busy_total = gauges.get("sched.busy_us_total", [])
        busy_windows = [
            busy_total[i] - (busy_total[i - 1] if i else 0.0)
            for i in range(len(busy_total))
        ]
        timeouts = deltas.get("transport.timeouts", [])
        rexmits = deltas.get("transport.retransmissions", [])
        flags = [
            busy_windows[i] <= 0
            and (
                (timeouts[i] if i < len(timeouts) else 0)
                + (rexmits[i] if i < len(rexmits) else 0)
            )
            > 0
            for i in range(len(busy_windows))
        ]
        for start, end in _coalesce(flags, config.zero_progress_windows):
            churn = sum(timeouts[start : end + 1]) + sum(rexmits[start : end + 1])
            findings.append(
                _finding(
                    "zero_progress",
                    node,
                    ts,
                    start,
                    end,
                    end - start + 1,
                    f"no busy progress for {end - start + 1} windows while the "
                    f"transport timed out/retransmitted {churn} times — "
                    f"livelock evidence",
                )
            )
    findings.sort(
        key=lambda f: (f["monitor"], f["node"], f.get("peer", -1), f["window_start"])
    )
    return findings
