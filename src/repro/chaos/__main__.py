"""Command-line chaos search and reproducer replay.

Search (exit 0 when every sample passes all invariants, 1 when
any fails — failing plans are shrunk and written to ``--out``)::

    python -m repro.chaos --seed 7 --budget 50 --jobs 2

Replay a reproducer written by a previous search (exit 1 while it
still reproduces, 0 once fixed)::

    python -m repro.chaos --replay chaos-reproducers/sample-0013.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.dsm.backend import BACKEND_NAMES

from repro.chaos.search import (
    DEFAULT_APPS,
    ChaosConfig,
    SampleResult,
    evaluate_sample,
    fault_entry_count,
    load_reproducer,
    search,
    shrink,
    write_reproducer,
)


def _describe(result: SampleResult) -> str:
    sample = result.sample
    verdict = "ok" if result.ok else "FAIL " + "+".join(result.failures)
    detail = f" [{result.error}]" if result.error else ""
    return (
        f"sample {sample.index:>4} {sample.app_name:<8} "
        f"entries={fault_entry_count(sample.plan)} {verdict}{detail}"
    )


def _run_search(args: argparse.Namespace) -> int:
    config = ChaosConfig(
        seed=args.seed,
        budget=args.budget,
        apps=tuple(name.strip() for name in args.apps.split(",") if name.strip()),
        num_nodes=args.num_nodes,
        preset=args.preset,
        jobs=args.jobs,
        split_brain_bug=args.split_brain_bug,
        adaptive=args.adaptive,
        protocol=args.protocol,
    )
    started = time.perf_counter()
    done = 0

    def progress(_index: int, result: SampleResult) -> None:
        nonlocal done
        done += 1
        print(f"[{done:>3}/{config.budget}] {_describe(result)}", flush=True)

    results = search(config, on_progress=progress)
    failures = [result for result in results if not result.ok]
    elapsed = time.perf_counter() - started
    print(
        f"chaos: {len(results)} samples over {sorted(set(config.apps))}, "
        f"{len(failures)} failing, {elapsed:.1f}s"
    )
    if not failures:
        return 0
    out_dir = Path(args.out)
    for result in failures[: args.max_shrink]:
        print(f"shrinking {_describe(result)} ...", flush=True)
        minimal = shrink(result)
        path = write_reproducer(
            minimal, out_dir / f"sample-{result.sample.index:04d}.json"
        )
        print(
            f"  -> {fault_entry_count(minimal.sample.plan)} entr"
            f"{'y' if fault_entry_count(minimal.sample.plan) == 1 else 'ies'}, "
            f"failures={'+'.join(minimal.failures)}, wrote {path}"
        )
    skipped = len(failures) - min(len(failures), args.max_shrink)
    if skipped:
        print(f"  ({skipped} further failing sample(s) not shrunk; raise --max-shrink)")
    return 1


def _run_replay(args: argparse.Namespace) -> int:
    sample = load_reproducer(args.replay)
    result = evaluate_sample(sample)
    print(_describe(result))
    return 0 if result.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--seed", type=int, default=0, help="search seed (default 0)")
    parser.add_argument(
        "--budget", type=int, default=50, help="number of fault plans to sample"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (results identical for any N)"
    )
    parser.add_argument(
        "--apps",
        default=",".join(DEFAULT_APPS),
        help="comma-separated app names (default %(default)s)",
    )
    parser.add_argument("--preset", default="small", help="app size preset")
    parser.add_argument("--num-nodes", type=int, default=4)
    parser.add_argument(
        "--protocol",
        default="lrc",
        choices=sorted(BACKEND_NAMES),
        help="coherence backend every sample runs on (default lrc)",
    )
    parser.add_argument(
        "--out",
        default="chaos-reproducers",
        help="directory for minimal reproducers of failing samples",
    )
    parser.add_argument(
        "--max-shrink",
        type=int,
        default=3,
        help="shrink at most this many failing samples (each costs runs)",
    )
    parser.add_argument(
        "--split-brain-bug",
        action="store_true",
        help="arm the deliberately seeded split-brain hole (harness validation only)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run every sample on the adaptive transport and grade the "
        "bounded-in-flight and no-livelock invariants",
    )
    parser.add_argument(
        "--replay", metavar="FILE", help="replay one reproducer instead of searching"
    )
    args = parser.parse_args(argv)
    if args.replay:
        return _run_replay(args)
    return _run_search(args)


if __name__ == "__main__":
    sys.exit(main())
