"""Sampler, invariant checker and shrinker for the chaos harness.

Everything here is deterministic by construction: sample ``i`` of a
search seeded ``S`` draws its plan from ``default_rng([S, i])`` and runs
with seed ``S + i``, so two searches with the same (seed, budget, apps)
produce the same verdicts — serially or fanned out, on any machine.

The pieces that cross process boundaries (:class:`ChaosSample`,
:class:`SampleResult`, :func:`evaluate_sample`) are plain data and a
module-level function, as :func:`repro.parallel.fan_out` requires.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps import available_apps, make_app
from repro.dsm.backend import BACKEND_NAMES
from repro.errors import ConfigError, ProtocolError, SimulationError
from repro.ft import FtConfig
from repro.network.faults import FaultPlan
from repro.network.transport import TransportConfig
from repro.parallel import fan_out

__all__ = [
    "DEFAULT_APPS",
    "ChaosConfig",
    "ChaosSample",
    "SampleResult",
    "sample_plan",
    "generate_samples",
    "evaluate_sample",
    "search",
    "shrink",
    "fault_entry_count",
    "reproducer_dict",
    "write_reproducer",
    "load_reproducer",
]

#: Three apps with distinct sharing patterns (nearest-neighbour rows,
#: butterfly transpose, blocked triangular solve) — enough diversity to
#: exercise different protocol paths without blowing the CI budget.
DEFAULT_APPS = ("SOR", "FFT", "LU-CONT")


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos search: how many plans, over which apps, how parallel."""

    seed: int = 0
    budget: int = 50
    apps: tuple[str, ...] = DEFAULT_APPS
    num_nodes: int = 4
    preset: str = "small"
    jobs: int = 1
    #: Coherence backend every sample runs on.  The four standing
    #: invariants (sanitizer, liveness, determinism, verify) are
    #: protocol-independent; the sanitizer checks the backend-specific
    #: invariant set for whichever protocol is selected.
    protocol: str = "lrc"
    #: TEST-ONLY: arm :attr:`FtConfig.split_brain_bug` in every sample,
    #: to demonstrate the search catches (and shrinks) a real protocol
    #: hole.  Never set outside the harness's own validation.
    split_brain_bug: bool = False
    #: Liveness bound: a sample exceeding this many simulation events is
    #: declared livelocked (clean small runs take well under a tenth).
    max_events: int = 5_000_000
    #: Run every sample on the adaptive transport (RTT-estimated RTO,
    #: AIMD window, backpressure) and grade the two adaptive
    #: invariants: bounded in-flight growth and no-livelock.
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ConfigError(f"budget must be >= 1, got {self.budget}")
        if not self.apps:
            raise ConfigError("apps must name at least one application")
        object.__setattr__(self, "apps", tuple(self.apps))
        known = set(available_apps())
        for app_name in self.apps:
            if app_name not in known:
                raise ConfigError(
                    f"unknown app {app_name!r} (choose from {sorted(known)})"
                )
        if self.num_nodes < 2:
            raise ConfigError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_events < 1:
            raise ConfigError(f"max_events must be >= 1, got {self.max_events}")
        if self.protocol not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown protocol {self.protocol!r} (choose from {sorted(BACKEND_NAMES)})"
            )


@dataclass(frozen=True)
class ChaosSample:
    """One (app, seed, plan) cell of the search — picklable, JSON-able.

    The plan travels as its :meth:`FaultPlan.to_dict` form rather than
    as the dataclass, so a sample round-trips through both the process
    pool and a reproducer file without custom reducers.
    """

    index: int
    app_name: str
    preset: str
    num_nodes: int
    seed: int
    plan: dict
    split_brain_bug: bool = False
    max_events: int = 5_000_000
    adaptive: bool = False
    protocol: str = "lrc"


@dataclass
class SampleResult:
    """The verdict on one sample: which invariants failed, if any."""

    sample: ChaosSample
    #: Failed invariants, each one of: ``sanitizer`` (a protocol
    #: invariant tripped), ``liveness`` (event bound exceeded or the
    #: run deadlocked), ``determinism`` (re-run differed), ``verify``
    #: (the app's answer was wrong), ``split-brain`` (a checkpoint
    #: committed across a membership split), and — adaptive arm only —
    #: ``inflight`` (a peer exceeded the AIMD window bound) and
    #: ``livelock`` (a run ended with unsent/unacked/parked traffic
    #: toward live peers).
    failures: list[str] = field(default_factory=list)
    error: str = ""
    wall_time_us: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


# -- sampling ---------------------------------------------------------------


def sample_plan(rng: np.random.Generator, wall_us: float, num_nodes: int) -> dict:
    """Draw one bounded fault plan (dict form) for a ``num_nodes`` cluster.

    Bounds keep every sample inside the fault model the FT layer claims
    to survive: at most one crash and at most one isolated node per
    plan (simultaneously losing a majority is a CP-blocking scenario —
    the coordinator *should* stall until it heals), node 0 is never
    crashed, stalled or isolated (it hosts the barrier manager and the
    detection coordinator), and a crashed node is never also
    partitioned (the plan validator rejects that as ambiguous).  Fault
    *onsets* scale with the app's clean wall time; partition and stall
    *durations* are absolute, sized against the membership timescales
    (50 ms suspicion + 25 ms TTL + 100 ms grace) so the search reaches
    fence, rejoin and rollback paths even on apps that finish in 60 ms.
    """
    plan: dict = {}
    crash_node: Optional[int] = None
    if rng.random() < 0.35:
        crash_node = int(rng.integers(1, num_nodes))
        plan["crashes"] = [
            {"node": crash_node, "at_us": round(float(rng.uniform(0.2, 0.9)) * wall_us, 1)}
        ]
    peers = [n for n in range(1, num_nodes) if n != crash_node]
    if rng.random() < 0.35:
        node = int(peers[int(rng.integers(len(peers)))])
        start = float(rng.uniform(0.1, 0.8)) * wall_us
        duration = float(rng.uniform(40_000.0, 240_000.0))
        plan["partitions"] = [
            {"start_us": round(start, 1), "end_us": round(start + duration, 1), "nodes": [node]}
        ]
    if rng.random() < 0.3:
        node = int(peers[int(rng.integers(len(peers)))])
        start = float(rng.uniform(0.05, 0.7)) * wall_us
        duration = float(rng.uniform(20_000.0, 160_000.0))
        plan["stalls"] = [
            {"node": node, "start_us": round(start, 1), "end_us": round(start + duration, 1)}
        ]
    if rng.random() < 0.5:
        start = float(rng.uniform(0.0, 0.8)) * wall_us
        duration = float(rng.uniform(0.2, 1.0)) * wall_us
        window = {
            "start_us": round(start, 1),
            "end_us": round(start + duration, 1),
            "prob": round(float(rng.uniform(0.02, 0.25)), 3),
        }
        if rng.random() < 0.4:
            src = int(rng.integers(num_nodes))
            dst = int(rng.integers(num_nodes - 1))
            if dst >= src:
                dst += 1
            window["links"] = [[src, dst]]
        plan["corruptions"] = [window]
    if rng.random() < 0.4:
        plan["drop_prob"] = round(float(rng.uniform(0.005, 0.04)), 4)
    if rng.random() < 0.3:
        plan["duplicate_prob"] = round(float(rng.uniform(0.005, 0.03)), 4)
    if rng.random() < 0.3:
        plan["reorder_prob"] = round(float(rng.uniform(0.02, 0.15)), 4)
        plan["jitter_us"] = round(float(rng.uniform(50.0, 500.0)), 1)
    if FaultPlan.from_dict(plan).is_noop:
        # Every sample must perturb something; a tiny loss rate is the
        # cheapest non-noop fallback.
        plan["drop_prob"] = 0.01
    return plan


def baseline_walls(config: ChaosConfig) -> dict[str, float]:
    """Clean wall time per app, the sampler's time scale (run serially;
    three small runs cost a fraction of the search itself)."""
    walls: dict[str, float] = {}
    for app_name in config.apps:
        run = RunConfig(
            num_nodes=config.num_nodes, seed=config.seed, protocol=config.protocol
        )
        report = DsmRuntime(run).execute(make_app(app_name, config.preset))
        walls[app_name] = report.wall_time_us
    return walls


def generate_samples(
    config: ChaosConfig, walls: Optional[dict[str, float]] = None
) -> list[ChaosSample]:
    """The search's full sample list (apps round-robin, seeded draws)."""
    if walls is None:
        walls = baseline_walls(config)
    samples = []
    for index in range(config.budget):
        app_name = config.apps[index % len(config.apps)]
        rng = np.random.default_rng([config.seed, index])
        samples.append(
            ChaosSample(
                index=index,
                app_name=app_name,
                preset=config.preset,
                num_nodes=config.num_nodes,
                seed=config.seed + index,
                plan=sample_plan(rng, walls[app_name], config.num_nodes),
                split_brain_bug=config.split_brain_bug,
                max_events=config.max_events,
                adaptive=config.adaptive,
                protocol=config.protocol,
            )
        )
    return samples


# -- invariant checking -----------------------------------------------------


def _execute(sample: ChaosSample):
    """One full run of a sample: (report, verify error or None).

    Verification runs *after* the report is built so a wrong answer
    (the usual blast radius of a split-brain cut) still leaves the
    FT counters and the determinism fingerprint inspectable.
    """
    config = RunConfig(
        num_nodes=sample.num_nodes,
        seed=sample.seed,
        protocol=sample.protocol,
        fault_plan=FaultPlan.from_dict(sample.plan),
        sanitizer=True,
        # FT always on: stalls and give-ups park messages that only the
        # membership layer revives, and invariant 4 needs its summary.
        ft=FtConfig(split_brain_bug=sample.split_brain_bug),
        max_events=sample.max_events,
        transport=TransportConfig(adaptive=True) if sample.adaptive else TransportConfig(),
    )
    runtime = DsmRuntime(config)
    app = make_app(sample.app_name, sample.preset)
    report = runtime.execute(app, verify=False)
    verify_error = None
    try:
        app.verify(runtime)
    except Exception as exc:
        verify_error = f"{type(exc).__name__}: {exc}"
    return report, verify_error


def evaluate_sample(sample: ChaosSample) -> SampleResult:
    """Run one sample twice and grade it against every invariant."""
    try:
        first, verify_error = _execute(sample)
    except ProtocolError as exc:
        return SampleResult(sample, ["sanitizer"], error=str(exc))
    except (SimulationError, ConfigError) as exc:
        # max_events exceeded, or the run drained its event queue with
        # schedulers unfinished: either way, it did not stay live.
        return SampleResult(sample, ["liveness"], error=str(exc))
    except Exception as exc:  # anything else is still a failed sample
        return SampleResult(sample, ["verify"], error=f"{type(exc).__name__}: {exc}")
    failures: list[str] = []
    error = ""
    if first.extra.get("ft", {}).get("split_brain_checkpoints", 0):
        failures.append("split-brain")
    health = first.transport_health
    if health is not None:
        # Adaptive invariant 1: the AIMD window bounds in-flight
        # unacked messages under every sampled plan.
        if health["max_in_flight"] > health["cwnd_max"]:
            failures.append("inflight")
            error = (
                f"in-flight high-water {health['max_in_flight']} "
                f"exceeds cwnd_max {health['cwnd_max']}"
            )
        # Adaptive invariant 2 (no-livelock): the simulation runs its
        # event heap dry, so at end of run every paced message must
        # have been sent, every sent message acked or parked, and
        # parked messages may only point at peers that are down or
        # fenced — anything else is traffic stranded toward a live
        # peer that no future event would ever move.
        if (
            health["pacing_backlog"]
            or health["unacked"]
            or health["parked_live"]
        ):
            failures.append("livelock")
            error = (
                f"end-of-run backlog: paced={health['pacing_backlog']} "
                f"unacked={health['unacked']} parked_live={health['parked_live']}"
            )
    if verify_error is not None:
        failures.append("verify")
        error = verify_error
    try:
        second, _ = _execute(sample)
    except Exception as exc:
        failures.append("determinism")
        error = f"replay raised {type(exc).__name__}: {exc}"
    else:
        if first.to_json() != second.to_json():
            failures.append("determinism")
    return SampleResult(sample, failures, error=error, wall_time_us=first.wall_time_us)


def search(
    config: ChaosConfig,
    on_progress: Optional[Callable[[int, SampleResult], None]] = None,
) -> list[SampleResult]:
    """Evaluate the whole budget; results in sample order regardless of
    ``jobs`` (``on_progress`` fires in completion order)."""
    samples = generate_samples(config)
    return fan_out(samples, evaluate_sample, jobs=config.jobs, on_done=on_progress)


# -- shrinking --------------------------------------------------------------


def _plan_entries(plan: dict) -> list[tuple[str, Optional[int]]]:
    """The individually removable fault entries of a plan dict."""
    entries: list[tuple[str, Optional[int]]] = []
    for fault_field in ("degradations", "stalls", "crashes", "partitions", "corruptions"):
        for index in range(len(plan.get(fault_field) or [])):
            entries.append((fault_field, index))
    for prob_field in ("drop_prob", "duplicate_prob", "reorder_prob"):
        if plan.get(prob_field):
            entries.append((prob_field, None))
    return entries


def fault_entry_count(plan: dict) -> int:
    """How many removable fault entries a plan carries (shrink metric)."""
    return len(_plan_entries(plan))


def _without(plan: dict, entry: tuple[str, Optional[int]]) -> dict:
    plan = copy.deepcopy(plan)
    fault_field, index = entry
    if index is None:
        plan.pop(fault_field, None)
        if fault_field == "reorder_prob":
            plan.pop("jitter_us", None)
    else:
        items = list(plan[fault_field])
        del items[index]
        if items:
            plan[fault_field] = items
        else:
            plan.pop(fault_field)
    return plan


def shrink(
    result: SampleResult,
    max_evals: int = 48,
    on_progress: Optional[Callable[[SampleResult], None]] = None,
) -> SampleResult:
    """Greedily minimise a failing sample's plan.

    Repeatedly tries dropping one fault entry; any removal after which
    *some* invariant still fails is kept (the surviving failure need
    not be the original one — any failing minimal plan is a
    reproducer).  Evaluation is expensive (two runs), so the budget is
    capped; the loop restarts after each successful removal because
    entry indices shift.
    """
    best = result
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for entry in _plan_entries(best.sample.plan):
            candidate = replace(best.sample, plan=_without(best.sample.plan, entry))
            outcome = evaluate_sample(candidate)
            evals += 1
            if on_progress is not None:
                on_progress(outcome)
            if not outcome.ok:
                best = outcome
                improved = True
                break
            if evals >= max_evals:
                break
    return best


# -- reproducers on disk ----------------------------------------------------


def reproducer_dict(result: SampleResult) -> dict:
    sample = result.sample
    return {
        "version": 1,
        "app": sample.app_name,
        "preset": sample.preset,
        "num_nodes": sample.num_nodes,
        "seed": sample.seed,
        "split_brain_bug": sample.split_brain_bug,
        "max_events": sample.max_events,
        "adaptive": sample.adaptive,
        "protocol": sample.protocol,
        "failures": list(result.failures),
        "error": result.error,
        # Round-trip through FaultPlan so the stored form is normalized
        # (sorted links, every field present) and known-valid.
        "plan": FaultPlan.from_dict(sample.plan).to_dict(),
    }


def write_reproducer(result: SampleResult, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(reproducer_dict(result), indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: Path) -> ChaosSample:
    data = json.loads(Path(path).read_text())
    if data.get("version") != 1:
        raise ConfigError(f"unknown reproducer version: {data.get('version')!r}")
    plan = FaultPlan.from_dict(data["plan"]).to_dict()  # validate before running
    try:
        return ChaosSample(
            index=0,
            app_name=data["app"],
            preset=data["preset"],
            num_nodes=int(data["num_nodes"]),
            seed=int(data["seed"]),
            plan=plan,
            split_brain_bug=bool(data.get("split_brain_bug", False)),
            max_events=int(data.get("max_events", 5_000_000)),
            adaptive=bool(data.get("adaptive", False)),
            protocol=str(data.get("protocol", "lrc")),
        )
    except KeyError as exc:
        raise ConfigError(f"reproducer missing field: {exc}") from exc
