"""Seeded chaos search over the fault space.

The fault injector (:mod:`repro.network.faults`) can combine crashes,
partitions, stalls, corruption and probabilistic loss in one plan — far
too many combinations to hand-write a test for each.  This package
turns the combination space into a search problem:

- :func:`sample_plan` draws one bounded, valid :class:`FaultPlan` from
  a seeded generator (at most one crash and one isolated node per plan;
  windows scaled to the app's clean wall time);
- :func:`evaluate_sample` runs it and checks four invariants — the
  protocol sanitizer stays clean, the run stays live within an event
  bound, a re-run of the same (seed, plan) is byte-identical, and no
  committed checkpoint spans a membership split;
- :func:`search` fans a budget of samples out across cores
  (deterministically: same seed + budget ⇒ same samples and verdicts,
  for every ``--jobs``);
- :func:`shrink` greedily minimises a failing plan to a smallest
  reproducer, written to disk as JSON and replayable with
  ``python -m repro.chaos --replay FILE``.

The CLI lives in ``repro.chaos.__main__``::

    python -m repro.chaos --seed 7 --budget 50 --jobs 2
"""

from repro.chaos.search import (
    DEFAULT_APPS,
    ChaosConfig,
    ChaosSample,
    SampleResult,
    evaluate_sample,
    fault_entry_count,
    generate_samples,
    load_reproducer,
    reproducer_dict,
    sample_plan,
    search,
    shrink,
    write_reproducer,
)

__all__ = [
    "DEFAULT_APPS",
    "ChaosConfig",
    "ChaosSample",
    "SampleResult",
    "evaluate_sample",
    "fault_entry_count",
    "generate_samples",
    "load_reproducer",
    "reproducer_dict",
    "sample_plan",
    "search",
    "shrink",
    "write_reproducer",
]
