"""Experiment runner: one place that maps the paper's configuration
labels (O, P, nT, nTP) onto runtime configurations and caches reports,
since several figures/tables share the same runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps.registry import APP_ORDER, make_app
from repro.errors import ConfigError
from repro.metrics.report import RunReport
from repro.trace import PhaseTimeline, TraceConfig

__all__ = ["CONFIG_LABELS", "ExperimentRunner", "make_configured_app", "parse_label"]

#: Every configuration Figure 5 uses, in its presentation order.
CONFIG_LABELS = ["O", "2T", "4T", "8T", "P", "2TP", "4TP", "8TP"]


def parse_label(label: str) -> tuple[int, bool]:
    """Label -> (threads_per_node, prefetch)."""
    if label == "O":
        return 1, False
    if label == "P":
        return 1, True
    if label.endswith("TP"):
        return int(label[:-2]), True
    if label.endswith("T"):
        return int(label[:-1]), False
    raise ConfigError(f"unknown configuration label {label!r}")


def make_configured_app(app_name: str, preset: str, label: str):
    """Build the app instance for one (app, configuration-label) cell.

    One definition shared by the experiment runner, the bench sweep and
    the parallel workers, so the per-scheme app flags (Section 5.1's
    combined-scheme optimizations) cannot drift between harnesses.
    """
    threads_per_node, prefetch = parse_label(label)
    app = make_app(app_name, preset)
    app.use_prefetch = prefetch
    if prefetch and threads_per_node > 1:
        # The combined scheme's optimizations (Section 5.1).
        app.prefetch_dedup = True
        if app_name == "RADIX":
            app.throttle_prefetch = True
    return app


class ExperimentRunner:
    """Runs (app, configuration) pairs on demand and caches the reports."""

    def __init__(
        self,
        num_nodes: int = 8,
        preset: str = "default",
        seed: int = 42,
        verify: bool = True,
        verbose: bool = False,
        trace_template: Optional[str] = None,
        profile_template: Optional[str] = None,
        crash_node: int = 3,
        crash_frac: float = 0.45,
        crash_loss: float = 0.0,
        jobs: int = 1,
        critpath: bool = False,
    ) -> None:
        self.num_nodes = num_nodes
        self.preset = preset
        self.seed = seed
        self.verify = verify
        self.verbose = verbose
        #: Crash-matrix knobs (see ``repro.experiments.crash``): which
        #: node dies, when (as a fraction of the fault-free wall time),
        #: and the datagram loss probability during the crashed run.
        self.crash_node = crash_node
        self.crash_frac = crash_frac
        self.crash_loss = crash_loss
        #: When set, every run records a trace written to a path derived
        #: from this template: ``figure1.json`` -> ``figure1.FFT-O.json``.
        self.trace_template = trace_template
        #: When set, every run profiles (repro.profile); "-" just
        #: collects (the profile rides inside the cached reports), any
        #: other value is a template for per-run RunReport JSON dumps,
        #: derived like the trace template.
        self.profile_template = profile_template
        #: When set, every run carries a ``critpath`` report section
        #: (repro.critpath): exact critical-path blame and what-if
        #: projections, consumed by the ``critpath`` experiment.
        self.critpath = critpath
        #: Worker processes for grid fan-out (see :meth:`run_many`);
        #: 1 = serial.  Tracing forces serial: the timeline audit needs
        #: the in-process tracer, which cannot cross a process boundary.
        self.jobs = jobs
        self._cache: dict[tuple[str, str], RunReport] = {}

    def trace_path(self, app_name: str, label: str) -> Path:
        """Per-run output path derived from the trace template."""
        return self._derived_path(self.trace_template, app_name, label)

    def profile_path(self, app_name: str, label: str) -> Path:
        """Per-run report path derived from the profile template."""
        return self._derived_path(self.profile_template, app_name, label)

    @staticmethod
    def _derived_path(template_str: str, app_name: str, label: str) -> Path:
        template = Path(template_str)
        return template.with_name(
            f"{template.stem}.{app_name}-{label}{template.suffix or '.json'}"
        )

    def run(self, app_name: str, label: str) -> RunReport:
        key = (app_name, label)
        if key in self._cache:
            return self._cache[key]
        threads_per_node, prefetch = parse_label(label)
        app = make_configured_app(app_name, self.preset, label)
        config = RunConfig(
            num_nodes=self.num_nodes,
            threads_per_node=threads_per_node,
            prefetch=prefetch,
            seed=self.seed,
            trace=TraceConfig() if self.trace_template else None,
            profile=bool(self.profile_template),
            critpath=self.critpath,
        )
        if self.verbose:
            print(f"  running {app_name} [{label}] ...", flush=True)
        runtime = DsmRuntime(config)
        report = runtime.execute(app, verify=self.verify)
        if self.trace_template:
            self._export_trace(runtime, report, app_name, label)
        if self.profile_template and self.profile_template != "-":
            path = self.profile_path(app_name, label)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(report.to_json(indent=2) + "\n")
            if self.verbose:
                print(f"    profile report -> {path}", flush=True)
        self._cache[key] = report
        return report

    def _export_trace(
        self, runtime: DsmRuntime, report: RunReport, app_name: str, label: str
    ) -> None:
        tracer = runtime.tracer
        path = self.trace_path(app_name, label)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".jsonl":
            tracer.write_jsonl(path)
        else:
            tracer.write_chrome(path)
        if self.verbose:
            print(f"    trace: {len(tracer)} events -> {path}", flush=True)
        mismatches = PhaseTimeline.from_events(tracer.events).verify_against(report)
        if mismatches:
            raise ConfigError(
                f"trace/accounting mismatch for {app_name} [{label}]: "
                + "; ".join(mismatches)
            )

    def baseline(self, app_name: str) -> RunReport:
        return self.run(app_name, "O")

    def run_many(self, labels: list[str], apps: Optional[list[str]] = None):
        """Yield (app, label, report) over the full grid.

        With ``jobs > 1`` the not-yet-cached cells are fanned out across
        worker processes first (deterministic runs make the result
        independent of the job count), then yielded in grid order.
        """
        apps = list(apps or APP_ORDER)
        if self.jobs > 1 and not self.trace_template:
            self._prefetch_grid(labels, apps)
        for app_name in apps:
            for label in labels:
                yield app_name, label, self.run(app_name, label)

    def _prefetch_grid(self, labels: list[str], apps: list[str]) -> None:
        """Fill the cache for every missing (app, label) cell in parallel."""
        from repro.parallel import RunSpec, run_specs

        specs = []
        for app_name in apps:
            for label in labels:
                if (app_name, label) in self._cache:
                    continue
                threads_per_node, prefetch = parse_label(label)
                config = RunConfig(
                    num_nodes=self.num_nodes,
                    threads_per_node=threads_per_node,
                    prefetch=prefetch,
                    seed=self.seed,
                    profile=bool(self.profile_template),
                    critpath=self.critpath,
                )
                specs.append(
                    RunSpec(
                        index=len(specs),
                        app_name=app_name,
                        preset=self.preset,
                        label=label,
                        config=config,
                        verify=self.verify,
                    )
                )
        if not specs:
            return

        def on_done(spec, report) -> None:
            if self.verbose:
                print(f"  finished {spec.app_name} [{spec.label}]", flush=True)

        reports = run_specs(specs, jobs=self.jobs, on_done=on_done)
        for spec, report in zip(specs, reports):
            if self.profile_template and self.profile_template != "-":
                path = self.profile_path(spec.app_name, spec.label)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(report.to_json(indent=2) + "\n")
            self._cache[(spec.app_name, spec.label)] = report
