"""Experiment runner: one place that maps the paper's configuration
labels (O, P, nT, nTP) onto runtime configurations and caches reports,
since several figures/tables share the same runs.
"""

from __future__ import annotations

from typing import Optional

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps.registry import APP_ORDER, make_app
from repro.errors import ConfigError
from repro.metrics.report import RunReport

__all__ = ["CONFIG_LABELS", "ExperimentRunner", "parse_label"]

#: Every configuration Figure 5 uses, in its presentation order.
CONFIG_LABELS = ["O", "2T", "4T", "8T", "P", "2TP", "4TP", "8TP"]


def parse_label(label: str) -> tuple[int, bool]:
    """Label -> (threads_per_node, prefetch)."""
    if label == "O":
        return 1, False
    if label == "P":
        return 1, True
    if label.endswith("TP"):
        return int(label[:-2]), True
    if label.endswith("T"):
        return int(label[:-1]), False
    raise ConfigError(f"unknown configuration label {label!r}")


class ExperimentRunner:
    """Runs (app, configuration) pairs on demand and caches the reports."""

    def __init__(
        self,
        num_nodes: int = 8,
        preset: str = "default",
        seed: int = 42,
        verify: bool = True,
        verbose: bool = False,
    ) -> None:
        self.num_nodes = num_nodes
        self.preset = preset
        self.seed = seed
        self.verify = verify
        self.verbose = verbose
        self._cache: dict[tuple[str, str], RunReport] = {}

    def run(self, app_name: str, label: str) -> RunReport:
        key = (app_name, label)
        if key in self._cache:
            return self._cache[key]
        threads_per_node, prefetch = parse_label(label)
        app = make_app(app_name, self.preset)
        app.use_prefetch = prefetch
        if prefetch and threads_per_node > 1:
            # The combined scheme's optimizations (Section 5.1).
            app.prefetch_dedup = True
            if app_name == "RADIX":
                app.throttle_prefetch = True
        config = RunConfig(
            num_nodes=self.num_nodes,
            threads_per_node=threads_per_node,
            prefetch=prefetch,
            seed=self.seed,
        )
        if self.verbose:
            print(f"  running {app_name} [{label}] ...", flush=True)
        report = DsmRuntime(config).execute(app, verify=self.verify)
        self._cache[key] = report
        return report

    def baseline(self, app_name: str) -> RunReport:
        return self.run(app_name, "O")

    def run_many(self, labels: list[str], apps: Optional[list[str]] = None):
        """Yield (app, label, report) over the full grid."""
        for app_name in apps or APP_ORDER:
            for label in labels:
                yield app_name, label, self.run(app_name, label)
