"""The paper's tables, regenerated."""

from __future__ import annotations

from repro.apps.registry import APP_ORDER
from repro.experiments.formatting import render_rows
from repro.experiments.runner import ExperimentRunner

__all__ = ["table1", "table2"]


def table1(runner: ExperimentRunner):
    """Table 1: prefetching statistics (O vs P)."""
    headers = [
        "app",
        "unnecessary%",
        "coverage%",
        "traffic-O(KB)",
        "traffic-P(KB)",
        "misses-O",
        "misses-P",
        "avg-lat-O(us)",
        "avg-lat-P(us)",
    ]
    rows = []
    data = {}
    for app_name in APP_ORDER:
        baseline = runner.run(app_name, "O")
        prefetched = runner.run(app_name, "P")
        stats = prefetched.prefetch_stats
        entry = {
            "unnecessary_pct": 100.0 * stats.unnecessary_fraction,
            "coverage_pct": 100.0 * stats.coverage_factor,
            "traffic_o_kb": baseline.total_kbytes,
            "traffic_p_kb": prefetched.total_kbytes,
            "misses_o": baseline.events.remote_misses,
            "misses_p": prefetched.events.remote_misses,
            "avg_lat_o": baseline.events.avg_miss_stall,
            "avg_lat_p": prefetched.events.avg_miss_stall,
            "drops_p": prefetched.message_drops,
        }
        data[app_name] = entry
        rows.append(
            [
                app_name,
                f"{entry['unnecessary_pct']:.1f}",
                f"{entry['coverage_pct']:.1f}",
                f"{entry['traffic_o_kb']:.0f}",
                f"{entry['traffic_p_kb']:.0f}",
                str(entry["misses_o"]),
                str(entry["misses_p"]),
                f"{entry['avg_lat_o']:.0f}",
                f"{entry['avg_lat_p']:.0f}",
            ]
        )
    text = "Table 1: prefetching statistics (O = original, P = with prefetching)\n" + render_rows(
        headers, rows
    )
    return text, data


def table2(runner: ExperimentRunner):
    """Table 2: multithreading statistics."""
    headers = [
        "app",
        "cfg",
        "avg-stall(us)",
        "avg-run-len(us)",
        "msgs",
        "volume(KB)",
        "misses",
        "miss-stall(us)",
        "locks",
        "lock-stall(us)",
        "barriers",
        "barrier-stall(us)",
    ]
    rows = []
    data = {}
    for app_name in APP_ORDER:
        data[app_name] = {}
        for label in ("O", "2T", "4T", "8T"):
            report = runner.run(app_name, label)
            events = report.events
            entry = {
                "avg_stall": events.avg_stall,
                "avg_run_length": events.avg_run_length,
                "messages": report.total_messages,
                "volume_kb": report.total_kbytes,
                "misses": events.remote_misses,
                "avg_miss_stall": events.avg_miss_stall,
                "locks": events.remote_lock_misses,
                "avg_lock_stall": events.avg_lock_stall,
                "barriers": events.barrier_waits,
                "avg_barrier_stall": events.avg_barrier_stall,
            }
            data[app_name][label] = entry
            rows.append(
                [
                    app_name,
                    label,
                    f"{entry['avg_stall']:.0f}",
                    f"{entry['avg_run_length']:.0f}",
                    str(entry["messages"]),
                    f"{entry['volume_kb']:.0f}",
                    str(entry["misses"]),
                    f"{entry['avg_miss_stall']:.0f}",
                    str(entry["locks"]),
                    f"{entry['avg_lock_stall']:.0f}",
                    str(entry["barriers"]),
                    f"{entry['avg_barrier_stall']:.0f}",
                ]
            )
    text = "Table 2: multithreading statistics\n" + render_rows(headers, rows)
    return text, data
