"""Generate EXPERIMENTS.md: paper-vs-measured for every artifact.

Run with::

    python -m repro.experiments.writeup [--nodes 8] [--preset default]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.apps.registry import APP_ORDER
from repro.experiments import (
    ExperimentRunner,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
)

#: Paper claims checked per artifact: (description, check(data) -> bool).
PAPER_CLAIMS = {
    "fig1": [
        (
            "most applications spend a large share of time stalled "
            "(paper: six of eight > 50%)",
            lambda d: sum(
                1 for c in d.values() if c["Memory Idle"] + c["Sync Idle"] > 40
            )
            >= 5,
        ),
        (
            "FFT is the most memory-stall-bound application",
            lambda d: max(d, key=lambda a: d[a]["Memory Idle"]) == "FFT",
        ),
        (
            "OCEAN is synchronization-dominated",
            lambda d: d["OCEAN"]["Sync Idle"] > d["OCEAN"]["Memory Idle"],
        ),
    ],
    "fig2": [
        (
            "prefetching speeds up the memory-bound applications "
            "(paper: 4-29% for all eight)",
            lambda d: d["FFT"]["speedup"] > 1.0 and d["LU-NCONT"]["speedup"] > 1.0,
        ),
        (
            "no application regresses by more than ~20% (RADIX, the "
            "paper's prefetch-hostile case, is the worst)",
            lambda d: all(e["speedup"] > 0.80 for e in d.values())
            and min(d, key=lambda a: d[a]["speedup"]) in ("RADIX", "WATER-NSQ"),
        ),
    ],
    "tab1": [
        (
            "remote miss counts drop under prefetching (paper: 2-30x)",
            lambda d: all(e["misses_p"] <= e["misses_o"] for e in d.values()),
        ),
        (
            "average miss latency INCREASES for several applications "
            "(paper: FFT x12, SOR x16 — bursty prefetch traffic)",
            lambda d: sum(
                1 for e in d.values() if e["avg_lat_p"] > 1.2 * e["avg_lat_o"]
            )
            >= 2,
        ),
        (
            "FFT has both high coverage and many unnecessary prefetches",
            lambda d: d["FFT"]["coverage_pct"] > 60 and d["FFT"]["unnecessary_pct"] > 20,
        ),
    ],
    "fig3": [
        (
            "pf-hit is the largest outcome for the covered applications",
            lambda d: sum(
                1
                for s in d.values()
                if s["hit"] >= max(s["late"], s["invalidated"]) and s["hit"] > 0
            )
            >= 3,
        ),
        (
            "RADIX has a pronounced too-late fraction (paper: largest)",
            lambda d: d["RADIX"]["late"] >= 25,
        ),
    ],
    "fig4": [
        (
            "multithreading helps at least the locality-friendly "
            "applications (paper: LU-NCONT gains from better task "
            "assignment; six of eight improve overall — see the noted "
            "deviation: at scaled sizes the remaining apps are too "
            "miss-dense for the overlap to beat the MT overheads)",
            lambda d: d["LU-NCONT"]["best"] != "O",
        ),
        (
            "the optimal thread count varies across applications",
            lambda d: len({e["best"] for e in d.values()}) >= 2,
        ),
        (
            "no catastrophic collapse below 8 threads for the "
            "well-partitioned applications",
            lambda d: all(
                d[app]["columns"]["2T"]["Total"] < 160
                for app in ("FFT", "LU-CONT", "LU-NCONT", "SOR", "WATER-NSQ", "WATER-SP")
            ),
        ),
    ],
    "tab2": [
        (
            "request combining keeps message counts from scaling with "
            "the thread count (paper: WATER-NSQ messages unchanged "
            "from O to 8T)",
            lambda d: all(
                e["8T"]["messages"] < 4 * e["O"]["messages"] for e in d.values()
            ),
        ),
        (
            "per-miss stall falls or holds as threads overlap "
            "latencies in the lock-bound applications",
            lambda d: d["WATER-NSQ"]["8T"]["avg_lock_stall"]
            <= 2.0 * d["WATER-NSQ"]["O"]["avg_lock_stall"] + 1.0,
        ),
    ],
    "fig5": [
        (
            "no single configuration wins everywhere (paper: combination "
            "wins 3, MT alone wins RADIX, P alone wins 3)",
            lambda d: len({e["best"] for e in d.values()}) >= 2,
        ),
        (
            "some application is best served by a prefetching configuration",
            lambda d: any("P" in e["best"] for e in d.values()),
        ),
    ],
}

ARTIFACTS = {
    "fig1": figure1,
    "fig2": figure2,
    "tab1": table1,
    "fig3": figure3,
    "fig4": figure4,
    "tab2": table2,
    "fig5": figure5,
}


def generate(runner: ExperimentRunner, path: str) -> dict:
    """Run everything, write the markdown, return the claim results."""
    sections = []
    outcomes = {}
    for artifact_id, fn in ARTIFACTS.items():
        started = time.time()
        text, data = fn(runner)
        elapsed = time.time() - started
        claims = []
        for description, check in PAPER_CLAIMS.get(artifact_id, []):
            try:
                held = bool(check(data))
            except Exception:  # a malformed check must not kill the report
                held = False
            claims.append((description, held))
        outcomes[artifact_id] = claims
        claim_lines = "\n".join(
            f"- {'HOLDS' if held else 'DEVIATES'}: {description}"
            for description, held in claims
        )
        sections.append(
            f"## {artifact_id}\n\n```text\n{text}\n```\n\n"
            f"**Paper-shape checks:**\n\n{claim_lines}\n\n"
            f"_(regenerated in {elapsed:.1f}s)_\n"
        )
    header = (
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Generated by `python -m repro.experiments.writeup` "
        f"(nodes={runner.num_nodes}, preset={runner.preset}, "
        f"seed={runner.seed}).\n\n"
        "Absolute numbers are not comparable to the paper's testbed "
        "(simulator vs. real RS/6000s, scaled problem sizes, calibrated "
        "compute rates — see DESIGN.md); each artifact below is checked "
        "against the paper's *qualitative* claims instead. Every run is "
        "verified against a sequential computation before its numbers "
        "are reported.\n\n"
        "Known deviations (scaled-size artefacts): (1) LU's breakdowns "
        "are more barrier-bound than the paper's because the scaled "
        "matrices have 6-8 block steps instead of 32, so the serial "
        "diagonal factorization is a larger fraction of each run. "
        "(2) Prefetching speedups are compressed (roughly 0.85-1.15x vs "
        "the paper's 1.04-1.29x) because scaled runs have fewer misses "
        "over which to amortize the fixed prefetch machinery; the "
        "directional signatures (who is helped, who is hurt, latency "
        "inflation, RADIX's late prefetches) are preserved. "
        "(3) Multithreading's net wins are mostly absent at scaled "
        "sizes: the runs are so miss-dense that added threads mainly "
        "deepen queueing at the shared links/servers, and the "
        "switch/async-arrival overheads (110 us / 20 us, unscaled) are "
        "large relative to the shortened phases.  The *mechanism* — "
        "latency overlap at the cost of higher per-miss latency — is "
        "validated directly by benchmarks/bench_mt_mechanism.py "
        "(2 threads cut a pure miss-storm's wall time ~1.5x, 4 threads "
        "~2x), and LU-NCONT reproduces the paper's locality-driven "
        "multithreading gain.\n\n"
        f"Applications: {', '.join(APP_ORDER)}.\n"
    )
    content = header + "\n" + "\n".join(sections)
    with open(path, "w") as handle:
        handle.write(content)
    return outcomes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--preset", default="default")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    runner = ExperimentRunner(
        num_nodes=args.nodes, preset=args.preset, seed=args.seed, verbose=True
    )
    outcomes = generate(runner, args.out)
    held = sum(1 for claims in outcomes.values() for _d, ok in claims if ok)
    total = sum(len(claims) for claims in outcomes.values())
    print(f"\nwrote {args.out}: {held}/{total} paper-shape checks hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
