"""The crash-recovery matrix (an extension beyond the paper).

For each application: one fault-free baseline run, then the same
configuration with a crash-stop failure injected partway through the
run, detected by heartbeat timeout, and recovered from the last
coordinated barrier checkpoint.  The columns show where the extra wall
time went — checkpointing, dead time before the rollback, state
restoration — plus the checkpoint footprint.  Every crashed run
executes with the protocol sanitizer on, so the matrix doubles as an
invariant sweep of the recovery path.
"""

from __future__ import annotations

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps.registry import APP_ORDER, make_app
from repro.experiments.formatting import render_rows
from repro.experiments.runner import ExperimentRunner
from repro.metrics.counters import Category
from repro.network.faults import FaultPlan, NodeCrash

__all__ = ["crash_matrix"]


def crash_matrix(runner: ExperimentRunner):
    """Crash matrix: recovery overhead per application.

    The crash is scheduled at ``crash_frac`` of the baseline's wall
    time, so it lands mid-computation for every application regardless
    of problem size.
    """
    node = runner.crash_node
    frac = runner.crash_frac
    loss = runner.crash_loss
    headers = [
        "app",
        "base(ms)",
        "crash(ms)",
        "overhead%",
        "ckpts",
        "ckpt(ms)",
        "down(ms)",
        "recov(ms)",
        "ckpt-KB",
        "heartbeats",
    ]
    rows = []
    data = {}
    for app_name in APP_ORDER:
        baseline = runner.baseline(app_name)
        plan = FaultPlan(
            drop_prob=loss,
            crashes=(NodeCrash(node=node, at_us=baseline.wall_time_us * frac),),
        )
        config = RunConfig(
            num_nodes=runner.num_nodes,
            seed=runner.seed,
            fault_plan=plan,
            sanitizer=True,
        )
        if runner.verbose:
            print(f"  running {app_name} [O + crash n{node}@{frac:.0%}] ...", flush=True)
        report = DsmRuntime(config).execute(
            make_app(app_name, runner.preset), verify=runner.verify
        )
        ft = report.extra["ft"]
        times = report.breakdown.times
        entry = {
            "base_ms": baseline.wall_time_us / 1000.0,
            "crash_ms": report.wall_time_us / 1000.0,
            "overhead_pct": 100.0 * (report.wall_time_us / baseline.wall_time_us - 1.0),
            "checkpoints": ft["checkpoints"],
            "checkpoint_ms": times[Category.CHECKPOINT] / 1000.0,
            "downtime_ms": times[Category.DOWNTIME] / 1000.0,
            "recovery_ms": times[Category.RECOVERY] / 1000.0,
            "checkpoint_kb": ft["checkpoint_bytes"] / 1024.0,
            "heartbeats": ft["heartbeats"],
            "detections": ft["detections"],
            "recoveries": ft["recoveries"],
        }
        data[app_name] = entry
        rows.append(
            [
                app_name,
                f"{entry['base_ms']:.1f}",
                f"{entry['crash_ms']:.1f}",
                f"{entry['overhead_pct']:.1f}",
                str(entry["checkpoints"]),
                f"{entry['checkpoint_ms']:.1f}",
                f"{entry['downtime_ms']:.1f}",
                f"{entry['recovery_ms']:.1f}",
                f"{entry['checkpoint_kb']:.0f}",
                str(entry["heartbeats"]),
            ]
        )
    text = (
        f"Crash matrix: node {node} crashes at {frac:.0%} of the fault-free wall "
        f"time (loss={loss:.0%}); recovery from the last barrier checkpoint\n"
        + render_rows(headers, rows)
    )
    return text, data
