"""Critical-path what-if matrix: predicted bounds next to measured runs.

For every application the O/P/4T/4TP matrix is measured as usual, and
the O run's program-activity graph yields the what-if projections —
what the *same* execution would have cost with a zero-latency network,
with every diff round-trip hidden (an idealized prefetcher), or with
free context switches.  Putting the projection column next to the
measured column answers the paper's core question per app: how much of
the latency could each tolerance technique possibly recover, and how
much did the real technique actually recover.
"""

from __future__ import annotations

from repro.apps.registry import APP_ORDER
from repro.experiments.formatting import render_rows
from repro.experiments.runner import ExperimentRunner

__all__ = ["critpath_matrix"]

#: measured scheme -> the projection that upper-bounds its benefit.
_SCHEME_BOUND = {
    "P": "perfect_prefetch",
    "4T": "zero_cost_switch",
    "4TP": "zero_latency_network",
}


def critpath_matrix(runner: ExperimentRunner):
    """What-if projections vs the measured O/P/4T/4TP matrix."""
    runner.critpath = True
    headers = [
        "app",
        "O(ms)",
        "P(ms)",
        "pred-P(ms)",
        "4T(ms)",
        "pred-4T(ms)",
        "4TP(ms)",
        "pred-net(ms)",
        "floor(ms)",
        "top-wait",
    ]
    rows = []
    data = {}
    for app_name in APP_ORDER:
        base = runner.run(app_name, "O")
        if base.critpath is None:
            # Cached by an earlier experiment before critpath was on:
            # rerun the cell (deterministic, so the core is unchanged).
            runner._cache.pop((app_name, "O"), None)
            base = runner.run(app_name, "O")
        section = base.critpath or {}
        what_if = section.get("what_if_us", {})
        blame = section.get("blame_us", {})
        waits = {
            k: v for k, v in blame.items() if k not in ("cpu", "unattributed")
        }
        top_wait = max(sorted(waits), key=lambda k: waits[k]) if waits else "-"
        entry = {
            "measured_us": {
                label: runner.run(app_name, label).wall_time_us
                for label in ("O", "P", "4T", "4TP")
            },
            "what_if_us": dict(what_if),
            "top_wait": top_wait,
            "identity_exact": section.get("identity_exact", False),
        }
        data[app_name] = entry
        ms = lambda us: f"{us / 1000:.2f}"  # noqa: E731
        rows.append(
            [
                app_name,
                ms(entry["measured_us"]["O"]),
                ms(entry["measured_us"]["P"]),
                ms(what_if.get("perfect_prefetch", 0.0)),
                ms(entry["measured_us"]["4T"]),
                ms(what_if.get("zero_cost_switch", 0.0)),
                ms(entry["measured_us"]["4TP"]),
                ms(what_if.get("zero_latency_network", 0.0)),
                ms(what_if.get("compute_floor", 0.0)),
                top_wait,
            ]
        )
    text = (
        "Critical-path what-if matrix (pred-* = the O run's PAG re-weighted "
        "with that latency hidden;\nbeating a projection means the technique "
        "avoided work outright, not just hid latency)\n"
        + render_rows(headers, rows)
    )
    return text, data
