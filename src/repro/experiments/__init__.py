"""Experiment harness: regenerate every figure and table of the paper."""

from repro.experiments.adaptive import adaptive_matrix
from repro.experiments.crash import crash_matrix
from repro.experiments.critpath import critpath_matrix
from repro.experiments.figures import figure1, figure2, figure3, figure4, figure5
from repro.experiments.protocol import protocol_matrix
from repro.experiments.runner import CONFIG_LABELS, ExperimentRunner, parse_label
from repro.experiments.tables import table1, table2

ALL_EXPERIMENTS = {
    "fig1": figure1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "tab1": table1,
    "tab2": table2,
    "crash": crash_matrix,
    "critpath": critpath_matrix,
    "adaptive": adaptive_matrix,
    "protocol": protocol_matrix,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "CONFIG_LABELS",
    "ExperimentRunner",
    "adaptive_matrix",
    "crash_matrix",
    "critpath_matrix",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "parse_label",
    "protocol_matrix",
    "table1",
    "table2",
]
