"""Command-line entry: ``python -m repro.experiments [ids...]``.

Examples::

    python -m repro.experiments fig1
    python -m repro.experiments tab1 fig3
    python -m repro.experiments all --preset small --nodes 4
    python -m repro.experiments --crash
    python -m repro.experiments --crash --crash-node 5 --crash-at 0.6 --crash-loss 0.05
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, ExperimentRunner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--crash",
        action="store_true",
        help="run the crash-recovery matrix (shorthand for the 'crash' id)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run the static-vs-adaptive transport matrix (shorthand for "
        "the 'adaptive' id)",
    )
    parser.add_argument(
        "--protocol",
        action="store_true",
        help="run the coherence-protocol comparison matrix, lrc vs hlrc "
        "vs sc (shorthand for the 'protocol' id)",
    )
    parser.add_argument(
        "--crash-node",
        type=int,
        default=3,
        metavar="N",
        help="which node crashes (default 3; node 0 cannot crash)",
    )
    parser.add_argument(
        "--crash-at",
        type=float,
        default=0.45,
        metavar="FRAC",
        help="crash time as a fraction of the fault-free wall time (default 0.45)",
    )
    parser.add_argument(
        "--crash-loss",
        type=float,
        default=0.0,
        metavar="PROB",
        help="datagram loss probability during the crashed run (default 0)",
    )
    parser.add_argument("--nodes", type=int, default=8, help="cluster size (default 8)")
    parser.add_argument(
        "--preset",
        default="default",
        choices=["small", "default", "paper"],
        help="problem-size preset",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--no-verify", action="store_true", help="skip result verification (faster)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the run matrix across up to N worker processes "
        "(0 = one per CPU core); results are identical for any N. "
        "Ignored when --trace is set (the timeline audit is in-process)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record per-run event traces; PATH is a template — each "
        "(app, config) run writes PATH with '.APP-LABEL' inserted before "
        "the suffix (Chrome/Perfetto JSON, or flat logs if .jsonl)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        metavar="PATH",
        help="profile every run (latency histograms + hot-entity tables); "
        "with PATH, each run's full RunReport JSON is written using the "
        "same '.APP-LABEL' template as --trace",
    )
    parser.add_argument(
        "--critpath",
        action="store_true",
        help="attach exact critical-path analysis and what-if projections "
        "to every run (shorthand for the 'critpath' experiment when no "
        "ids are given)",
    )
    args = parser.parse_args(argv)

    wanted = list(ALL_EXPERIMENTS) if "all" in args.experiments else list(args.experiments)
    if args.crash and "crash" not in wanted:
        wanted.append("crash")
    if args.adaptive and "adaptive" not in wanted:
        wanted.append("adaptive")
    if args.protocol and "protocol" not in wanted:
        wanted.append("protocol")
    if args.critpath and not wanted:
        wanted.append("critpath")
    if not wanted:
        parser.error("no experiments requested (give ids, 'all', --crash, or --adaptive)")
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}")

    from repro.parallel import default_jobs

    jobs = default_jobs() if args.jobs == 0 else max(1, args.jobs)
    runner = ExperimentRunner(
        num_nodes=args.nodes,
        preset=args.preset,
        seed=args.seed,
        verify=not args.no_verify,
        verbose=True,
        trace_template=args.trace,
        profile_template=args.profile,
        crash_node=args.crash_node,
        crash_frac=args.crash_at,
        crash_loss=args.crash_loss,
        jobs=jobs,
        critpath=args.critpath,
    )
    for experiment_id in wanted:
        started = time.time()
        text, _data = ALL_EXPERIMENTS[experiment_id](runner)
        elapsed = time.time() - started
        print()
        print(text)
        print(f"\n[{experiment_id} regenerated in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
