"""The paper's figures, regenerated.

Each function takes an :class:`~repro.experiments.runner.ExperimentRunner`
and returns ``(text, data)``: a printable rendition plus the raw numbers
(for tests and EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.apps.registry import APP_ORDER
from repro.experiments.formatting import (
    breakdown_column,
    render_breakdown_table,
    render_rows,
)
from repro.experiments.runner import ExperimentRunner

__all__ = ["figure1", "figure2", "figure3", "figure4", "figure5"]


def figure1(runner: ExperimentRunner):
    """Figure 1: baseline execution-time breakdown on 8 nodes."""
    columns = {}
    for app_name in APP_ORDER:
        report = runner.run(app_name, "O")
        columns[app_name] = breakdown_column(report, report)
    text = render_breakdown_table(
        "Figure 1: execution time breakdown (TreadMarks, 8 nodes, % of each run)",
        columns,
    )
    return text, columns


def figure2(runner: ExperimentRunner):
    """Figure 2: original vs prefetching breakdown, normalized to O."""
    sections = []
    data = {}
    for app_name in APP_ORDER:
        baseline = runner.run(app_name, "O")
        prefetched = runner.run(app_name, "P")
        columns = {
            "O": breakdown_column(baseline, baseline),
            "P": breakdown_column(prefetched, baseline),
        }
        data[app_name] = {
            "columns": columns,
            "speedup": prefetched.speedup_over(baseline),
            "memory_stall_reduction": 1.0
            - (
                columns["P"]["Memory Idle"] / columns["O"]["Memory Idle"]
                if columns["O"]["Memory Idle"]
                else 0.0
            ),
        }
        sections.append(
            render_breakdown_table(f"{app_name} (speedup {data[app_name]['speedup']:.2f}x)", columns)
        )
    text = "Figure 2: impact of prefetching (normalized to O = 100)\n\n" + "\n\n".join(sections)
    return text, data


def figure3(runner: ExperimentRunner):
    """Figure 3: breakdown of the original remote misses under P."""
    headers = ["app", "no pf", "pf-miss:invalidated", "pf-miss:too late", "pf-hit"]
    rows = []
    data = {}
    for app_name in APP_ORDER:
        stats = runner.run(app_name, "P").prefetch_stats
        total = stats.hits + stats.late + stats.invalidated + stats.no_pf
        if total == 0:
            shares = {"no_pf": 0.0, "invalidated": 0.0, "late": 0.0, "hit": 0.0}
        else:
            shares = {
                "no_pf": 100.0 * stats.no_pf / total,
                "invalidated": 100.0 * stats.invalidated / total,
                "late": 100.0 * stats.late / total,
                "hit": 100.0 * stats.hits / total,
            }
        data[app_name] = shares
        rows.append(
            [
                app_name,
                f"{shares['no_pf']:.0f}",
                f"{shares['invalidated']:.0f}",
                f"{shares['late']:.0f}",
                f"{shares['hit']:.0f}",
            ]
        )
    text = (
        "Figure 3: what happened to the original remote misses (% under P)\n"
        + render_rows(headers, rows)
    )
    return text, data


def figure4(runner: ExperimentRunner):
    """Figure 4: multithreading with 2, 4, 8 threads per node."""
    labels = ["O", "2T", "4T", "8T"]
    sections = []
    data = {}
    for app_name in APP_ORDER:
        baseline = runner.run(app_name, "O")
        columns = {
            label: breakdown_column(runner.run(app_name, label), baseline)
            for label in labels
        }
        best = min(labels, key=lambda lab: columns[lab]["Total"])
        data[app_name] = {"columns": columns, "best": best}
        sections.append(render_breakdown_table(f"{app_name} (best: {best})", columns))
    text = "Figure 4: impact of multithreading (normalized to O = 100)\n\n" + "\n\n".join(
        sections
    )
    return text, data


def figure5(runner: ExperimentRunner):
    """Figure 5: prefetching and multithreading combined."""
    labels = ["O", "2T", "4T", "8T", "P", "2TP", "4TP", "8TP"]
    sections = []
    data = {}
    for app_name in APP_ORDER:
        baseline = runner.run(app_name, "O")
        columns = {
            label: breakdown_column(runner.run(app_name, label), baseline)
            for label in labels
        }
        best = min(labels, key=lambda lab: columns[lab]["Total"])
        data[app_name] = {"columns": columns, "best": best}
        sections.append(render_breakdown_table(f"{app_name} (best: {best})", columns))
    text = (
        "Figure 5: combining prefetching and multithreading "
        "(normalized to O = 100)\n\n" + "\n\n".join(sections)
    )
    return text, data
