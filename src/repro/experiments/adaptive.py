"""Static vs adaptive transport under clean and hostile fabrics.

An extension beyond the paper: the same applications, run on the static
transport (fixed 10 ms base RTO, no windowing) and on the adaptive one
(Jacobson/Karn RTT-estimated RTO, AIMD in-flight window, backpressure
with prefetch shedding), across four committed fabric conditions:

- ``clean`` — the fault-free fabric every figure uses; adaptation must
  cost nothing here (the estimator converges and then sits idle);
- ``loss`` — 5% datagram loss; the adaptive RTO (sitting at its 5 ms
  floor on this fast fabric) recovers lost messages off a retry ladder
  half the static one's, shortening every loss-lengthened stall;
- ``degrade`` — from a quarter of the run onward the whole fabric
  gains 15 ms of flat latency, landing *above* the static timeout: the
  static transport spuriously retransmits every message for the rest
  of the run, while the adaptive one learns the new RTT off the first
  delayed acks (the attempt echo measures it directly), reverts the
  transient's window halvings (Eifel undo), and stops the storm;
- ``partition`` — one node unreachable for 120 ms; both transports must
  deliver once the fabric heals.  The adaptive arm bounds the post-heal
  wait three ways: the RTO ceiling caps how far the retained Karn
  backoff can stretch a timer armed just before the heal, the give-up
  deadline parks hopeless messages onto a short re-probe cadence, and
  any arrival from the healed peer triggers an immediate fast
  re-flight of everything still pending toward it.

Every cell verifies the application's answer — a transport that loses
or reorders its way to a wrong result fails the experiment, whatever
its wall clock.

Each (app, scenario, transport) cell runs at ``REPEATS`` consecutive
seeds and the table reports per-metric medians: which datagrams a lossy
fabric eats is seed luck, and a single draw can hand either transport
an unrepresentative critical path (e.g. a double-drop right before a
barrier).  The medians are what the claim is about; any single seed is
reproducible on its own.
"""

from __future__ import annotations

import statistics
from typing import Optional

from repro.api.runtime import RunConfig
from repro.apps.registry import APP_ORDER
from repro.experiments.formatting import render_rows
from repro.experiments.runner import ExperimentRunner
from repro.network.faults import FaultPlan, LinkDegradation, LinkPartition
from repro.network.transport import TransportConfig

__all__ = ["adaptive_matrix", "ADAPTIVE_SCENARIOS", "scenario_plan"]

#: The committed fabric conditions, in presentation order.
ADAPTIVE_SCENARIOS = ("clean", "loss", "degrade", "partition")

#: Loss scenario: datagram loss probability.
LOSS_PROB = 0.05
#: Degrade scenario: flat added latency, deliberately above the static
#: 10 ms base timeout so the fixed RTO retransmits spuriously.
DEGRADE_LATENCY_US = 15_000.0
#: Partition scenario: how long the victim node is cut off.
PARTITION_US = 120_000.0
#: The partitioned node (never node 0 — it hosts the coordinator).
PARTITION_NODE = 1
#: Runs per cell (consecutive seeds); the table reports medians.
REPEATS = 3


def scenario_plan(scenario: str, wall_us: float) -> Optional[FaultPlan]:
    """The committed fault plan for one scenario, scaled to a clean
    baseline wall time (fault onsets land mid-computation for every
    application regardless of problem size)."""
    if scenario == "clean":
        return None
    if scenario == "loss":
        return FaultPlan(drop_prob=LOSS_PROB)
    if scenario == "degrade":
        # Sustained: the fabric turns slow mid-run and stays slow.  A
        # transient shorter than one inflated round trip would test
        # nothing about adaptation (no estimator can learn from samples
        # that haven't returned yet); a sustained shift is the
        # mis-calibrated-deployment story the fixed RTO actually fails.
        return FaultPlan(
            degradations=(
                LinkDegradation(
                    start_us=round(0.25 * wall_us, 1),
                    end_us=round(100.0 * wall_us, 1),
                    extra_latency_us=DEGRADE_LATENCY_US,
                ),
            )
        )
    if scenario == "partition":
        start = round(0.4 * wall_us, 1)
        return FaultPlan(
            partitions=(
                LinkPartition(
                    start_us=start,
                    end_us=round(start + PARTITION_US, 1),
                    nodes=frozenset({PARTITION_NODE}),
                ),
            )
        )
    raise ValueError(f"unknown scenario {scenario!r}")


def adaptive_matrix(runner: ExperimentRunner, apps: Optional[list[str]] = None):
    """Static-vs-adaptive comparison matrix.

    For every (app, scenario) cell: wall clock and retransmit count on
    both transports, the adaptive speedup, and the adaptive layer's own
    activity (paced sends, shed prefetches).  Apps run in the prefetch
    configuration (``P``) so the backpressure path — shedding
    speculative traffic under pressure — is actually exercised.
    """
    # Imported here, not at module scope: repro.parallel itself imports
    # the experiments package (workers rebuild apps by name), so a
    # top-level import would be circular in spawned workers.
    from repro.parallel import RunSpec, run_specs

    apps = list(apps or APP_ORDER)
    label = "P"
    # Clean static baselines set each app's time scale for fault onsets.
    walls = {app_name: runner.run(app_name, label).wall_time_us for app_name in apps}
    specs = []
    cells = []
    for app_name in apps:
        for scenario in ADAPTIVE_SCENARIOS:
            plan = scenario_plan(scenario, walls[app_name])
            for adaptive in (False, True):
                for rep in range(REPEATS):
                    config = RunConfig(
                        num_nodes=runner.num_nodes,
                        threads_per_node=1,
                        prefetch=True,
                        seed=runner.seed + rep,
                        fault_plan=plan,
                        transport=TransportConfig(adaptive=adaptive),
                    )
                    cells.append((app_name, scenario, adaptive, rep))
                    specs.append(
                        RunSpec(
                            index=len(specs),
                            app_name=app_name,
                            preset=runner.preset,
                            label=label,
                            config=config,
                            verify=runner.verify,
                        )
                    )

    def on_done(spec, report) -> None:
        if runner.verbose:
            app_name, scenario, adaptive, rep = cells[spec.index]
            arm = "adaptive" if adaptive else "static"
            print(f"  finished {app_name} [{scenario}/{arm}/seed+{rep}]", flush=True)

    reports = run_specs(specs, jobs=runner.jobs, on_done=on_done)

    grouped: dict[tuple, list] = {}
    for cell, report in zip(cells, reports):
        grouped.setdefault(cell[:3], []).append(report)

    def median_of(reports_, metric) -> float:
        return statistics.median(metric(r) for r in reports_)
    headers = [
        "app",
        "scenario",
        "static(ms)",
        "adaptive(ms)",
        "speedup",
        "rexmit-s",
        "rexmit-a",
        "paced",
        "shed",
    ]
    rows = []
    data: dict[str, dict[str, dict]] = {}
    def health(report, key) -> float:
        return float((report.transport_health or {}).get(key, 0))

    for app_name in apps:
        data[app_name] = {}
        for scenario in ADAPTIVE_SCENARIOS:
            static = grouped[(app_name, scenario, False)]
            adaptive = grouped[(app_name, scenario, True)]
            static_wall = median_of(static, lambda r: r.wall_time_us)
            adaptive_wall = median_of(adaptive, lambda r: r.wall_time_us)
            entry = {
                "static_wall_us": static_wall,
                "adaptive_wall_us": adaptive_wall,
                "speedup": static_wall / adaptive_wall if adaptive_wall > 0 else 0.0,
                "static_retransmits": median_of(static, lambda r: r.retransmissions),
                "adaptive_retransmits": median_of(adaptive, lambda r: r.retransmissions),
                "paced": median_of(adaptive, lambda r: health(r, "paced")),
                "shed": median_of(adaptive, lambda r: health(r, "shed")),
                "rtt_samples": median_of(adaptive, lambda r: health(r, "rtt_samples")),
                "cwnd_halvings": median_of(
                    adaptive, lambda r: health(r, "cwnd_halvings")
                ),
                "max_in_flight": median_of(
                    adaptive, lambda r: health(r, "max_in_flight")
                ),
            }
            data[app_name][scenario] = entry
            rows.append(
                [
                    app_name,
                    scenario,
                    f"{entry['static_wall_us'] / 1000.0:.1f}",
                    f"{entry['adaptive_wall_us'] / 1000.0:.1f}",
                    f"{entry['speedup']:.2f}x",
                    f"{entry['static_retransmits']:g}",
                    f"{entry['adaptive_retransmits']:g}",
                    f"{entry['paced']:g}",
                    f"{entry['shed']:g}",
                ]
            )
    text = (
        "Adaptive transport matrix: static (fixed 10 ms RTO) vs adaptive "
        "(RTT-estimated RTO + AIMD + backpressure), prefetch configuration\n"
        f"scenarios: loss={LOSS_PROB:.0%}, "
        f"degrade=+{DEGRADE_LATENCY_US / 1000.0:.0f}ms sustained from 25% of the run, "
        f"partition=node {PARTITION_NODE} cut {PARTITION_US / 1000.0:.0f}ms; "
        f"medians over {REPEATS} seeds per cell\n"
        + render_rows(headers, rows)
    )
    return text, data
