"""Plain-text rendering of the paper's figures and tables."""

from __future__ import annotations

from repro.metrics.counters import Category
from repro.metrics.report import RunReport

__all__ = [
    "BREAKDOWN_ROWS",
    "breakdown_column",
    "render_breakdown_table",
    "render_rows",
]

#: Stacked-bar categories, top-to-bottom as in the paper's figures.
BREAKDOWN_ROWS = [
    ("Prefetch Ovhd", Category.PREFETCH),
    ("MT Ovhd", Category.MT),
    ("Sync Idle", Category.SYNC_IDLE),
    ("Memory Idle", Category.MEMORY_IDLE),
    ("DSM Ovhd", Category.DSM),
    ("Busy", Category.BUSY),
]


def breakdown_column(report: RunReport, baseline: RunReport) -> dict[str, float]:
    """One stacked bar: category percentages normalized to the baseline,
    plus the bar's total height."""
    normalized = report.normalized_breakdown(baseline)
    column = {label: normalized[cat.value] for label, cat in BREAKDOWN_ROWS}
    column["Total"] = report.normalized_total(baseline)
    return column


def render_rows(headers: list[str], rows: list[list[str]], indent: str = "") -> str:
    """Simple fixed-width table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        indent + "  ".join(str(headers[i]).rjust(widths[i]) for i in range(len(headers))),
        indent + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(indent + "  ".join(str(row[i]).rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def render_breakdown_table(
    title: str,
    columns: dict[str, dict[str, float]],
) -> str:
    """Render stacked-bar columns (config -> {row -> pct}) as a table."""
    headers = ["category"] + list(columns)
    rows = []
    for label, _cat in BREAKDOWN_ROWS:
        rows.append([label] + [f"{columns[c].get(label, 0.0):.1f}" for c in columns])
    rows.append(["Total"] + [f"{columns[c]['Total']:.1f}" for c in columns])
    return f"{title}\n{render_rows(headers, rows)}"
