"""Coherence-protocol comparison matrix: LRC vs HLRC vs SC.

An extension beyond the paper: the same applications and technique
configurations (O, P, 4T, 4TP), run on each pluggable coherence
backend (see ``repro.dsm.backend``):

- ``lrc`` — the paper's protocol: TreadMarks-style lazy release
  consistency with distributed diffs (the default backend);
- ``hlrc`` — home-based LRC: every page has a deterministic home node,
  releases flush diffs to the home, faults pull the whole page from
  the home.  Fewer, larger messages; a fault is one round trip instead
  of one per concurrent writer;
- ``sc`` — single-writer sequentially-consistent invalidate: write
  faults invalidate every other copy through a directory at the page's
  manager.  No twins, no diffs — and no tolerance for false sharing.

Every cell verifies the application's answer: the matrix is only
meaningful if all three protocols compute the same result.  Runs are
fanned out with :func:`repro.parallel.run_specs`, so the table is
byte-identical for any ``--jobs N``.

The per-protocol activity columns tell the mechanism story: LRC moves
diffs (``diffs``), HLRC trades them for whole-page fetches from the
home (``pg-fetch`` + ``hm-upd``), SC replaces both with invalidation
round trips (``inval``).
"""

from __future__ import annotations

from typing import Optional

from repro.api.runtime import RunConfig
from repro.apps.registry import APP_ORDER
from repro.dsm.backend import BACKEND_NAMES
from repro.experiments.formatting import render_rows
from repro.experiments.runner import ExperimentRunner, parse_label

__all__ = ["protocol_matrix", "PROTOCOL_ORDER", "PROTOCOL_CONFIGS"]

#: Presentation order: the paper's protocol first, then the two zoo members.
PROTOCOL_ORDER = ("lrc", "hlrc", "sc")

#: The four technique configurations every protocol is swept across.
PROTOCOL_CONFIGS = ("O", "P", "4T", "4TP")


def _sent(report, *kinds: str) -> int:
    table = report.traffic_by_kind or {}
    return int(sum(table.get(kind, {}).get("sent", 0) for kind in kinds))


def protocol_matrix(
    runner: ExperimentRunner,
    apps: Optional[list[str]] = None,
    configs: Optional[list[str]] = None,
):
    """The full (app x configuration x protocol) comparison matrix."""
    # Imported here, not at module scope: repro.parallel itself imports
    # the experiments package (workers rebuild apps by name), so a
    # top-level import would be circular in spawned workers.
    from repro.parallel import RunSpec, run_specs

    assert set(PROTOCOL_ORDER) == set(BACKEND_NAMES)
    apps = list(apps or APP_ORDER)
    configs = list(configs or PROTOCOL_CONFIGS)
    specs = []
    cells = []
    for app_name in apps:
        for label in configs:
            threads_per_node, prefetch = parse_label(label)
            for protocol in PROTOCOL_ORDER:
                config = RunConfig(
                    num_nodes=runner.num_nodes,
                    threads_per_node=threads_per_node,
                    prefetch=prefetch,
                    seed=runner.seed,
                    protocol=protocol,
                )
                cells.append((app_name, label, protocol))
                specs.append(
                    RunSpec(
                        index=len(specs),
                        app_name=app_name,
                        preset=runner.preset,
                        label=label,
                        config=config,
                        verify=runner.verify,
                    )
                )

    def on_done(spec, report) -> None:
        if runner.verbose:
            app_name, label, protocol = cells[spec.index]
            print(
                f"  finished {app_name} [{label}/{protocol}] "
                f"wall {report.wall_time_us / 1000:.2f} ms",
                flush=True,
            )

    reports = run_specs(specs, jobs=runner.jobs, on_done=on_done)

    headers = [
        "app",
        "config",
        "protocol",
        "wall(ms)",
        "vs lrc",
        "msgs",
        "KB",
        "faults",
        "diffs",
        "pg-fetch",
        "hm-upd",
        "inval",
        "verified",
    ]
    rows = []
    data: dict[str, dict[str, dict[str, dict]]] = {}
    by_cell = dict(zip(cells, reports))
    for app_name in apps:
        data[app_name] = {}
        for label in configs:
            data[app_name][label] = {}
            lrc_wall = by_cell[(app_name, label, "lrc")].wall_time_us
            for protocol in PROTOCOL_ORDER:
                report = by_cell[(app_name, label, protocol)]
                entry = {
                    "wall_time_us": report.wall_time_us,
                    "vs_lrc": report.wall_time_us / lrc_wall if lrc_wall else 0.0,
                    "total_messages": report.total_messages,
                    "total_kbytes": report.total_kbytes,
                    "remote_misses": report.events.remote_misses,
                    "diff_requests": _sent(report, "diff_request"),
                    "page_transfers": _sent(report, "page_reply", "sc_data"),
                    "home_updates": _sent(report, "home_update"),
                    "invalidations": _sent(report, "sc_inval"),
                    "verified": runner.verify,
                }
                data[app_name][label][protocol] = entry
                rows.append(
                    [
                        app_name,
                        label,
                        protocol,
                        f"{entry['wall_time_us'] / 1000.0:.2f}",
                        f"{entry['vs_lrc']:.2f}x",
                        f"{entry['total_messages']}",
                        f"{entry['total_kbytes']:.0f}",
                        f"{entry['remote_misses']}",
                        f"{entry['diff_requests']}",
                        f"{entry['page_transfers']}",
                        f"{entry['home_updates']}",
                        f"{entry['invalidations']}",
                        "yes" if entry["verified"] else "skipped",
                    ]
                )
    text = (
        "Coherence-protocol matrix: lrc (TreadMarks-style lazy release\n"
        "consistency) vs hlrc (home-based LRC) vs sc (single-writer\n"
        "sequentially-consistent invalidate); 'vs lrc' is wall time relative\n"
        "to the lrc cell of the same (app, config) — lower is faster\n"
        + render_rows(headers, rows)
    )
    return text, data
