"""Workstation and cluster models (CPU accounting, cost model)."""

from repro.machine.cluster import Cluster
from repro.machine.node import HANDLER_PRIORITY, THREAD_PRIORITY, Node
from repro.machine.timing import CostModel

__all__ = ["Cluster", "CostModel", "HANDLER_PRIORITY", "Node", "THREAD_PRIORITY"]
