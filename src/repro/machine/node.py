"""The workstation node model.

A :class:`Node` bundles the per-machine state: one CPU (a unit
:class:`~repro.sim.resources.Resource`), the local page store, the time
breakdown counters, and the network attachment.  Protocol layers (DSM,
threads, prefetching) hang their state off the node and charge CPU time
through :meth:`Node.occupy`.

CPU arbitration: message handlers acquire the CPU at higher priority
than application threads, approximating SIGIO-driven upcalls — an
arriving request is serviced as soon as the current compute quantum
yields.  Blocked threads never hold the CPU, so a node that is stalled
on a remote miss services incoming requests immediately (the "spinning"
case of the single-threaded DSM).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.machine.timing import CostModel
from repro.memory import PageStore
from repro.metrics.counters import Category, EventCounters, TimeBreakdown
from repro.network import Message, Network
from repro.sim import Event, Simulator, spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.transport import ReliableTransport

__all__ = ["Node", "HANDLER_PRIORITY", "THREAD_PRIORITY"]

HANDLER_PRIORITY = 0
THREAD_PRIORITY = 1


class Node:
    """One simulated workstation."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        network: Network,
        costs: CostModel,
        page_size: int,
    ) -> None:
        from repro.sim import Resource  # local import to keep module deps flat

        self.sim = sim
        self.node_id = node_id
        self.network = network
        self.costs = costs
        self.pages = PageStore(page_size)
        self.breakdown = TimeBreakdown()
        self.events = EventCounters()
        self.cpu = Resource(sim, capacity=1, name=f"cpu[{node_id}]")
        #: Set by the scheduler: multithreaded nodes pay an extra signal
        #: cost per asynchronous message arrival.
        self.mt_mode = False
        self._dispatch: Optional[Callable[[Message], Generator]] = None
        #: Optional hook invoked synchronously for every message arriving
        #: at this node, before any handler runs.  The failure detector
        #: piggybacks on it: any delivered traffic proves the sender was
        #: recently alive, so explicit heartbeats only fill silences.
        self.message_observer: Optional[Callable[[Message], None]] = None
        #: Reliable transport layer (installed by the cluster when on).
        #: With it, reliable protocol messages become tracked datagrams:
        #: retransmitted on timeout, acked and deduplicated on receipt.
        self.transport: Optional["ReliableTransport"] = None
        network.attach(node_id, self._on_message)

    def install_transport(self, transport: "ReliableTransport") -> None:
        self.transport = transport

    def reset_cpu(self) -> None:
        """Replace the CPU resource (crash rollback).

        Cancelled handlers/threads may have left acquisitions or queued
        waiters behind; a fresh resource discards them wholesale instead
        of unwinding the queue entry by entry.
        """
        from repro.sim import Resource

        self.cpu = Resource(self.sim, capacity=1, name=f"cpu[{self.node_id}]")

    # -- CPU charging -----------------------------------------------------

    def occupy(
        self, duration: float, category: Category, priority: int = THREAD_PRIORITY
    ) -> Generator[Event, Any, None]:
        """Hold the CPU for ``duration`` us, charged to ``category``.

        Usage: ``yield from node.occupy(30.0, Category.DSM)``.
        """
        if duration <= 0:
            return
        yield self.cpu.acquire(priority)
        try:
            started = self.sim.now
            yield self.sim.timeout(duration)
            self.breakdown.charge(category, duration)
            if self.sim.trace_on:
                tr = self.sim.trace
                # One cpu slice per charge: the PhaseTimeline audit
                # rebuilds the TimeBreakdown from exactly these events.
                # The start is captured *before* the timeout, not derived
                # as ``now - duration``: float subtraction would not
                # round-trip, and the critical-path builder matches slice
                # boundaries against message timestamps bit-exactly.
                tr.slice(started, duration, "cpu", category.value, self.node_id)
        finally:
            self.cpu.release()

    # -- messaging ---------------------------------------------------------

    def set_message_handler(self, dispatch: Callable[[Message], Generator]) -> None:
        """Register the protocol dispatcher.

        ``dispatch(message)`` must be a generator; it runs as a process
        after the receive cost has been charged.
        """
        self._dispatch = dispatch

    def send_message(self, message: Message) -> Generator[Event, Any, bool]:
        """Charge the send cost, then inject the message into the network.

        Reliable messages go through the transport when one is installed
        (the transport owns retransmission; the call returns once the
        first copy is in flight).  Returns whether the network accepted
        the datagram (False = dropped before the wire, meaningful only
        for untracked unreliable messages).
        """
        yield from self.occupy(self.costs.msg_send_cpu, Category.DSM)
        if self.transport is not None and message.reliable:
            return self.transport.send_tracked(message)
        return self.network.send(message)

    def _on_message(self, message: Message) -> None:
        if message.corrupted:
            # End-to-end checksum mismatch: discard before the liveness
            # observer or any protocol code sees the frame — a mangled
            # message is not evidence its sender is alive, and it is
            # never acked, so the reliable transport retransmits it.
            spawn(
                self.sim,
                self._discard_corrupt(message),
                name=f"checksum[{self.node_id}]",
                group=f"node{self.node_id}",
            )
            return
        if self.message_observer is not None:
            self.message_observer(message)
        spawn(
            self.sim,
            self._handle(message),
            name=f"handler[{self.node_id}]",
            group=f"node{self.node_id}",
        )

    def _discard_corrupt(self, message: Message) -> Generator[Event, Any, None]:
        recv_cost = self.costs.msg_recv_cpu
        if self.mt_mode:
            recv_cost += self.costs.async_arrival_extra
        # The frame must be read to be checksummed: pay the receive cost.
        yield from self.occupy(recv_cost, Category.DSM, priority=HANDLER_PRIORITY)
        self.events.corruption_detected += 1
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "network",
                "msg_checksum_fail",
                self.node_id,
                kind=message.kind.value,
                src=message.src,
            )

    def _handle(self, message: Message) -> Generator[Event, Any, None]:
        recv_cost = self.costs.msg_recv_cpu
        if self.mt_mode:
            recv_cost += self.costs.async_arrival_extra
        yield from self.occupy(recv_cost, Category.DSM, priority=HANDLER_PRIORITY)
        if self.transport is not None:
            deliver = yield from self.transport.on_receive(message)
            if not deliver:
                return  # an ack, or a suppressed duplicate
        if self._dispatch is None:
            return
        yield from self._dispatch(message)
