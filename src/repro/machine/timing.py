"""The software cost model.

Every microsecond constant in the simulation lives here, in one
dataclass, so experiments and ablations can vary them in a single place.
Defaults are taken from the paper where it publishes a number (140 us to
issue a remote prefetch, ~110 us context switch, remote misses measured
in the 1.6-3.9 ms range once queueing is included) and otherwise chosen
to be representative of a 133 MHz PowerPC 604 running AIX 4.1 with a
user-level UDP stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All per-operation software costs, in microseconds (unless noted)."""

    # -- processor --------------------------------------------------------
    cpu_mhz: float = 133.0

    # -- messaging (per message, on the CPU) ------------------------------
    msg_send_cpu: float = 25.0
    msg_recv_cpu: float = 25.0
    #: Extra per-arrival signal/upcall cost paid when the node runs
    #: multithreaded and can no longer spin on a reply queue (Section 4.3:
    #: "non-trivial kernel overhead due to signaling as messages arrive
    #: asynchronously").
    async_arrival_extra: float = 20.0

    # -- paging / diffs ----------------------------------------------------
    fault_handler: float = 30.0
    twin_create: float = 40.0
    #: Scanning the page against its twin, per page byte.
    diff_create_per_byte: float = 0.01
    #: Applying a diff, per modified byte.
    diff_apply_per_byte: float = 0.02
    page_validate: float = 10.0
    interval_close: float = 8.0
    write_notice_apply: float = 1.0

    # -- prefetching (Section 3) ------------------------------------------
    #: Paper: "each prefetch which generates a remote message requires
    #: roughly 140 usec of software overhead".
    prefetch_issue_remote: float = 140.0
    #: Paper footnote 4: an unnecessary prefetch costs an address lookup,
    #: a valid-flag check and a branch.
    prefetch_issue_local: float = 2.0

    # -- multithreading (Section 4) ----------------------------------------
    #: Paper: "the average context switch time (which is roughly 110 usec)".
    context_switch: float = 110.0
    lock_local_handoff: float = 8.0
    barrier_local_gather: float = 5.0

    # -- synchronization handlers -------------------------------------------
    lock_handler: float = 25.0
    barrier_handler: float = 25.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if isinstance(value, (int, float)) and value < 0:
                raise ConfigError(f"cost model field {name} must be >= 0, got {value}")
        if self.cpu_mhz <= 0:
            raise ConfigError("cpu_mhz must be positive")

    # -- derived helpers ---------------------------------------------------

    def cycles_us(self, cycles: float) -> float:
        """Convert a cycle count to microseconds on this CPU."""
        return cycles / self.cpu_mhz

    def diff_create_us(self, page_bytes: int, modified_bytes: int) -> float:
        """Cost of twin comparison plus run encoding."""
        return page_bytes * self.diff_create_per_byte + modified_bytes * 0.005

    def diff_apply_us(self, modified_bytes: int) -> float:
        return 5.0 + modified_bytes * self.diff_apply_per_byte

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """A copy with some constants replaced (for ablations)."""
        return replace(self, **kwargs)
