"""Cluster assembly: N nodes on one switch."""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.machine.node import Node
from repro.machine.timing import CostModel
from repro.network import LinkConfig, Network
from repro.sim import Simulator

__all__ = ["Cluster"]


class Cluster:
    """The simulated testbed: nodes, network, shared constants."""

    def __init__(
        self,
        num_nodes: int = 8,
        page_size: int = 4096,
        costs: Optional[CostModel] = None,
        link_config: Optional[LinkConfig] = None,
    ) -> None:
        if num_nodes < 2:
            raise ConfigError(f"a cluster needs >= 2 nodes, got {num_nodes}")
        if page_size <= 0 or page_size % 8:
            raise ConfigError(f"page size must be a positive multiple of 8, got {page_size}")
        self.sim = Simulator()
        self.num_nodes = num_nodes
        self.page_size = page_size
        self.costs = costs or CostModel()
        self.network = Network(self.sim, num_nodes, link_config=link_config)
        self.nodes: list[Node] = [
            Node(self.sim, node_id, self.network, self.costs, page_size)
            for node_id in range(num_nodes)
        ]

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < self.num_nodes:
            raise ConfigError(f"unknown node {node_id}")
        return self.nodes[node_id]

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the simulation; returns final simulated time (us)."""
        return self.sim.run(until=until, max_events=max_events)
