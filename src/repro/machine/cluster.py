"""Cluster assembly: N nodes on one switch.

The cluster also owns the robustness wiring: with a
:class:`~repro.network.faults.FaultPlan` the interconnect is built as a
:class:`~repro.network.faults.FaultyNetwork` (seed-driven loss,
duplication, reordering, degradation and stall windows), and with a
:class:`~repro.network.transport.TransportConfig` every node gets a
:class:`~repro.network.transport.ReliableTransport` so protocol traffic
survives whatever the plan injects.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.machine.node import Node
from repro.machine.timing import CostModel
from repro.network import (
    FaultPlan,
    FaultyNetwork,
    LinkConfig,
    Network,
    ReliableTransport,
    TransportConfig,
)
from repro.sim import RandomSource, Simulator
from repro.trace.tracer import Tracer

__all__ = ["Cluster"]


class Cluster:
    """The simulated testbed: nodes, network, shared constants."""

    def __init__(
        self,
        num_nodes: int = 8,
        page_size: int = 4096,
        costs: Optional[CostModel] = None,
        link_config: Optional[LinkConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        transport: Optional[TransportConfig] = None,
        rng: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if num_nodes < 2:
            raise ConfigError(f"a cluster needs >= 2 nodes, got {num_nodes}")
        if page_size <= 0 or page_size % 8:
            raise ConfigError(f"page size must be a positive multiple of 8, got {page_size}")
        self.sim = Simulator()
        if tracer is not None:
            self.sim.trace = tracer
        self.num_nodes = num_nodes
        self.page_size = page_size
        self.costs = costs or CostModel()
        self.random = rng or RandomSource(0)
        self.fault_plan = fault_plan
        if fault_plan is not None:
            self.network: Network = FaultyNetwork(
                self.sim,
                num_nodes,
                fault_plan,
                self.random,
                link_config=link_config,
            )
        else:
            self.network = Network(self.sim, num_nodes, link_config=link_config)
        self.nodes: list[Node] = [
            Node(self.sim, node_id, self.network, self.costs, page_size)
            for node_id in range(num_nodes)
        ]
        self.transports: list[ReliableTransport] = []
        if transport is not None:
            for node in self.nodes:
                layer = ReliableTransport(node, transport, self.random)
                node.install_transport(layer)
                self.transports.append(layer)

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < self.num_nodes:
            raise ConfigError(f"unknown node {node_id}")
        return self.nodes[node_id]

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the simulation; returns final simulated time (us)."""
        return self.sim.run(until=until, max_events=max_events)
