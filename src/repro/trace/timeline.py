"""Reconstruct time breakdowns from the event stream — and audit them.

:class:`PhaseTimeline` rebuilds per-node, per-category time totals from
the ``cpu`` trace events alone, plus a segmentation of the run into
*barrier epochs* (the intervals between global barrier releases, the
paper's natural phase boundary).  Because the instrumentation emits one
``cpu`` slice for exactly every ``TimeBreakdown.charge`` call, the
reconstruction must agree with the aggregate counters **exactly** (the
same float additions in the same order); :meth:`verify_against` is
therefore a built-in consistency audit of the accounting — any drift
means a charge path forgot its trace hook (or vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.metrics.counters import Category
from repro.trace.tracer import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.report import RunReport

__all__ = ["PhaseSegment", "PhaseTimeline"]

_CATEGORY_BY_VALUE = {category.value: category for category in Category}


@dataclass
class PhaseSegment:
    """One barrier epoch: the window between two global releases."""

    start: float
    end: float
    #: (node, category) -> charged microseconds within the window.
    times: dict[tuple[int, Category], float] = field(default_factory=dict)

    def total(self, category: Category) -> float:
        return sum(v for (_, cat), v in self.times.items() if cat is category)


class PhaseTimeline:
    """Per-node/per-category time totals rebuilt from trace events."""

    def __init__(self) -> None:
        #: node -> category -> charged microseconds.
        self.per_node: dict[int, dict[Category, float]] = {}
        #: global barrier release instants (epoch boundaries), sorted.
        self.barrier_releases: list[float] = []
        self.end_ts: float = 0.0
        self._charges: list[tuple[int, Category, float, float]] = []

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "PhaseTimeline":
        timeline = cls()
        releases: list[float] = []
        for event in events:
            if event.cat == "cpu" and event.ph == "X":
                category = _CATEGORY_BY_VALUE.get(event.name)
                if category is None:
                    continue
                node_times = timeline.per_node.setdefault(
                    event.node, {c: 0.0 for c in Category}
                )
                # Accumulate in stream order: this replays the exact
                # sequence of float additions TimeBreakdown.charge made,
                # so agreement is bit-exact, not merely within epsilon.
                node_times[category] += event.dur
                charge_ts = event.ts + event.dur
                timeline._charges.append((event.node, category, event.dur, charge_ts))
                timeline.end_ts = max(timeline.end_ts, charge_ts)
            elif event.name == "barrier_release" and event.ph == "i":
                releases.append(event.ts)
            timeline.end_ts = max(timeline.end_ts, event.ts)
        timeline.barrier_releases = sorted(set(releases))
        return timeline

    # -- totals ------------------------------------------------------------

    def node_total(self, node: int) -> dict[Category, float]:
        return self.per_node.get(node, {category: 0.0 for category in Category})

    def totals(self) -> dict[Category, float]:
        out = {category: 0.0 for category in Category}
        for times in self.per_node.values():
            for category, value in times.items():
                out[category] += value
        return out

    # -- epochs ------------------------------------------------------------

    def epochs(self) -> list[PhaseSegment]:
        """Barrier-epoch segmentation of the charged time.

        A charge is attributed to the epoch containing the instant it
        was recorded (the slice's end), matching how the aggregate
        counters see it.  Runs without barriers yield one segment.
        """
        bounds = [b for b in self.barrier_releases if 0.0 < b < self.end_ts]
        edges = [0.0] + bounds + [self.end_ts]
        segments = [
            PhaseSegment(start=edges[i], end=edges[i + 1]) for i in range(len(edges) - 1)
        ]
        for node, category, dur, charge_ts in self._charges:
            index = 0
            for i, segment in enumerate(segments):
                # epoch i covers (start, end]; charges at exactly a
                # release instant belong to the epoch the release closes.
                if charge_ts <= segment.end or i == len(segments) - 1:
                    index = i
                    break
            key = (node, category)
            times = segments[index].times
            times[key] = times.get(key, 0.0) + dur
        return segments

    # -- the audit ---------------------------------------------------------

    def verify_against(self, report: "RunReport", tol: float = 1e-6) -> list[str]:
        """Cross-check the reconstruction against a RunReport.

        Returns a list of human-readable mismatches (empty = the event
        stream and the aggregate accounting agree to within ``tol``
        microseconds, per node and per category).
        """
        mismatches: list[str] = []
        for node, breakdown in enumerate(report.node_breakdowns):
            rebuilt = self.node_total(node)
            for category in Category:
                expected = breakdown.times[category]
                got = rebuilt[category]
                if abs(expected - got) > tol:
                    mismatches.append(
                        f"node {node} {category.value}: trace={got:.6f}us "
                        f"report={expected:.6f}us (delta {got - expected:+.6f}us)"
                    )
        # Epoch segmentation must partition the totals exactly.
        segment_sum = {category: 0.0 for category in Category}
        for segment in self.epochs():
            for (_, category), value in segment.times.items():
                segment_sum[category] += value
        totals = self.totals()
        for category in Category:
            if abs(segment_sum[category] - totals[category]) > tol:
                mismatches.append(
                    f"epochs lose {category.value}: "
                    f"{segment_sum[category]:.6f} != {totals[category]:.6f}"
                )
        return mismatches
