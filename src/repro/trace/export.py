"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and flat JSONL.

The Chrome format (the "JSON Array Format" of the trace_event spec) is
loadable by Perfetto (https://ui.perfetto.dev) and the legacy
``chrome://tracing`` viewer.  The track layout is:

- one *process* per simulated node (``pid`` = node id);
- per node, a ``cpu`` thread carrying the CPU-charge slices (busy, DSM
  overhead, prefetch overhead, MT overhead), an ``idle`` thread
  carrying the attributed idle slices, and a ``protocol`` thread
  carrying node-scoped instants (faults, notices, drops, retransmits);
- one thread per application thread, carrying its stall begin/end
  slices and scheduling instants;
- async (``b``/``e``) pairs for every in-flight message and for every
  request/reply round trip, which Perfetto renders as spans/arrows
  linking the two sides.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.metrics.counters import Category
from repro.trace.tracer import TraceEvent

__all__ = ["chrome_trace", "write_chrome_trace", "write_jsonl", "jsonl_lines"]

#: Synthetic tid values for node-scoped tracks (application thread
#: tracks use ``APP_TID_BASE + tid`` so they can never collide).
CPU_TID = 0
IDLE_TID = 1
PROTOCOL_TID = 2
CRITPATH_TID = 3
TELEMETRY_TID = 4
APP_TID_BASE = 10

_IDLE_NAMES = frozenset((Category.MEMORY_IDLE.value, Category.SYNC_IDLE.value))


def _track_of(event: TraceEvent) -> int:
    """Map a TraceEvent onto its Chrome (tid) track within the node."""
    if event.tid is not None:
        return APP_TID_BASE + event.tid
    if event.cat == "cpu":
        return IDLE_TID if event.name in _IDLE_NAMES else CPU_TID
    return PROTOCOL_TID


def _telemetry_rows(
    section: dict[str, Any], threads: dict[tuple[int, int], str]
) -> list[dict[str, Any]]:
    """Telemetry series as Chrome counter (``"C"``) rows.

    One counter row per metric per node per window boundary; per-peer
    estimator metrics become one multi-series row (one args key per
    peer), which Perfetto renders as stacked series on a single track.
    The metric names come from the shared taxonomy in
    :mod:`repro.telemetry.sampler`, so the offline renderer can rebuild
    the section from the trace alone.
    """
    from repro.telemetry.sampler import DELTA_METRICS, GAUGE_METRICS, PEER_METRICS

    rows: list[dict[str, Any]] = []
    windows = section.get("windows", [])
    for node_key, entry in section.get("nodes", {}).items():
        pid = int(node_key)
        threads.setdefault((pid, TELEMETRY_TID), "telemetry")
        for name in GAUGE_METRICS:
            series = entry.get("gauges", {}).get(name, [])
            for ts, value in zip(windows, series):
                rows.append(
                    {
                        "name": name,
                        "cat": "telemetry",
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "tid": TELEMETRY_TID,
                        "args": {"value": value},
                    }
                )
        for name in DELTA_METRICS:
            series = entry.get("deltas", {}).get(name, [])
            for ts, value in zip(windows, series):
                rows.append(
                    {
                        "name": name,
                        "cat": "telemetry",
                        "ph": "C",
                        "ts": ts,
                        "pid": pid,
                        "tid": TELEMETRY_TID,
                        "args": {"value": value},
                    }
                )
        peers = entry.get("peers", {})
        if peers:
            for metric in PEER_METRICS:
                for index, ts in enumerate(windows):
                    args = {
                        peer_key: track[metric][index]
                        for peer_key, track in sorted(peers.items(), key=lambda p: int(p[0]))
                        if index < len(track.get(metric, ()))
                    }
                    if args:
                        rows.append(
                            {
                                "name": f"transport.peer.{metric}",
                                "cat": "telemetry",
                                "ph": "C",
                                "ts": ts,
                                "pid": pid,
                                "tid": TELEMETRY_TID,
                                "args": args,
                            }
                        )
    return rows


def chrome_trace(
    events: Iterable[TraceEvent],
    critpath: dict[str, Any] | None = None,
    dropped_events: int = 0,
    telemetry: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render events into a Chrome trace_event JSON object.

    ``critpath`` is a critical-path report section
    (``repro.critpath.CritpathResult.to_dict``): its same-node dwell
    intervals become X slices on a dedicated per-node track and its
    cross-node hops become ``s``/``f`` flow events linking the tracks,
    so Perfetto draws the critical path as arrows through the run.
    ``telemetry`` is a telemetry report section
    (``repro.telemetry.TelemetrySampler.finalize``): its windowed
    series become counter tracks overlaid on the same timeline.
    ``dropped_events`` (the tracer's ring-sink discard count) is
    surfaced in ``otherData`` for the validator.
    """
    rows: list[dict[str, Any]] = []
    #: (pid, tid) -> thread name, discovered from the event stream.
    threads: dict[tuple[int, int], str] = {}
    for event in events:
        tid = _track_of(event)
        key = (event.node, tid)
        if key not in threads:
            if tid == CPU_TID:
                threads[key] = "cpu"
            elif tid == IDLE_TID:
                threads[key] = "idle"
            elif tid == PROTOCOL_TID:
                threads[key] = "protocol"
            else:
                threads[key] = f"thread {event.tid}"
        row: dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts,
            "pid": event.node,
            "tid": tid,
        }
        if event.ph == "X":
            row["dur"] = event.dur
        if event.ph == "i":
            row["s"] = "t"  # instant scope: thread
        if event.id is not None:
            row["id"] = event.id
        if event.args:
            row["args"] = event.args
        rows.append(row)
    if critpath is not None:
        for dwell in critpath.get("dwells", ()):
            key = (dwell["node"], CRITPATH_TID)
            threads.setdefault(key, "critical path")
            rows.append(
                {
                    "name": "on critical path",
                    "cat": "critpath",
                    "ph": "X",
                    "ts": dwell["start"],
                    "dur": dwell["end"] - dwell["start"],
                    "pid": dwell["node"],
                    "tid": CRITPATH_TID,
                }
            )
        for i, flow in enumerate(critpath.get("flows", ())):
            threads.setdefault((flow["src"], CRITPATH_TID), "critical path")
            threads.setdefault((flow["dst"], CRITPATH_TID), "critical path")
            common = {
                "name": flow.get("category", "hop"),
                "cat": "critpath",
                "id": f"cp{i}",
            }
            rows.append(
                dict(common, ph="s", ts=flow["src_ts"], pid=flow["src"], tid=CRITPATH_TID)
            )
            rows.append(
                dict(common, ph="f", bp="e", ts=flow["dst_ts"], pid=flow["dst"], tid=CRITPATH_TID)
            )
    if telemetry is not None:
        rows.extend(_telemetry_rows(telemetry, threads))
    # The spec does not require sorted timestamps but viewers load large
    # traces faster when sorted; Python's stable sort preserves emission
    # order at equal timestamps, which keeps B before E and b before e.
    rows.sort(key=lambda r: r["ts"])
    meta: list[dict[str, Any]] = []
    for pid in sorted({node for node, _ in threads}):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"node {pid}"},
            }
        )
    for (pid, tid), label in sorted(threads.items()):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
        meta.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    other: dict[str, Any] = {"producer": "repro.trace", "time_unit": "us"}
    if dropped_events:
        other["events_dropped"] = dropped_events
    if telemetry is not None:
        other["telemetry_version"] = telemetry.get("version", 1)
    return {
        "traceEvents": meta + rows,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: str,
    critpath: dict[str, Any] | None = None,
    dropped_events: int = 0,
    telemetry: dict[str, Any] | None = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            chrome_trace(
                events,
                critpath=critpath,
                dropped_events=dropped_events,
                telemetry=telemetry,
            ),
            handle,
        )


def jsonl_lines(events: Iterable[TraceEvent]) -> Iterable[str]:
    for event in events:
        yield json.dumps(event.as_dict(), separators=(",", ":"))


def write_jsonl(events: Iterable[TraceEvent], path: str) -> None:
    """Flat one-event-per-line log (for grep/jq-style analysis)."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(events):
            handle.write(line + "\n")
