"""Chrome trace_event validation (library + CLI).

``python -m repro.trace.validate out.json`` checks that an exported
trace is well-formed before anyone wastes time loading a broken file
into Perfetto — CI runs this against a fresh SOR trace on every push.

Checks:

- top-level shape (``traceEvents`` array, required keys per event);
- timestamps are non-negative and sorted non-decreasing;
- ``B``/``E`` duration events balance as a proper stack per
  ``(pid, tid)`` track, with matching names;
- ``X`` events carry a non-negative ``dur``;
- async ``e`` events have a preceding ``b`` with the same ``(cat, id)``
  (an unterminated ``b`` is legal — that is what a dropped message
  looks like — but an orphan ``e`` is a bug);
- counter (``C``) events carry a non-empty ``args`` dict of finite
  numeric series values (booleans and nested objects are rejected) —
  a telemetry overlay with a malformed payload would render as an
  empty or garbage counter track.

Exit codes: 0 valid, 1 format violations, 2 load errors, dangling
causal edges, *or* malformed counter payloads — an orphan async ``e``
means a program-activity-graph wire edge references an event the ring
sink dropped (the trace's ``otherData.events_dropped`` count, surfaced
in the output, says how many were discarded), so critical-path
analysis of the file would be reconstructing from partial causality;
a malformed counter payload means the telemetry overlay cannot be
trusted, so dashboards rebuilt from the trace would be wrong.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

__all__ = ["validate_chrome_trace", "main"]

_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
_KNOWN_PHASES = frozenset("XBEibeMsftCNODP")


def validate_chrome_trace(trace: Any, max_errors: int = 20) -> list[str]:
    """Return a list of format violations (empty = valid)."""
    errors: list[str] = []

    def report(message: str) -> bool:
        errors.append(message)
        return len(errors) >= max_errors

    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' array"]
    last_ts: float = float("-inf")
    stacks: dict[tuple[Any, Any], list[tuple[str, float]]] = {}
    open_async: dict[tuple[Any, Any], int] = {}
    for index, event in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            if report(f"{where}: not an object"):
                return errors
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            if report(f"{where}: missing keys {missing}"):
                return errors
            continue
        ph = event["ph"]
        ts = event["ts"]
        if ph not in _KNOWN_PHASES:
            if report(f"{where}: unknown phase {ph!r}"):
                return errors
        if not isinstance(ts, (int, float)) or ts < 0:
            if report(f"{where}: bad timestamp {ts!r}"):
                return errors
            continue
        if ph != "M":  # metadata is pinned at ts 0 ahead of the stream
            if ts < last_ts:
                if report(f"{where}: timestamp {ts} < previous {last_ts} (unsorted)"):
                    return errors
            last_ts = ts
        track = (event["pid"], event["tid"])
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                if report(f"{where}: X event with bad dur {dur!r}"):
                    return errors
        elif ph == "B":
            stacks.setdefault(track, []).append((event["name"], ts))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                if report(f"{where}: E with no open B on track {track}"):
                    return errors
            else:
                name, begin_ts = stack.pop()
                if name != event["name"]:
                    if report(
                        f"{where}: E named {event['name']!r} closes B named {name!r} "
                        f"on track {track}"
                    ):
                        return errors
                if ts < begin_ts:
                    if report(f"{where}: E at {ts} before its B at {begin_ts}"):
                        return errors
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                if report(f"{where}: C counter without a non-empty args dict"):
                    return errors
            else:
                for series, value in args.items():
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        if report(
                            f"{where}: C counter series {series!r} has "
                            f"non-numeric value {value!r}"
                        ):
                            return errors
                        break
        elif ph in ("b", "e"):
            if "id" not in event:
                if report(f"{where}: async {ph} without an id"):
                    return errors
                continue
            key = (event.get("cat"), event["id"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    if report(f"{where}: async e with no open b for {key}"):
                        return errors
                else:
                    open_async[key] -= 1
    for track, stack in stacks.items():
        if stack:
            names = [name for name, _ in stack]
            if report(f"track {track}: {len(stack)} unclosed B events {names[:5]}"):
                return errors
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.validate",
        description="Validate a Chrome/Perfetto trace_event JSON file.",
    )
    parser.add_argument("trace", help="path to a trace JSON file")
    parser.add_argument(
        "--max-errors", type=int, default=20, help="stop after this many violations"
    )
    args = parser.parse_args(argv)
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"ERROR: cannot load {args.trace}: {error}")
        return 2
    errors = validate_chrome_trace(trace, max_errors=args.max_errors)
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
    dropped = 0
    if isinstance(trace, dict):
        other = trace.get("otherData")
        if isinstance(other, dict):
            dropped = int(other.get("events_dropped", 0) or 0)
    if dropped:
        print(f"WARNING: {dropped} events dropped at collection (ring full)")
    dangling = [e for e in errors if "async e with no open b" in e]
    bad_counters = [e for e in errors if "C counter" in e]
    if errors:
        print(f"INVALID: {args.trace} ({len(events)} events)")
        for error in errors:
            print(f"  - {error}")
        if dangling:
            print(
                f"  {len(dangling)} causal (PAG) edge(s) reference dropped/"
                "missing events — critical-path analysis would be partial"
            )
            return 2
        if bad_counters:
            print(
                f"  {len(bad_counters)} malformed counter payload(s) — the "
                "telemetry overlay cannot be trusted"
            )
            return 2
        return 1
    print(f"OK: {args.trace} ({len(events)} events, {dropped} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
