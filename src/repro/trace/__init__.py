"""Structured event tracing, timeline reconstruction, and exporters.

Enable with ``RunConfig(trace=TraceConfig())`` (or ``trace=True``), or
``--trace out.json`` on the ``repro.apps`` / ``repro.experiments``
CLIs; open the exported JSON in https://ui.perfetto.dev or
``chrome://tracing``.
"""

from repro.trace.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.trace.timeline import PhaseSegment, PhaseTimeline
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceCategory,
    TraceConfig,
    TraceEvent,
    Tracer,
)
from repro.trace.validate import validate_chrome_trace

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseSegment",
    "PhaseTimeline",
    "TraceCategory",
    "TraceConfig",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
