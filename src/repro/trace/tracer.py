"""Structured event tracing for the simulator and protocol stack.

The paper's analysis lives and dies on *where time goes*; the aggregate
counters (:mod:`repro.metrics`) answer "how much", this module answers
"in what order".  A :class:`Tracer` collects typed :class:`TraceEvent`
records from instrumentation hooks threaded through the simulator
kernel, the DSM protocol, the thread scheduler, the prefetch engine and
the network/transport layers.

Design constraints:

- **Zero overhead when off.**  Every call site is guarded by a single
  attribute check (``if tracer.enabled:``); the default tracer is the
  module-level :data:`NULL_TRACER` whose ``enabled`` is ``False``, so
  an untraced run pays one boolean load per potential event and builds
  no event objects.
- **Observe, never perturb.**  Emitting an event appends to a Python
  list (or bounded deque); no RNG draws, no simulator scheduling, no
  shared mutable protocol state.  A traced run must produce a
  bit-identical :class:`~repro.metrics.report.RunReport` (there is a
  determinism guard test for this).

Phases follow the Chrome ``trace_event`` vocabulary so export is a
straight mapping: ``X`` complete slices (with duration), ``B``/``E``
begin/end pairs, ``i`` instants, and ``b``/``e`` async pairs (used for
in-flight messages and request/reply round trips, which render as
arrows/spans in Perfetto).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

from repro.errors import ConfigError

__all__ = [
    "TraceCategory",
    "TraceConfig",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]


class TraceCategory:
    """The category vocabulary (mirrors :class:`repro.metrics.Category`
    for CPU-charge events, plus the subsystem categories)."""

    #: CPU/idle time charges — names carry the metrics category value.
    CPU = "cpu"
    #: Coherence protocol: page faults, diffs, write notices, locks, barriers.
    PROTOCOL = "protocol"
    #: Wire-level message lifecycle: send, deliver, drop, duplicate.
    NETWORK = "network"
    #: Reliable-transport activity: timeouts, retransmits, dedup.
    TRANSPORT = "transport"
    #: Thread scheduling: stalls, context switches, idle.
    SCHED = "sched"
    #: Prefetch engine outcomes.
    PREFETCH = "prefetch"
    #: Fault tolerance: crash, detection, checkpoint, recovery.
    FT = "ft"

    ALL = (CPU, PROTOCOL, NETWORK, TRANSPORT, SCHED, PREFETCH, FT)


@dataclass(frozen=True)
class TraceConfig:
    """How a run's tracer collects events."""

    #: ``"memory"`` keeps every event; ``"ring"`` keeps the newest
    #: ``ring_capacity`` (older events are discarded and counted).
    sink: str = "memory"
    ring_capacity: int = 1_000_000
    #: Restrict collection to these categories (``None`` = everything).
    #: Note: the :class:`~repro.trace.timeline.PhaseTimeline` consistency
    #: audit needs the ``cpu`` category.
    categories: Optional[frozenset[str]] = None

    def __post_init__(self) -> None:
        if self.sink not in ("memory", "ring"):
            raise ConfigError(f"trace sink must be 'memory' or 'ring', got {self.sink!r}")
        if self.ring_capacity < 1:
            raise ConfigError(f"ring_capacity must be >= 1, got {self.ring_capacity}")
        if self.categories is not None:
            object.__setattr__(self, "categories", frozenset(self.categories))
            unknown = set(self.categories) - set(TraceCategory.ALL)
            if unknown:
                raise ConfigError(f"unknown trace categories: {sorted(unknown)}")


@dataclass(slots=True)
class TraceEvent:
    """One structured event, stamped with simulated time.

    Attributes:
        ts: simulated time in microseconds.
        ph: Chrome trace phase (``X``, ``B``, ``E``, ``i``, ``b``, ``e``).
        cat: one of :class:`TraceCategory`.
        name: event name (e.g. ``page_fault``, ``busy``, ``msg:diff_request``).
        node: originating node id.
        tid: application thread id for thread-scoped events, else ``None``
            (the event lands on the node's protocol/cpu track).
        dur: duration in microseconds (``X`` events only).
        id: correlation id for async pairs (``b``/``e``).
        args: small JSON-friendly payload (page ids, byte counts, ...).
    """

    ts: float
    ph: str
    cat: str
    name: str
    node: int
    tid: Optional[int] = None
    dur: float = 0.0
    id: Optional[str] = None
    args: Optional[dict[str, Any]] = None

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON form (the JSONL exporter's row format)."""
        row: dict[str, Any] = {
            "ts": self.ts,
            "ph": self.ph,
            "cat": self.cat,
            "name": self.name,
            "node": self.node,
        }
        if self.tid is not None:
            row["tid"] = self.tid
        if self.ph == "X":
            row["dur"] = self.dur
        if self.id is not None:
            row["id"] = self.id
        if self.args:
            row["args"] = self.args
        return row


class Tracer:
    """Collects :class:`TraceEvent` records from instrumentation hooks.

    The tracer is attached to the :class:`~repro.sim.Simulator` (as
    ``sim.trace``) so every layer that owns a ``sim`` reference can
    reach it without extra plumbing; ``ts`` is stamped by the caller
    from ``sim.now``.
    """

    enabled = True

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self._events: Any
        if self.config.sink == "ring":
            self._events = deque(maxlen=self.config.ring_capacity)
        else:
            self._events = []
        #: Events discarded by a full ring sink (0 for memory sinks).
        self.dropped_events = 0
        self._categories = self.config.categories

    # -- collection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> Iterable[TraceEvent]:
        return self._events

    @property
    def complete(self) -> bool:
        """True when no event was discarded (safe for the timeline audit)."""
        return self.dropped_events == 0

    def emit(self, event: TraceEvent) -> None:
        if self._categories is not None and event.cat not in self._categories:
            return
        events = self._events
        if isinstance(events, deque) and len(events) == events.maxlen:
            self.dropped_events += 1
        events.append(event)

    # -- typed emit helpers ------------------------------------------------

    def instant(
        self,
        ts: float,
        cat: str,
        name: str,
        node: int,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        self.emit(TraceEvent(ts, "i", cat, name, node, tid=tid, args=args or None))

    def slice(
        self,
        ts: float,
        dur: float,
        cat: str,
        name: str,
        node: int,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        """A complete (``X``) slice starting at ``ts`` lasting ``dur``."""
        self.emit(TraceEvent(ts, "X", cat, name, node, tid=tid, dur=dur, args=args or None))

    def begin(
        self,
        ts: float,
        cat: str,
        name: str,
        node: int,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        self.emit(TraceEvent(ts, "B", cat, name, node, tid=tid, args=args or None))

    def end(
        self,
        ts: float,
        cat: str,
        name: str,
        node: int,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        self.emit(TraceEvent(ts, "E", cat, name, node, tid=tid, args=args or None))

    def async_begin(
        self,
        ts: float,
        cat: str,
        name: str,
        node: int,
        id: str,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        self.emit(TraceEvent(ts, "b", cat, name, node, tid=tid, id=id, args=args or None))

    def async_end(
        self,
        ts: float,
        cat: str,
        name: str,
        node: int,
        id: str,
        tid: Optional[int] = None,
        **args: Any,
    ) -> None:
        self.emit(TraceEvent(ts, "e", cat, name, node, tid=tid, id=id, args=args or None))

    # -- export convenience (implemented in repro.trace.export) ------------

    def chrome_trace(
        self,
        critpath: Optional[dict[str, Any]] = None,
        telemetry: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        from repro.trace.export import chrome_trace

        return chrome_trace(
            self.events,
            critpath=critpath,
            dropped_events=self.dropped_events,
            telemetry=telemetry,
        )

    def write_chrome(
        self,
        path: str,
        critpath: Optional[dict[str, Any]] = None,
        telemetry: Optional[dict[str, Any]] = None,
    ) -> None:
        from repro.trace.export import write_chrome_trace

        write_chrome_trace(
            self.events,
            path,
            critpath=critpath,
            dropped_events=self.dropped_events,
            telemetry=telemetry,
        )

    def write_jsonl(self, path: str) -> None:
        from repro.trace.export import write_jsonl

        write_jsonl(self.events, path)

    def timeline(self):
        from repro.trace.timeline import PhaseTimeline

        return PhaseTimeline.from_events(self.events)


class NullTracer(Tracer):
    """The default tracer: collects nothing, costs one attribute check.

    Instrumented call sites are written as::

        tr = self.sim.trace
        if tr.enabled:
            tr.instant(...)

    so with the null tracer installed the per-event cost is a single
    boolean load and branch.  The emit methods are still no-ops (not
    errors) as a second line of defence.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(TraceConfig())

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - defensive
        pass


#: Shared do-nothing tracer; installed on every Simulator by default.
NULL_TRACER = NullTracer()
