"""In-simulation checkpoint store for coordinated recovery.

A checkpoint is a *consistent cut* of the whole cluster.  The only
globally quiescent instant the protocol offers is the moment the barrier
manager counts the final arrival: every application thread, on every
node, is provably blocked at the barrier and no protocol operation (page
fetch, diff flush, lock movement) can be in flight.  All checkpoints are
taken there (plus one *initial* checkpoint before the schedulers start,
so a crash before the first barrier is also recoverable).

Application threads are Python generators and cannot be deep-copied;
their checkpointed form is the node's *input log* — every value the
scheduler has fed into ``body.send`` — which a replay into a fresh body
deterministically reconstructs (see ``NodeScheduler.rebuild_thread``).

Only the most recent checkpoint is retained (coordinated rollback never
needs an older one); cumulative counts and bytes are kept for the run
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.dsm.writenotice import WIRE_BYTES_PER_NOTICE

__all__ = ["NodeCheckpoint", "ClusterCheckpoint"]


def _value_bytes(value: Any) -> int:
    """Approximate stable-storage size of one logged thread input."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    return 8


@dataclass
class NodeCheckpoint:
    """One node's slice of a cluster checkpoint."""

    node_id: int
    #: Full protocol-state snapshot from ``DsmNode.snapshot_state`` —
    #: page contents, twins, vector clock, interval/write-notice/diff
    #: archives, lock and barrier state.
    dsm: dict
    #: ``ReliableTransport.snapshot_state`` result (``None`` when the
    #: run has no transport layer).
    transport: Any
    #: ``(tid, value_log_copy)`` per local thread, in tid order.
    thread_logs: list
    #: Approximate bytes written to stable storage for this node.
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = self._measure()

    def _measure(self) -> int:
        # Keyed with .get(): the snapshot layout is backend-specific.
        # The LRC family contributes twins, lamport watermarks, diff
        # archives and write-notice logs; the SC backend instead has
        # per-page modes and directory entries; every backend has page
        # contents and a vector clock (inert under SC).
        total = 0
        for arr in self.dsm["pages"].values():
            total += arr.nbytes
        for snap in self.dsm.get("coherence", {}).values():
            if snap["twin"] is not None:
                total += snap["twin"].nbytes
            if snap["byte_lamports"] is not None:
                total += snap["byte_lamports"].nbytes
        diff_store = self.dsm.get("diff_store")
        if diff_store is not None:
            for diffs in diff_store["by_page"].values():
                total += sum(d.diff.size_bytes for d in diffs)
        wn_log = self.dsm.get("wn_log")
        if wn_log is not None:
            for known in wn_log["by_proc"]:
                total += WIRE_BYTES_PER_NOTICE * len(known)
        # SC: one byte per recorded page mode, one word per directory
        # owner plus one per copyset member.
        total += len(self.dsm.get("page_modes", ()))
        for entry in self.dsm.get("directory", {}).values():
            total += 4 + 4 * len(entry["copyset"])
        # HLRC: the home's applied-vector per hosted page.
        for covers in self.dsm.get("home_applied", {}).values():
            total += 4 * len(covers)
        total += 4 * len(self.dsm["vc"])
        for _tid, values in self.thread_logs:
            total += sum(_value_bytes(v) for v in values)
        return total


@dataclass
class ClusterCheckpoint:
    """A coordinated snapshot of every node at one consistent cut."""

    #: ``"initial"`` (before the schedulers start) or ``"barrier"``.
    kind: str
    #: Barrier identity of the cut (``-1`` for the initial checkpoint).
    barrier_id: int
    episode: int
    taken_at: float
    #: Each node's vector clock as carried by its barrier arrival.
    node_vcs: list = field(default_factory=list)
    nodes: list = field(default_factory=list)
    #: Deep copy of ``Program.snapshot_local()`` — node-local program
    #: state that lives outside the DSM (see that method's docs).
    program_local: Any = None

    @property
    def size_bytes(self) -> int:
        return sum(n.size_bytes for n in self.nodes)
