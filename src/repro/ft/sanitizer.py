"""Runtime protocol-invariant sanitizer, gated per coherence backend.

The sanitizer is a passive observer attached to the simulator
(``sim.sanitizer``), mirroring the ``NULL_TRACER`` pattern: the default
is :data:`NULL_SANITIZER` whose ``enabled`` is False, so un-sanitized
runs pay one attribute check per hook site and nothing else.

Invariants are **protocol-gated**: the LRC family's assertions are
meaningless under the SC-invalidate backend (no twins, diffs, intervals
or vector clocks exist), and would raise false ``ProtocolError``s if an
SC run ever tripped them.  They are not silently skipped either — under
``sc`` any LRC-machinery hook firing at all IS the violation (the inert
vector clock must never advance, no interval may ever close), and SC
gets its own invariants in exchange.

LRC / HLRC invariants (``protocol`` in ``{"lrc", "hlrc"}``):

- **vector-clock monotonicity** — no component of any node's vector
  clock ever decreases;
- **interval creation discipline** — each processor's own intervals are
  created with consecutive indices (no gaps, no reuse);
- **no write notice from a dead interval** — a notice may only name an
  interval its creator has actually closed (creation happens
  synchronously before any propagation, so this is exact in-sim);
- **no diff applied twice** — the (node, page, proc, coverage, lamport)
  tuple of every applied diff is globally unique per applying node;
- **twin/diff lifecycle discipline** — a twin is never created over an
  existing twin, and a dirty page is never flushed without one.

HLRC adds (``protocol == "hlrc"``):

- **home routing** — a home update may only land on the page's home
  node, and only the home ever serves a page fetch;
- **home coverage monotonicity** — the applied-vector a home announces
  for a page never decreases component-wise across serves.

SC-invalidate invariants (``protocol == "sc"``):

- **protocol isolation** — no LRC machinery (twins, diffs, intervals,
  vector-clock advances, write notices) is ever active;
- **transaction serialization** — the directory never starts a second
  coherence transaction on a page while one is active;
- **single writer** — when write access is granted, the granted node
  holds the only valid copy cluster-wide (mirrored from install /
  invalidate events);
- **invalidation targeting** — an invalidation is only ever delivered
  to a node that actually holds a copy (a miss means the directory's
  copyset drifted from reality).

Violations raise :class:`~repro.errors.ProtocolError` carrying a dump of
the most recent protocol transitions for diagnosis.

The sanitizer deliberately keeps *no* RNG, sends no messages, and
charges no time, so enabling it cannot perturb a run: sanitizer-on and
sanitizer-off runs produce bit-identical reports.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ProtocolError

__all__ = ["ProtocolSanitizer", "NullSanitizer", "NULL_SANITIZER"]

#: How many recent transitions the diagnostic ring buffer keeps.
_RING_CAPACITY = 64


class ProtocolSanitizer:
    """Checks protocol invariants at transitions, gated per backend."""

    enabled = True

    def __init__(self, num_nodes: int, protocol: str = "lrc") -> None:
        self.num_nodes = num_nodes
        self.protocol = protocol
        #: Highest interval index each processor has *created* (closed).
        self._created: list[int] = [0] * num_nodes
        #: Keys of every diff application, per applying node.
        self._applied: set[tuple[int, int, int, int, int]] = set()
        #: Pages currently twinned, per node.
        self._twinned: set[tuple[int, int]] = set()
        #: SC: mirror of which nodes hold a valid copy of each page,
        #: maintained from install/invalidate events.
        self._sc_copies: dict[int, set[int]] = {}
        #: SC: pages with an active directory transaction (at manager).
        self._sc_active: dict[int, tuple[int, str]] = {}
        #: HLRC: per-(home, page) last served applied-vector.
        self._served_covers: dict[tuple[int, int], tuple[int, ...]] = {}
        #: Recent transitions, newest last, for the diagnostic dump.
        self._ring: deque[str] = deque(maxlen=_RING_CAPACITY)
        self.checks = 0
        self.violations = 0
        #: Optional profiler (set by the runtime when both are on):
        #: violations surface as a named counter in compare output.
        self.profile = None

    # -- recording -------------------------------------------------------

    def note(self, node_id: int, kind: str, detail: str) -> None:
        self._ring.append(f"node{node_id} {kind}: {detail}")

    def _violate(self, node_id: int, invariant: str, detail: str) -> None:
        self.violations += 1
        if self.profile is not None and self.profile.enabled:
            self.profile.count(node_id, "sanitizer_violations")
            self.profile.count(node_id, f"sanitizer_violations:{invariant}")
        recent = "\n    ".join(self._ring) or "<none>"
        raise ProtocolError(
            f"sanitizer: {invariant} violated on node {node_id}: {detail}\n"
            f"  recent protocol transitions (oldest first):\n    {recent}"
        )

    # -- protocol gating -------------------------------------------------

    def _lrc_only(self, node_id: int, hook: str) -> None:
        """LRC-machinery hooks must be dead under the SC backend."""
        if self.protocol == "sc":
            self._violate(
                node_id,
                "protocol isolation",
                f"LRC machinery active under the sc backend ({hook})",
            )

    def _sc_only(self, node_id: int, hook: str) -> None:
        if self.protocol != "sc":
            self._violate(
                node_id,
                "protocol isolation",
                f"SC directory machinery active under the {self.protocol} backend "
                f"({hook})",
            )

    def _hlrc_only(self, node_id: int, hook: str) -> None:
        if self.protocol != "hlrc":
            self._violate(
                node_id,
                "protocol isolation",
                f"home-based machinery active under the {self.protocol} backend "
                f"({hook})",
            )

    # -- hooks (LRC family) ----------------------------------------------

    def on_vc_update(self, node_id: int, proc: int, old: int, new: int) -> None:
        self.checks += 1
        self._lrc_only(node_id, "on_vc_update")
        self.note(node_id, "vc", f"proc {proc}: {old} -> {new}")
        if new < old:
            self._violate(
                node_id,
                "vector-clock monotonicity",
                f"component {proc} moved backwards {old} -> {new}",
            )

    def on_interval_closed(self, node_id: int, index: int) -> None:
        self.checks += 1
        self._lrc_only(node_id, "on_interval_closed")
        self.note(node_id, "interval", f"closed own interval {index}")
        expected = self._created[node_id] + 1
        if index != expected:
            self._violate(
                node_id,
                "interval creation discipline",
                f"closed interval {index}, expected {expected} "
                f"(last created was {self._created[node_id]})",
            )
        self._created[node_id] = index

    def on_write_notice(self, node_id: int, proc: int, interval_idx: int, page_id: int) -> None:
        self.checks += 1
        self._lrc_only(node_id, "on_write_notice")
        self.note(
            node_id, "notice", f"page {page_id} proc {proc} interval {interval_idx}"
        )
        if interval_idx > self._created[proc]:
            self._violate(
                node_id,
                "no write notice from a dead interval",
                f"notice names interval {interval_idx} of proc {proc}, but only "
                f"{self._created[proc]} intervals exist",
            )

    def on_diff_applied(
        self, node_id: int, page_id: int, proc: int, covers_through: int, lamport: int
    ) -> None:
        self.checks += 1
        self._lrc_only(node_id, "on_diff_applied")
        key = (node_id, page_id, proc, covers_through, lamport)
        self.note(
            node_id,
            "diff",
            f"apply page {page_id} proc {proc} covers<={covers_through} lamport {lamport}",
        )
        if key in self._applied:
            self._violate(
                node_id,
                "no diff applied twice",
                f"diff (page {page_id}, proc {proc}, covers_through {covers_through}, "
                f"lamport {lamport}) was already applied on this node",
            )
        self._applied.add(key)

    def on_twin_created(self, node_id: int, page_id: int) -> None:
        self.checks += 1
        self._lrc_only(node_id, "on_twin_created")
        key = (node_id, page_id)
        self.note(node_id, "twin", f"create twin for page {page_id}")
        if key in self._twinned:
            self._violate(
                node_id,
                "twin/diff lifecycle discipline",
                f"twin created over an existing twin for page {page_id}",
            )
        self._twinned.add(key)

    def on_flush(self, node_id: int, page_id: int, had_twin: bool) -> None:
        self.checks += 1
        self._lrc_only(node_id, "on_flush")
        key = (node_id, page_id)
        self.note(node_id, "flush", f"flush dirty page {page_id} (twin={had_twin})")
        if not had_twin:
            self._violate(
                node_id,
                "twin/diff lifecycle discipline",
                f"dirty page {page_id} flushed without a twin",
            )
        self._twinned.discard(key)

    def on_twin_dropped(self, node_id: int, page_id: int) -> None:
        self._twinned.discard((node_id, page_id))
        self.note(node_id, "twin", f"drop twin for page {page_id}")

    # -- hooks (HLRC) ----------------------------------------------------

    def on_home_update(self, node_id: int, page_id: int, home: int) -> None:
        """A flushed diff arrived at ``node_id`` claiming ``home``."""
        self.checks += 1
        self._hlrc_only(node_id, "on_home_update")
        self.note(node_id, "home", f"update for page {page_id} (home {home})")
        if node_id != home:
            self._violate(
                node_id,
                "home routing",
                f"home update for page {page_id} landed on node {node_id}, "
                f"but its home is {home}",
            )

    def on_page_served(
        self, node_id: int, page_id: int, home: int, covers: tuple
    ) -> None:
        """The home served a whole-page fetch covering ``covers``."""
        self.checks += 1
        self._hlrc_only(node_id, "on_page_served")
        self.note(node_id, "home", f"serve page {page_id} covers {covers}")
        if node_id != home:
            self._violate(
                node_id,
                "home routing",
                f"page {page_id} served by node {node_id}, but its home is {home}",
            )
        covers = tuple(covers)
        key = (node_id, page_id)
        last = self._served_covers.get(key)
        if last is not None and any(c < p for c, p in zip(covers, last)):
            self._violate(
                node_id,
                "home coverage monotonicity",
                f"page {page_id} served with coverage {covers}, "
                f"below an earlier serve's {last}",
            )
        self._served_covers[key] = covers

    # -- hooks (SC-invalidate) -------------------------------------------

    def on_sc_txn_start(self, node_id: int, page_id: int, requester: int, mode: str) -> None:
        """The directory admitted a coherence transaction on a page."""
        self.checks += 1
        self._sc_only(node_id, "on_sc_txn_start")
        self.note(node_id, "sc", f"txn start page {page_id} {mode} for {requester}")
        active = self._sc_active.get(page_id)
        if active is not None:
            self._violate(
                node_id,
                "transaction serialization",
                f"page {page_id} transaction for node {requester} ({mode}) started "
                f"while one for node {active[0]} ({active[1]}) is active",
            )
        self._sc_active[page_id] = (requester, mode)

    def on_sc_txn_end(self, node_id: int, page_id: int) -> None:
        self.checks += 1
        self._sc_only(node_id, "on_sc_txn_end")
        self.note(node_id, "sc", f"txn end page {page_id}")
        self._sc_active.pop(page_id, None)

    def _sc_copyset(self, page_id: int) -> set:
        """The mirror's copyset for a page.

        A page absent from the mirror has never diverged from the
        all-SHARED initial state (every node boots with a zero-filled
        replica of every page), so the default is *all nodes* — an
        entry is materialized only once install/invalidate traffic
        touches the page.
        """
        copies = self._sc_copies.get(page_id)
        if copies is None:
            copies = set(range(self.num_nodes))
            self._sc_copies[page_id] = copies
        return copies

    def on_sc_install(self, node_id: int, page_id: int, mode: str) -> None:
        """``node_id`` gained a valid copy (``read``/``write``)."""
        self.checks += 1
        self._sc_only(node_id, "on_sc_install")
        self.note(node_id, "sc", f"install page {page_id} ({mode})")
        copies = self._sc_copyset(page_id)
        copies.add(node_id)
        if mode == "write" and copies != {node_id}:
            self._violate(
                node_id,
                "single writer",
                f"write access to page {page_id} granted while copies remain "
                f"on nodes {sorted(copies - {node_id})}",
            )

    def on_sc_invalidate(self, node_id: int, page_id: int) -> None:
        """``node_id``'s copy of the page was invalidated."""
        self.checks += 1
        self._sc_only(node_id, "on_sc_invalidate")
        self.note(node_id, "sc", f"invalidate page {page_id}")
        copies = self._sc_copyset(page_id)
        if node_id not in copies:
            self._violate(
                node_id,
                "invalidation targeting",
                f"invalidation of page {page_id} delivered to node {node_id}, "
                f"which holds no copy (directory copyset drift)",
            )
        copies.discard(node_id)

    def on_sc_restore(self, node_id: int, invalid_pages) -> None:
        """Rebuild the copy mirror from one node's restored page modes.

        Called by each node's backend restore after :meth:`on_rollback`
        cleared the mirror.  Only *invalid* pages are reported: a page
        can lose a node's copy only through an invalidation, which
        materializes that node's page record — so any page a node does
        not report invalid, it holds (possibly as the untouched default
        replica), matching the mirror's absent-means-everyone default.
        """
        for page_id in invalid_pages:
            self._sc_copyset(page_id).discard(node_id)

    # -- recovery --------------------------------------------------------

    def on_rollback(self, node_vcs: Optional[list] = None) -> None:
        """Reset derived state after a coordinated rollback.

        Diff applications and twins from the discarded execution are
        forgotten; interval ceilings rewind to the checkpoint's vector
        clocks (each proc's own component counts its created intervals).
        """
        self._applied.clear()
        self._twinned.clear()
        self._sc_copies.clear()
        self._sc_active.clear()
        self._served_covers.clear()
        if node_vcs is not None:
            for proc in range(self.num_nodes):
                self._created[proc] = node_vcs[proc][proc]
        self.note(-1, "rollback", f"ceilings reset to {self._created}")


class NullSanitizer:
    """Inert stand-in: ``enabled`` is False so hook sites skip the call."""

    enabled = False

    def on_rollback(self, node_vcs: Optional[list] = None) -> None:
        pass


#: Shared inert sanitizer attached to every new :class:`Simulator`.
NULL_SANITIZER = NullSanitizer()
