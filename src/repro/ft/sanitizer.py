"""Runtime protocol-invariant sanitizer for the LRC protocol.

The sanitizer is a passive observer attached to the simulator
(``sim.sanitizer``), mirroring the ``NULL_TRACER`` pattern: the default
is :data:`NULL_SANITIZER` whose ``enabled`` is False, so un-sanitized
runs pay one attribute check per hook site and nothing else.  When
enabled it asserts, at every protocol transition:

- **vector-clock monotonicity** — no component of any node's vector
  clock ever decreases;
- **interval creation discipline** — each processor's own intervals are
  created with consecutive indices (no gaps, no reuse);
- **no write notice from a dead interval** — a notice may only name an
  interval its creator has actually closed (creation happens
  synchronously before any propagation, so this is exact in-sim);
- **no diff applied twice** — the (node, page, proc, coverage, lamport)
  tuple of every applied diff is globally unique per applying node;
- **twin/diff lifecycle discipline** — a twin is never created over an
  existing twin, and a dirty page is never flushed without one.

Violations raise :class:`~repro.errors.ProtocolError` carrying a dump of
the most recent protocol transitions for diagnosis.

The sanitizer deliberately keeps *no* RNG, sends no messages, and
charges no time, so enabling it cannot perturb a run: sanitizer-on and
sanitizer-off runs produce bit-identical reports.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ProtocolError

__all__ = ["ProtocolSanitizer", "NullSanitizer", "NULL_SANITIZER"]

#: How many recent transitions the diagnostic ring buffer keeps.
_RING_CAPACITY = 64


class ProtocolSanitizer:
    """Checks LRC invariants at protocol transitions; see module docs."""

    enabled = True

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        #: Highest interval index each processor has *created* (closed).
        self._created: list[int] = [0] * num_nodes
        #: Keys of every diff application, per applying node.
        self._applied: set[tuple[int, int, int, int, int]] = set()
        #: Pages currently twinned, per node.
        self._twinned: set[tuple[int, int]] = set()
        #: Recent transitions, newest last, for the diagnostic dump.
        self._ring: deque[str] = deque(maxlen=_RING_CAPACITY)
        self.checks = 0
        self.violations = 0
        #: Optional profiler (set by the runtime when both are on):
        #: violations surface as a named counter in compare output.
        self.profile = None

    # -- recording -------------------------------------------------------

    def note(self, node_id: int, kind: str, detail: str) -> None:
        self._ring.append(f"node{node_id} {kind}: {detail}")

    def _violate(self, node_id: int, invariant: str, detail: str) -> None:
        self.violations += 1
        if self.profile is not None and self.profile.enabled:
            self.profile.count(node_id, "sanitizer_violations")
            self.profile.count(node_id, f"sanitizer_violations:{invariant}")
        recent = "\n    ".join(self._ring) or "<none>"
        raise ProtocolError(
            f"sanitizer: {invariant} violated on node {node_id}: {detail}\n"
            f"  recent protocol transitions (oldest first):\n    {recent}"
        )

    # -- hooks -----------------------------------------------------------

    def on_vc_update(self, node_id: int, proc: int, old: int, new: int) -> None:
        self.checks += 1
        self.note(node_id, "vc", f"proc {proc}: {old} -> {new}")
        if new < old:
            self._violate(
                node_id,
                "vector-clock monotonicity",
                f"component {proc} moved backwards {old} -> {new}",
            )

    def on_interval_closed(self, node_id: int, index: int) -> None:
        self.checks += 1
        self.note(node_id, "interval", f"closed own interval {index}")
        expected = self._created[node_id] + 1
        if index != expected:
            self._violate(
                node_id,
                "interval creation discipline",
                f"closed interval {index}, expected {expected} "
                f"(last created was {self._created[node_id]})",
            )
        self._created[node_id] = index

    def on_write_notice(self, node_id: int, proc: int, interval_idx: int, page_id: int) -> None:
        self.checks += 1
        self.note(
            node_id, "notice", f"page {page_id} proc {proc} interval {interval_idx}"
        )
        if interval_idx > self._created[proc]:
            self._violate(
                node_id,
                "no write notice from a dead interval",
                f"notice names interval {interval_idx} of proc {proc}, but only "
                f"{self._created[proc]} intervals exist",
            )

    def on_diff_applied(
        self, node_id: int, page_id: int, proc: int, covers_through: int, lamport: int
    ) -> None:
        self.checks += 1
        key = (node_id, page_id, proc, covers_through, lamport)
        self.note(
            node_id,
            "diff",
            f"apply page {page_id} proc {proc} covers<={covers_through} lamport {lamport}",
        )
        if key in self._applied:
            self._violate(
                node_id,
                "no diff applied twice",
                f"diff (page {page_id}, proc {proc}, covers_through {covers_through}, "
                f"lamport {lamport}) was already applied on this node",
            )
        self._applied.add(key)

    def on_twin_created(self, node_id: int, page_id: int) -> None:
        self.checks += 1
        key = (node_id, page_id)
        self.note(node_id, "twin", f"create twin for page {page_id}")
        if key in self._twinned:
            self._violate(
                node_id,
                "twin/diff lifecycle discipline",
                f"twin created over an existing twin for page {page_id}",
            )
        self._twinned.add(key)

    def on_flush(self, node_id: int, page_id: int, had_twin: bool) -> None:
        self.checks += 1
        key = (node_id, page_id)
        self.note(node_id, "flush", f"flush dirty page {page_id} (twin={had_twin})")
        if not had_twin:
            self._violate(
                node_id,
                "twin/diff lifecycle discipline",
                f"dirty page {page_id} flushed without a twin",
            )
        self._twinned.discard(key)

    def on_twin_dropped(self, node_id: int, page_id: int) -> None:
        self._twinned.discard((node_id, page_id))
        self.note(node_id, "twin", f"drop twin for page {page_id}")

    # -- recovery --------------------------------------------------------

    def on_rollback(self, node_vcs: Optional[list] = None) -> None:
        """Reset derived state after a coordinated rollback.

        Diff applications and twins from the discarded execution are
        forgotten; interval ceilings rewind to the checkpoint's vector
        clocks (each proc's own component counts its created intervals).
        """
        self._applied.clear()
        self._twinned.clear()
        if node_vcs is not None:
            for proc in range(self.num_nodes):
                self._created[proc] = node_vcs[proc][proc]
        self.note(-1, "rollback", f"ceilings reset to {self._created}")


class NullSanitizer:
    """Inert stand-in: ``enabled`` is False so hook sites skip the call."""

    enabled = False

    def on_rollback(self, node_vcs: Optional[list] = None) -> None:
        pass


#: Shared inert sanitizer attached to every new :class:`Simulator`.
NULL_SANITIZER = NullSanitizer()
