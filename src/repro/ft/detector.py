"""Heartbeat-based failure detection with partition-tolerant membership.

Node 0 (which already hosts the barrier manager) doubles as the
*coordinator*: every other node sends it a small unreliable heartbeat
datagram each ``heartbeat_period_us``.  Declaring a node dead is
deliberately a two-step affair, because silence is ambiguous — a
crashed node, a partitioned node, and a stalled node all go quiet:

- **Suspicion** — silence beyond ``suspicion_timeout_us``, or a peer's
  transport exhausting its retries (``on_give_up``), opens a suspicion
  record: who reported it, and when.  Any delivered message from the
  suspect clears the record — evidence of life always wins.
- **Confirmation** — a suspicion only matures once it has aged
  ``suspicion_ttl_us`` *and* gathered ``suspicion_quorum`` distinct
  reporters (the coordinator's own silence observation counts as one).
  A reachable-but-slow node — a long NodeStall, a congested link —
  resumes talking inside the TTL and is never declared dead, where the
  pre-TTL detector would have killed it on the first give-up report.

What maturity triggers is the :class:`~repro.ft.manager.FtManager`'s
call (fencing, then rejoin-or-rollback — see there): the detector only
grades evidence.  Two refinements keep it cheap and fast:

- **Piggybacking** — *any* message delivered to the coordinator counts
  as evidence its sender is alive (hooked via ``Node.message_observer``),
  so heartbeats only fill silences in regular traffic.
- **Quorum awareness** — :meth:`has_quorum` reports whether the
  coordinator currently hears a majority of the cluster; a coordinator
  stranded in a minority partition uses it to stand down instead of
  fencing the (healthy) majority or committing a split-brain cut.

Membership agreement is broadcast: on fencing a node the coordinator
sends every survivor an ``FT_DOWN`` message, rejoin/recovery closes
with an ``FT_UP`` (plus an ``FT_REJOIN`` to the healed node itself).
Each node's view of the membership is tracked per node; the
coordinator's own view is authoritative for rollback decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ft.config import FtConfig
from repro.network.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ft.manager import FtManager

__all__ = ["FailureDetector", "COORDINATOR"]

#: The failure-detection coordinator (co-located with the barrier
#: manager, which is why crashing node 0 is rejected).
COORDINATOR = 0


@dataclass
class _Suspicion:
    """One open suspicion: when it started and who vouches for it."""

    since: float
    reporters: set[int] = field(default_factory=set)


class FailureDetector:
    """Coordinator-side liveness tracking plus per-node membership views."""

    def __init__(self, ft: "FtManager", config: FtConfig) -> None:
        self.ft = ft
        self.config = config
        self.sim = ft.sim
        self.num_nodes = ft.num_nodes
        #: Effective silence threshold.  Starts at the configured value;
        #: the manager raises it to the adaptive transport's give-up
        #: deadline when one is in use — suspicion must key off when
        #: transports actually stop trying, not a fixed retry count
        #: calibrated for the static 10 ms timeout ladder.
        self.suspicion_timeout_us = config.suspicion_timeout_us
        #: Last time the coordinator heard *anything* from each node.
        self.last_heard: dict[int, float] = {
            n: 0.0 for n in range(self.num_nodes) if n != COORDINATOR
        }
        #: Open suspicions (cleared by any evidence of life).
        self.suspects: dict[int, _Suspicion] = {}
        #: Nodes the coordinator has removed from the membership
        #: (fenced suspects and crashed nodes awaiting rollback).
        self.down: set[int] = set()
        #: Per-node membership views, updated by FT_DOWN/FT_UP delivery.
        self.views: dict[int, set[int]] = {n: set() for n in range(self.num_nodes)}
        # statistics
        self.heartbeats_sent = 0
        self.suspicions = 0
        self.suspicions_cleared = 0

    # -- evidence sources -------------------------------------------------

    def observe(self, dst_node: int, message: Message) -> None:
        """``Node.message_observer`` hook: delivered traffic is liveness."""
        if dst_node == COORDINATOR and message.src != COORDINATOR:
            self.last_heard[message.src] = self.sim.now
            if message.src in self.suspects:
                # Evidence of life always wins: the suspect spoke.
                del self.suspects[message.src]
                self.suspicions_cleared += 1
                if self.sim.trace_on:
                    tr = self.sim.trace
                    tr.instant(
                        self.sim.now,
                        "ft",
                        "suspicion_cleared",
                        COORDINATOR,
                        suspect=message.src,
                        kind=message.kind.value,
                    )

    def on_give_up(self, reporter: int, dst: int, message: Message) -> None:
        """A transport exhausted its retries against ``dst``.

        One reporter's give-up is a *vote*, not a verdict: the suspicion
        still has to age ``suspicion_ttl_us`` and reach
        ``suspicion_quorum`` reporters while the suspect stays silent at
        the coordinator.  A slow-but-alive peer clears it by talking.
        """
        if dst == COORDINATOR or dst in self.down:
            return
        self._suspect(dst).reporters.add(reporter)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "ft",
                "suspicion_reported",
                reporter,
                suspect=dst,
                kind=message.kind.value,
            )

    def _suspect(self, node: int) -> _Suspicion:
        suspicion = self.suspects.get(node)
        if suspicion is None:
            suspicion = _Suspicion(since=self.sim.now)
            self.suspects[node] = suspicion
            self.suspicions += 1
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now, "ft", "suspicion_opened", COORDINATOR, suspect=node
                )
        return suspicion

    def has_quorum(self) -> bool:
        """Does the coordinator hear a majority of the current membership?

        Counts the peers heard within the suspicion timeout, plus
        itself, against the membership with confirmed-down nodes
        removed.  The denominator may only shrink through
        :meth:`mark_dead`, and every fence/recovery is itself gated on
        this check *first* — so a coordinator on the minority side of a
        partition can never fence the silent majority to vote itself a
        quorum: it loses the check before any membership change and
        stands down until the fabric heals.  Sequential failures, on the
        other hand, shrink the membership one confirmed step at a time
        and keep the surviving majority live.
        """
        now = self.sim.now
        members = [node for node in self.last_heard if node not in self.down]
        heard = sum(
            1
            for node in members
            if now - self.last_heard[node] <= self.suspicion_timeout_us
        )
        return (heard + 1) * 2 > len(members) + 1

    # -- coordinator processes --------------------------------------------

    def heartbeat_loop(self, node_id: int):
        """One node's heartbeat sender (cancelled when the node crashes)."""
        network = self.ft.cluster.network
        while self.ft.active:
            yield self.sim.timeout(self.config.heartbeat_period_us)
            if not self.ft.active:
                return
            self.heartbeats_sent += 1
            network.send(
                Message(
                    src=node_id,
                    dst=COORDINATOR,
                    kind=MessageKind.HEARTBEAT,
                    size_bytes=16,
                    reliable=False,
                )
            )

    def watch_loop(self):
        """The coordinator's suspicion clock (never cancelled)."""
        while self.ft.active:
            yield self.sim.timeout(self.config.heartbeat_period_us)
            if not self.ft.active:
                return
            yield from self.ft.membership_tick(self._collect_dead())

    def _collect_dead(self) -> list[int]:
        """Mature the suspicion records; return confirmed deaths.

        A node is confirmed dead only when all three hold at once: it is
        silent beyond ``suspicion_timeout_us``, its suspicion has aged
        ``suspicion_ttl_us``, and at least ``suspicion_quorum`` distinct
        reporters vouch (the coordinator's own silence observation is a
        reporter).
        """
        now = self.sim.now
        config = self.config
        dead = []
        for node in range(self.num_nodes):
            if node == COORDINATOR or node in self.down:
                continue
            silent = now - self.last_heard[node] > self.suspicion_timeout_us
            if not silent:
                continue
            suspicion = self._suspect(node)
            suspicion.reporters.add(COORDINATOR)
            if (
                now - suspicion.since >= config.suspicion_ttl_us
                and len(suspicion.reporters) >= config.suspicion_quorum
            ):
                dead.append(node)
        return dead

    # -- state maintenance -------------------------------------------------

    def mark_dead(self, node: int) -> None:
        self.down.add(node)
        self.suspects.pop(node, None)

    def mark_alive(self, node: int) -> None:
        self.down.discard(node)
        self.suspects.pop(node, None)
        if node != COORDINATOR:
            self.last_heard[node] = self.sim.now

    def reset_liveness(self) -> None:
        """Post-rollback: every node just restarted, silence clocks reset."""
        now = self.sim.now
        for node in self.last_heard:
            self.last_heard[node] = now
        self.suspects.clear()

    # -- membership views ---------------------------------------------------

    def handle_membership(self, node_id: int, msg: Message) -> None:
        if msg.kind is MessageKind.FT_DOWN:
            self.views[node_id].add(msg.payload["node"])
        elif msg.kind is MessageKind.FT_UP:
            self.views[node_id].discard(msg.payload["node"])
        elif msg.kind is MessageKind.FT_REJOIN:
            # The healed node adopts the coordinator's membership
            # wholesale: everything it believed during the partition is
            # stale by construction.
            self.views[node_id] = set(msg.payload["down"])
