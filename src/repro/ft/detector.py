"""Heartbeat-based crash-stop failure detection.

Node 0 (which already hosts the barrier manager) doubles as the
*coordinator*: every other node sends it a small unreliable heartbeat
datagram each ``heartbeat_period_us``, and the coordinator declares a
node dead after ``suspicion_timeout_us`` of silence.  Two refinements
keep the detector cheap and fast:

- **Piggybacking** — *any* message delivered to the coordinator counts
  as evidence its sender is alive (hooked via ``Node.message_observer``),
  so heartbeats only fill silences in regular traffic.
- **Retry-exhaustion routing** — when a node's reliable transport gives
  up on a peer (``on_give_up``), the peer is reported to the detector
  instead of crashing the run; the coordinator treats the report as an
  immediate suspicion rather than waiting out the silence.

Membership agreement is broadcast: on declaring a death the coordinator
sends every survivor an ``FT_DOWN`` message, and recovery closes with an
``FT_UP``.  Each node's view of the membership is tracked per node (the
cluster-wide agreement the recovery protocol needs); the coordinator's
own view is authoritative for rollback decisions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ft.config import FtConfig
from repro.network.message import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ft.manager import FtManager

__all__ = ["FailureDetector", "COORDINATOR"]

#: The failure-detection coordinator (co-located with the barrier
#: manager, which is why crashing node 0 is rejected).
COORDINATOR = 0


class FailureDetector:
    """Coordinator-side liveness tracking plus per-node membership views."""

    def __init__(self, ft: "FtManager", config: FtConfig) -> None:
        self.ft = ft
        self.config = config
        self.sim = ft.sim
        self.num_nodes = ft.num_nodes
        #: Last time the coordinator heard *anything* from each node.
        self.last_heard: dict[int, float] = {
            n: 0.0 for n in range(self.num_nodes) if n != COORDINATOR
        }
        #: Nodes reported by a transport after exhausting its retries.
        self._exhausted: set[int] = set()
        #: Nodes the coordinator currently considers dead.
        self.down: set[int] = set()
        #: Per-node membership views, updated by FT_DOWN/FT_UP delivery.
        self.views: dict[int, set[int]] = {n: set() for n in range(self.num_nodes)}
        # statistics
        self.heartbeats_sent = 0
        self.suspicions = 0

    # -- evidence sources -------------------------------------------------

    def observe(self, dst_node: int, message: Message) -> None:
        """``Node.message_observer`` hook: delivered traffic is liveness."""
        if dst_node == COORDINATOR and message.src != COORDINATOR:
            self.last_heard[message.src] = self.sim.now

    def on_give_up(self, reporter: int, dst: int, message: Message) -> None:
        """A transport exhausted its retries against ``dst``."""
        if dst == COORDINATOR or dst in self.down:
            return
        self._exhausted.add(dst)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "ft",
                "suspicion_reported",
                reporter,
                suspect=dst,
                kind=message.kind.value,
            )

    # -- coordinator processes --------------------------------------------

    def heartbeat_loop(self, node_id: int):
        """One node's heartbeat sender (cancelled when the node crashes)."""
        network = self.ft.cluster.network
        while self.ft.active:
            yield self.sim.timeout(self.config.heartbeat_period_us)
            if not self.ft.active:
                return
            self.heartbeats_sent += 1
            network.send(
                Message(
                    src=node_id,
                    dst=COORDINATOR,
                    kind=MessageKind.HEARTBEAT,
                    size_bytes=16,
                    reliable=False,
                )
            )

    def watch_loop(self):
        """The coordinator's suspicion clock (never cancelled)."""
        while self.ft.active:
            yield self.sim.timeout(self.config.heartbeat_period_us)
            if not self.ft.active:
                return
            dead = self._collect_dead()
            if dead:
                yield from self.ft.recover(dead)

    def _collect_dead(self) -> list[int]:
        now = self.sim.now
        dead = []
        for node in range(self.num_nodes):
            if node == COORDINATOR or node in self.down:
                continue
            silent = now - self.last_heard[node] > self.config.suspicion_timeout_us
            if silent or node in self._exhausted:
                self.suspicions += 1
                dead.append(node)
        return dead

    # -- state maintenance -------------------------------------------------

    def mark_dead(self, node: int) -> None:
        self.down.add(node)
        self._exhausted.discard(node)

    def mark_alive(self, node: int) -> None:
        self.down.discard(node)
        self._exhausted.discard(node)
        if node != COORDINATOR:
            self.last_heard[node] = self.sim.now

    def reset_liveness(self) -> None:
        """Post-rollback: every node just restarted, silence clocks reset."""
        now = self.sim.now
        for node in self.last_heard:
            self.last_heard[node] = now
        self._exhausted.clear()

    # -- membership views ---------------------------------------------------

    def handle_membership(self, node_id: int, msg: Message) -> None:
        if msg.kind is MessageKind.FT_DOWN:
            self.views[node_id].add(msg.payload["node"])
        elif msg.kind is MessageKind.FT_UP:
            self.views[node_id].discard(msg.payload["node"])
