"""Crash execution, coordinated checkpointing, and recovery.

The :class:`FtManager` is the runtime's fault-tolerance brain.  It

- executes the :class:`~repro.network.faults.NodeCrash` schedule: at the
  crash instant the node's links go silent (``Network.mark_down``) and
  every simulation process it owns — message handlers, in-flight
  fetches, its scheduler, its heartbeat sender — is cancelled as a
  group, freezing its threads mid-flight;
- takes **coordinated checkpoints** at barrier cuts.  The barrier
  manager calls in at the one globally quiescent instant (final arrival
  counted, release not yet sent); the manager snapshots every node's
  protocol state, transport state, and thread input logs into the
  in-simulation checkpoint store;
- runs the **membership state machine**: a confirmed suspicion first
  *fences* the node (``FT_DOWN``, data-plane traffic rejected both ways
  at the network while acks/heartbeats/membership still flow).  If the
  node then shows evidence of life — a partition healed, a stall ended —
  it *rejoins*: unfenced, announced back (``FT_UP`` to the survivors,
  ``FT_REJOIN`` to the node), and every message the transports had
  given up on is revived.  That is the whole re-sync: the LRC protocol
  pulls state lazily, and no barrier completed without the node, so
  nothing else was missed.  Only when ``partition_grace_us`` expires
  with no sign of life is the node treated as crashed for real;
- drives **recovery**: after the restart delay the coordinator rolls
  *every* node back to the last checkpoint (a new cluster incarnation
  fences all in-flight traffic of the discarded execution), replays the
  barrier release fan-out — which re-delivers exactly the write notices
  each node was missing — and announces recovery (``FT_UP``).
- guards the **checkpoint cut**: a cut is refused while any node is
  fenced or the coordinator lacks a quorum of recently-heard peers — a
  committed checkpoint must never span a split brain.  A coordinator
  stranded in a minority partition therefore stands down: it neither
  fences the (healthy) majority nor moves the rollback target.

Determinism: the rollback restores protocol state byte-for-byte and
rebuilds threads by replaying their logged inputs, so a run with a given
``(seed, crash plan)`` is exactly reproducible, and the post-recovery
execution computes the same application result as a fault-free run.
"""

from __future__ import annotations

import contextlib
import copy
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import CheckpointError, ConfigError, FailureError
from repro.ft.checkpoint import ClusterCheckpoint, NodeCheckpoint
from repro.ft.config import FtConfig
from repro.ft.detector import COORDINATOR, FailureDetector
from repro.metrics.counters import Category
from repro.network.message import Message, MessageKind
from repro.sim import spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.runtime import DsmRuntime

__all__ = ["FtManager"]

#: Payload bytes of a membership announcement.
_ANNOUNCE_BYTES = 32


class FtManager:
    """Owns crash injection, the checkpoint store, and recovery."""

    def __init__(self, runtime: "DsmRuntime", config: FtConfig) -> None:
        self.runtime = runtime
        self.config = config
        self.cluster = runtime.cluster
        self.sim = runtime.cluster.sim
        self.num_nodes = runtime.cluster.num_nodes
        self.detector = FailureDetector(self, config)
        #: Most recent coordinated checkpoint (rollback target).
        self.checkpoint: Optional[ClusterCheckpoint] = None
        self._barrier_count = 0
        self._crash_time: dict[int, float] = {}
        #: When each currently fenced node was fenced (drives the
        #: rejoin-evidence comparison and the partition grace clock).
        self.fenced_at: dict[int, float] = {}
        self._program = None
        # run statistics (surface in RunReport.extra["ft"])
        self.crashes = 0
        self.detections = 0
        self.recoveries = 0
        self.fences = 0
        self.rejoins = 0
        self.stand_downs = 0
        self.checkpoints = 0
        self.checkpoints_stood_down = 0
        self.split_brain_checkpoints = 0
        self.checkpoint_bytes = 0
        self.messages_revived = 0
        self.downtime_us = 0.0
        self.recovery_us = 0.0

        plan = self.cluster.fault_plan
        crash_schedule = plan.crashes if plan is not None else ()
        for crash in crash_schedule:
            if crash.node == COORDINATOR:
                raise FailureError(
                    "node 0 cannot crash: it hosts the barrier manager "
                    "and the failure-detection coordinator"
                )
            if not 0 <= crash.node < self.num_nodes:
                raise ConfigError(
                    f"crash schedules unknown node {crash.node} "
                    f"(cluster has {self.num_nodes})"
                )
        self._crash_schedule = crash_schedule

        # Wire into the stack.
        for dsm in runtime.dsm_nodes:
            dsm.ft = self
        coordinator = self.cluster.nodes[COORDINATOR]
        coordinator.message_observer = (
            lambda msg: self.detector.observe(COORDINATOR, msg)
        )
        for transport in self.cluster.transports:
            reporter = transport.node.node_id
            transport.on_give_up = (
                lambda dst, msg, _src=reporter: self.detector.on_give_up(_src, dst, msg)
            )
        if self.cluster.transports and self.cluster.transports[0].adaptive:
            # Suspicion must key off when transports actually stop
            # trying.  The adaptive give-up is a wall deadline
            # (give_up_us), not the static retry ladder the configured
            # suspicion timeout was calibrated against — a node silent
            # for less than the give-up deadline may simply be behind a
            # congested link the transports are still probing.
            self.detector.suspicion_timeout_us = max(
                config.suspicion_timeout_us,
                self.cluster.transports[0].config.give_up_us,
            )
        for scheduler in runtime.schedulers:
            scheduler.record_values = True

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while any node's workload is unfinished."""
        return any(s.finished_at is None for s in self.runtime.schedulers)

    def start(self, program) -> None:
        """Take the initial checkpoint, arm the crash schedule, and
        spawn the detection processes.

        Called by the runtime after ``setup`` and thread creation, right
        before the schedulers start: an early crash then has a rollback
        target (the pristine cluster).
        """
        self._program = program
        self.take_initial_checkpoint()
        for crash in self._crash_schedule:
            self.sim.schedule(crash.at_us, self._crash_node, crash.node)
        self._spawn_heartbeats()
        spawn(self.sim, self.detector.watch_loop(), name="ft.watch", group="ft", daemon=True)

    def _spawn_heartbeats(self) -> None:
        for node_id in range(self.num_nodes):
            if node_id == COORDINATOR:
                continue
            spawn(
                self.sim,
                self.detector.heartbeat_loop(node_id),
                name=f"ft.heartbeat[{node_id}]",
                group=f"node{node_id}",
                daemon=True,
            )

    # -- crash execution ---------------------------------------------------

    def _crash_node(self, node_id: int) -> None:
        """The crash instant: silence the links, cancel the node's work."""
        network = self.cluster.network
        if not self.active or network.is_down(node_id):
            return
        now = self.sim.now
        self.crashes += 1
        self._crash_time[node_id] = now
        network.mark_down(node_id)
        cancelled = self.sim.cancel_group(f"node{node_id}")
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                now, "ft", "crash", node_id, cancelled_processes=cancelled
            )

    # -- membership state machine ------------------------------------------

    def membership_tick(self, dead: list):
        """One watch-loop tick of the membership state machine.

        ``dead`` are the detector's newly matured suspicions.  They are
        *fenced*, not executed: a fenced node that speaks again (the
        partition healed, the stall ended) rejoins with a targeted
        re-sync, and only a fence left silent past
        ``partition_grace_us`` becomes a real recovery.  Everything is
        gated on the coordinator holding a quorum — stranded in a
        minority partition it stands down and waits for the heal
        instead of fencing the healthy majority.
        """
        if (dead or self.fenced_at) and not self.detector.has_quorum():
            self.stand_downs += 1
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "ft",
                    "stand_down",
                    COORDINATOR,
                    pending=sorted(dead),
                    fenced=sorted(self.fenced_at),
                )
            return
        for node_id in dead:
            self.fence(node_id)
        if self.config.split_brain_bug and self.fenced_at:
            # The seeded bug the chaos harness must catch: the barrier
            # manager treats fenced nodes as arrived, completing
            # barriers — and committing checkpoint cuts — without them.
            barriers = self.runtime.dsm_nodes[COORDINATOR].barriers
            yield from barriers.bug_release_without(set(self.fenced_at))
        now = self.sim.now
        healed = [
            node_id
            for node_id, at in sorted(self.fenced_at.items())
            if self.detector.last_heard[node_id] > at
        ]
        for node_id in healed:
            self._rejoin(node_id)
        expired = [
            node_id
            for node_id, at in sorted(self.fenced_at.items())
            if now - at >= self.config.partition_grace_us
        ]
        if expired:
            yield from self.recover(expired)

    def fence(self, node_id: int) -> None:
        """Remove a confirmed suspect from the membership — reversibly.

        The network rejects the suspect's data-plane traffic in both
        directions (its writes must not leak into the cluster, nor the
        cluster's into it) while acks, heartbeats and membership
        messages still flow, so a partitioned-not-dead node can later
        prove it healed.  Survivors learn via ``FT_DOWN``.
        """
        network = self.cluster.network
        now = self.sim.now
        self.detections += 1
        self.fences += 1
        self.fenced_at[node_id] = now
        self.detector.mark_dead(node_id)
        network.fence_node(node_id)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                now,
                "ft",
                "fence",
                COORDINATOR,
                suspect=node_id,
                latency_us=now - self._crash_time.get(node_id, now),
            )
        for peer in range(self.num_nodes):
            if peer == COORDINATOR or peer == node_id:
                continue
            network.send(
                Message(
                    src=COORDINATOR,
                    dst=peer,
                    kind=MessageKind.FT_DOWN,
                    size_bytes=_ANNOUNCE_BYTES,
                    payload={"node": node_id},
                    reliable=False,
                )
            )

    def _rejoin(self, node_id: int) -> None:
        """A fenced node spoke after its fencing: take it back.

        The fence is lifted, the survivors are told (``FT_UP``), the
        node gets the authoritative membership (``FT_REJOIN``), and
        every message any transport had given up on involving it is put
        back in flight.  That revival *is* the state re-sync: LRC pulls
        data lazily and no barrier completed without the node, so the
        retried traffic is exactly what it missed.
        """
        network = self.cluster.network
        now = self.sim.now
        self.rejoins += 1
        fenced_for = now - self.fenced_at.pop(node_id)
        network.unfence_node(node_id)
        self.detector.mark_alive(node_id)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                now,
                "ft",
                "rejoin",
                COORDINATOR,
                node=node_id,
                fenced_us=round(fenced_for, 3),
            )
        for peer in range(self.num_nodes):
            if peer == COORDINATOR or peer == node_id:
                continue
            network.send(
                Message(
                    src=COORDINATOR,
                    dst=peer,
                    kind=MessageKind.FT_UP,
                    size_bytes=_ANNOUNCE_BYTES,
                    payload={"node": node_id},
                    reliable=False,
                )
            )
        network.send(
            Message(
                src=COORDINATOR,
                dst=node_id,
                kind=MessageKind.FT_REJOIN,
                size_bytes=_ANNOUNCE_BYTES,
                payload={"down": sorted(self.detector.down)},
                reliable=False,
            )
        )
        transports = self.cluster.transports
        if transports:
            for transport in transports:
                if transport.node.node_id == node_id:
                    self.messages_revived += transport.revive_all()
                else:
                    self.messages_revived += transport.revive(node_id)

    # -- checkpointing -----------------------------------------------------

    def wants_checkpoint(self, barrier_id: int, episode: int) -> bool:
        """Barrier-manager callback at each complete global arrival."""
        self._barrier_count += 1
        return self._barrier_count % self.config.checkpoint_every == 0

    def take_initial_checkpoint(self) -> None:
        """Checkpoint the pristine cluster before the schedulers start.

        A crash before the first barrier then rolls back to a fresh
        start.  Taken at t=0 outside any process, so the stable-storage
        cost is not modelled (it overlaps application startup).
        """
        zero_vcs = [[0] * self.num_nodes for _ in range(self.num_nodes)]
        self.checkpoint = self._build_checkpoint("initial", -1, -1, zero_vcs)

    def coordinated_checkpoint(self, barrier_id: int, episode: int, node_vcs: dict):
        """Snapshot every node at the barrier cut (runs in the manager's
        arrival handler, before the release fan-out).

        The checkpoint is built — and installed as the rollback target —
        *synchronously*, before its CPU cost elapses: a crash landing
        inside the cost window must still find the new checkpoint valid,
        because the cut it captures precedes the crash.

        The cut is *refused* while any node is fenced or the coordinator
        lacks a quorum: a committed checkpoint must never span a split
        brain.  Refusal keeps the previous rollback target; the barrier
        release proceeds and the next clean barrier checkpoints.  (The
        seeded ``split_brain_bug`` skips this guard so the chaos
        harness has something to catch.)
        """
        if self.fenced_at or not self.detector.has_quorum():
            if not self.config.split_brain_bug:
                self.checkpoints_stood_down += 1
                if self.sim.trace_on:
                    tr = self.sim.trace
                    tr.instant(
                        self.sim.now,
                        "ft",
                        "checkpoint_stood_down",
                        COORDINATOR,
                        barrier=barrier_id,
                        episode=episode,
                        fenced=sorted(self.fenced_at),
                    )
                return
            if self.fenced_at:
                self.split_brain_checkpoints += 1
        # Under the seeded bug a fenced node never arrived, so its vc is
        # missing from the cut; the buggy coordinator snapshots the
        # node's *current* (mid-flight, inconsistent) clock instead.
        vcs = [
            list(node_vcs[n])
            if n in node_vcs
            else list(self.runtime.dsm_nodes[n].vc.snapshot())
            for n in range(self.num_nodes)
        ]
        ckpt = self._build_checkpoint("barrier", barrier_id, episode, vcs)
        self.checkpoint = ckpt
        self.checkpoints += 1
        self.checkpoint_bytes += ckpt.size_bytes
        tr = self.sim.trace
        now = self.sim.now
        if tr.enabled:
            tr.instant(
                now,
                "ft",
                "checkpoint",
                COORDINATOR,
                barrier=barrier_id,
                episode=episode,
                bytes=ckpt.size_bytes,
            )
        max_cost = 0.0
        for node_ckpt in ckpt.nodes:
            cost = self.config.checkpoint_cpu_per_byte * node_ckpt.size_bytes
            if cost <= 0:
                continue
            node = self.cluster.nodes[node_ckpt.node_id]
            node.breakdown.charge(Category.CHECKPOINT, cost)
            if tr.enabled:
                tr.slice(now, cost, "cpu", Category.CHECKPOINT.value, node_ckpt.node_id)
            max_cost = max(max_cost, cost)
        if max_cost > 0:
            # Every node writes its snapshot in parallel; the barrier
            # release waits for the slowest writer.
            yield self.sim.timeout(max_cost)

    def _build_checkpoint(
        self, kind: str, barrier_id: int, episode: int, node_vcs: list
    ) -> ClusterCheckpoint:
        ckpt = ClusterCheckpoint(
            kind=kind,
            barrier_id=barrier_id,
            episode=episode,
            taken_at=self.sim.now,
            node_vcs=node_vcs,
            program_local=copy.deepcopy(self._program.snapshot_local()),
        )
        transports = self.cluster.transports
        for node_id in range(self.num_nodes):
            dsm = self.runtime.dsm_nodes[node_id]
            scheduler = self.runtime.schedulers[node_id]
            thread_logs = [
                (
                    t.tid,
                    [v.copy() if isinstance(v, np.ndarray) else v for v in t.value_log],
                )
                for t in scheduler.threads
            ]
            ckpt.nodes.append(
                NodeCheckpoint(
                    node_id=node_id,
                    dsm=dsm.snapshot_state(),
                    transport=transports[node_id].snapshot_state() if transports else None,
                    thread_logs=thread_logs,
                )
            )
        return ckpt

    # -- recovery ----------------------------------------------------------

    def recover(self, dead: list):
        """Final verdict → coordinated rollback → resume.

        Runs in the coordinator's watch loop (group ``ft``, which the
        rollback never cancels).  The nodes arrive here already fenced
        — detection accounting and the ``FT_DOWN`` broadcast happened
        in :meth:`fence` — with their partition grace expired: the
        membership layer has given up on a heal.  Several fences
        expiring in one tick recover together in a single rollback.
        """
        ckpt = self.checkpoint
        if ckpt is None:  # pragma: no cover - start() guarantees one
            raise CheckpointError("failure detected with no checkpoint to roll back to")
        sim = self.sim
        network = self.cluster.network
        tr = sim.trace
        t_detect = sim.now
        for node_id in dead:
            network.unfence_node(node_id)
            self.fenced_at.pop(node_id, None)
            self.detector.mark_dead(node_id)
            if tr.enabled:
                tr.instant(
                    t_detect,
                    "ft",
                    "declare_dead",
                    COORDINATOR,
                    node=node_id,
                    latency_us=t_detect - self._crash_time.get(node_id, t_detect),
                )
        # Reboot + rejoin of the crashed machines.
        yield sim.timeout(self.config.restart_delay_us)
        t_rollback = sim.now
        if tr.enabled:
            tr.instant(
                t_rollback,
                "ft",
                "recover",
                COORDINATOR,
                nodes=list(dead),
                checkpoint=ckpt.kind,
                barrier=ckpt.barrier_id,
                episode=ckpt.episode,
            )
        self._rollback(ckpt, dead, t_rollback)
        # The slowest node's state restore gates the resume.
        max_cost = 0.0
        for node_ckpt in ckpt.nodes:
            cost = self.config.restore_cpu_per_byte * node_ckpt.size_bytes
            if cost <= 0:
                continue
            node = self.cluster.nodes[node_ckpt.node_id]
            node.breakdown.charge(Category.RECOVERY, cost)
            self.recovery_us += cost
            if tr.enabled:
                tr.slice(t_rollback, cost, "cpu", Category.RECOVERY.value, node_ckpt.node_id)
            max_cost = max(max_cost, cost)
        if max_cost > 0:
            yield sim.timeout(max_cost)
        # Detection state: everyone just restarted, all silence excused.
        self._spawn_heartbeats()
        self.detector.reset_liveness()
        for node_id in dead:
            self.detector.mark_alive(node_id)
            for peer in range(self.num_nodes):
                if peer == COORDINATOR or peer == node_id:
                    continue
                network.send(
                    Message(
                        src=COORDINATOR,
                        dst=peer,
                        kind=MessageKind.FT_UP,
                        size_bytes=_ANNOUNCE_BYTES,
                        payload={"node": node_id},
                        reliable=False,
                    )
                )
        self.recoveries += 1
        if ckpt.kind == "barrier":
            # Replay the barrier release fan-out from the cut: every node
            # re-receives exactly the write notices it was missing.
            barriers = self.runtime.dsm_nodes[COORDINATOR].barriers
            spawn(
                sim,
                barriers.resume_release(ckpt.barrier_id, ckpt.episode),
                name="ft.resume_release",
                group=f"node{COORDINATOR}",
            )

    def _rollback(self, ckpt: ClusterCheckpoint, dead: list, t_rollback: float) -> None:
        """Rewind the whole cluster to the checkpoint cut (synchronous)."""
        sim = self.sim
        network = self.cluster.network
        tr = sim.trace
        # New incarnation first: anything still in flight — including
        # deliveries scheduled for this very timestamp — belongs to the
        # discarded execution and must be fenced out.
        network.incarnation += 1
        for node_id in dead:
            network.mark_up(node_id)
        # Silence every node's in-flight work before touching state: a
        # cancelled handler's ``finally`` must not run protocol code
        # against half-restored structures (two-phase, see cancel_groups).
        sim.cancel_groups([f"node{n}" for n in range(self.num_nodes)])
        transports = self.cluster.transports
        if sim.sanitizer_on:
            sanitizer = sim.sanitizer
            # Interval ceilings rewind to each node's vc at the cut as
            # *snapshotted* — not the vcs the barrier arrivals carried: a
            # node can close one more interval after its own arrival
            # (serving a mid-interval flush) and before the cut.
            sanitizer.on_rollback([list(nc.dsm["vc"]) for nc in ckpt.nodes])
        for node_ckpt in ckpt.nodes:
            node_id = node_ckpt.node_id
            node = self.cluster.nodes[node_id]
            scheduler = self.runtime.schedulers[node_id]
            # Close the discarded threads' generators *now*, while the
            # CPU resource they may hold is still the old one: a GC-time
            # close would run ``occupy``'s release against the fresh
            # (idle) resource and die noisily.
            for stale in scheduler.threads:
                if stale.op_continuation is not None:
                    with contextlib.suppress(Exception):
                        stale.op_continuation.close()
                with contextlib.suppress(Exception):
                    stale.body.close()
            node.reset_cpu()
            self.runtime.dsm_nodes[node_id].restore_state(node_ckpt.dsm)
            if transports:
                transports[node_id].restore_state(node_ckpt.transport)
            if self.runtime.prefetch_engines:
                self.runtime.prefetch_engines[node_id].reset_volatile()
            # Downtime: the crashed machine was dead from the crash
            # instant until this resume.  (Survivor idle between the
            # crash and the rollback is uncharged — their schedulers
            # were cancelled mid-measurement; see README.)
            if node_id in self._crash_time:
                down = t_rollback - self._crash_time[node_id]
                node.breakdown.charge(Category.DOWNTIME, down)
                self.downtime_us += down
                if tr.enabled:
                    tr.slice(
                        self._crash_time[node_id],
                        down,
                        "cpu",
                        Category.DOWNTIME.value,
                        node_id,
                    )
                del self._crash_time[node_id]
            # Rebuild the threads from fresh bodies + logged inputs.
            threads = [
                scheduler.rebuild_thread(
                    tid, self._program.thread_body(self.runtime, tid), values
                )
                for tid, values in node_ckpt.thread_logs
            ]
            scheduler.restart(threads)
        # Program-level node-local state LAST: the replays above re-ran
        # the bodies' local mutations (double-applying accumulations);
        # reinstalling the checkpointed copy discards those re-runs.  A
        # fresh deep copy each time keeps the stored checkpoint pristine
        # for a possible second rollback to the same cut.
        self._program.restore_local(copy.deepcopy(ckpt.program_local))

    # -- message plumbing --------------------------------------------------

    def handle_message(self, node_id: int, msg: Message):
        """DSM dispatch route for HEARTBEAT / FT_DOWN / FT_UP / FT_REJOIN.

        Heartbeat liveness is already absorbed by the coordinator's
        ``message_observer`` before any handler runs; membership
        announcements update the receiving node's view.
        """
        if msg.kind in (MessageKind.FT_DOWN, MessageKind.FT_UP, MessageKind.FT_REJOIN):
            self.detector.handle_membership(node_id, msg)
        return
        yield  # pragma: no cover - makes this a generator for dispatch

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """Fault-tolerance facts for ``RunReport.extra['ft']``."""
        return {
            "crashes": self.crashes,
            "detections": self.detections,
            "recoveries": self.recoveries,
            "fences": self.fences,
            "rejoins": self.rejoins,
            "stand_downs": self.stand_downs,
            "suspicions": self.detector.suspicions,
            "suspicions_cleared": self.detector.suspicions_cleared,
            "checkpoints": self.checkpoints,
            "checkpoints_stood_down": self.checkpoints_stood_down,
            "split_brain_checkpoints": self.split_brain_checkpoints,
            "checkpoint_bytes": self.checkpoint_bytes,
            "messages_revived": self.messages_revived,
            "heartbeats": self.detector.heartbeats_sent,
            "downtime_us": round(self.downtime_us, 3),
            "recovery_us": round(self.recovery_us, 3),
        }
