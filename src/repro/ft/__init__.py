"""Fault tolerance for the DSM: crash-stop failures, failure detection,
coordinated barrier-epoch checkpointing, recovery, and the protocol
invariant sanitizer.

The package layers *above* the message-level fault injection in
:mod:`repro.network.faults`: that module loses and delays messages, this
one loses whole machines.  See ``README.md`` (Fault tolerance) for the
model.
"""

from repro.ft.checkpoint import ClusterCheckpoint, NodeCheckpoint
from repro.ft.config import FtConfig
from repro.ft.detector import FailureDetector
from repro.ft.manager import FtManager
from repro.ft.sanitizer import NULL_SANITIZER, NullSanitizer, ProtocolSanitizer

__all__ = [
    "ClusterCheckpoint",
    "FailureDetector",
    "FtConfig",
    "FtManager",
    "NodeCheckpoint",
    "NULL_SANITIZER",
    "NullSanitizer",
    "ProtocolSanitizer",
]
