"""Configuration for the fault-tolerance layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["FtConfig"]


@dataclass(frozen=True)
class FtConfig:
    """Knobs for failure detection, checkpointing, and recovery.

    The defaults are deliberately aggressive relative to the transport's
    retry budget (first timeout 10 ms, exponential backoff): a heartbeat
    every 5 ms with a 50 ms suspicion timeout detects a crash long
    before any retransmit sequence gives up.
    """

    #: Period of each node's heartbeat datagram to the coordinator.
    heartbeat_period_us: float = 5_000.0
    #: Silence (no message of any kind — heartbeats piggyback on regular
    #: traffic) after which the coordinator opens a suspicion.
    suspicion_timeout_us: float = 50_000.0
    #: How long a suspicion must age, with the suspect still silent,
    #: before it is confirmed.  The grace period that lets a slow or
    #: briefly partitioned node talk its way out of a false death.
    suspicion_ttl_us: float = 25_000.0
    #: Distinct reporters (transport give-ups; the coordinator's own
    #: silence observation counts) required to confirm a suspicion.
    suspicion_quorum: int = 1
    #: How long a fenced node may stay fenced awaiting a partition heal
    #: before the coordinator gives up and rolls the cluster back.
    partition_grace_us: float = 100_000.0
    #: TEST-ONLY: plant the split-brain bug the chaos harness must
    #: catch — the barrier manager treats fenced nodes as arrived
    #: (completing barriers without them) and the checkpoint stand-down
    #: guard is skipped, so a cut spanning the membership split can
    #: commit.  Never enable outside the chaos/invariant tests.
    split_brain_bug: bool = False
    #: Take a coordinated checkpoint every Nth global barrier release.
    checkpoint_every: int = 1
    #: Delay between declaring a node dead and restarting the cluster
    #: from the checkpoint (models reboot + rejoin).
    restart_delay_us: float = 20_000.0
    #: CPU cost per byte snapshotted at a checkpoint (models copying
    #: pages/twins/diffs to stable storage).
    checkpoint_cpu_per_byte: float = 0.0005
    #: CPU cost per byte restored during recovery.
    restore_cpu_per_byte: float = 0.001

    def __post_init__(self) -> None:
        if self.heartbeat_period_us <= 0:
            raise ConfigError(f"heartbeat period must be positive, got {self.heartbeat_period_us}")
        if self.suspicion_timeout_us <= 2 * self.heartbeat_period_us:
            raise ConfigError(
                "suspicion timeout must exceed two heartbeat periods "
                f"({self.suspicion_timeout_us} vs {self.heartbeat_period_us})"
            )
        if self.suspicion_ttl_us < 0:
            raise ConfigError(f"suspicion_ttl_us must be >= 0, got {self.suspicion_ttl_us}")
        if self.suspicion_quorum < 1:
            raise ConfigError(f"suspicion_quorum must be >= 1, got {self.suspicion_quorum}")
        if self.partition_grace_us < 0:
            raise ConfigError(
                f"partition_grace_us must be >= 0, got {self.partition_grace_us}"
            )
        if self.checkpoint_every < 1:
            raise ConfigError(f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        if self.restart_delay_us < 0:
            raise ConfigError(f"restart delay must be >= 0, got {self.restart_delay_us}")
        if self.checkpoint_cpu_per_byte < 0 or self.restore_cpu_per_byte < 0:
            raise ConfigError("checkpoint/restore costs must be >= 0")
