"""Configuration for the fault-tolerance layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["FtConfig"]


@dataclass(frozen=True)
class FtConfig:
    """Knobs for failure detection, checkpointing, and recovery.

    The defaults are deliberately aggressive relative to the transport's
    retry budget (first timeout 10 ms, exponential backoff): a heartbeat
    every 5 ms with a 50 ms suspicion timeout detects a crash long
    before any retransmit sequence gives up.
    """

    #: Period of each node's heartbeat datagram to the coordinator.
    heartbeat_period_us: float = 5_000.0
    #: Silence (no message of any kind — heartbeats piggyback on regular
    #: traffic) after which the coordinator declares a node dead.
    suspicion_timeout_us: float = 50_000.0
    #: Take a coordinated checkpoint every Nth global barrier release.
    checkpoint_every: int = 1
    #: Delay between declaring a node dead and restarting the cluster
    #: from the checkpoint (models reboot + rejoin).
    restart_delay_us: float = 20_000.0
    #: CPU cost per byte snapshotted at a checkpoint (models copying
    #: pages/twins/diffs to stable storage).
    checkpoint_cpu_per_byte: float = 0.0005
    #: CPU cost per byte restored during recovery.
    restore_cpu_per_byte: float = 0.001

    def __post_init__(self) -> None:
        if self.heartbeat_period_us <= 0:
            raise ConfigError(f"heartbeat period must be positive, got {self.heartbeat_period_us}")
        if self.suspicion_timeout_us <= 2 * self.heartbeat_period_us:
            raise ConfigError(
                "suspicion timeout must exceed two heartbeat periods "
                f"({self.suspicion_timeout_us} vs {self.heartbeat_period_us})"
            )
        if self.checkpoint_every < 1:
            raise ConfigError(f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        if self.restart_delay_us < 0:
            raise ConfigError(f"restart delay must be >= 0, got {self.restart_delay_us}")
        if self.checkpoint_cpu_per_byte < 0 or self.restore_cpu_per_byte < 0:
            raise ConfigError("checkpoint/restore costs must be >= 0")
