"""Regression gate: ``python -m repro.profile.compare OLD NEW``.

Diffs two machine-readable result files — either single
:class:`~repro.metrics.report.RunReport` JSONs or multi-run
``BENCH_*.json`` files from :mod:`repro.bench` — metric by metric, and
exits non-zero when NEW regresses past tolerance.  Every flattened
metric is "higher is worse" (times, stalls, message counts, drops,
violation counters), so a regression is simply::

    new > old * (1 + tolerance) and new - old > slack

The per-metric tolerance is chosen by first-match against ``--tol
PATTERN=FRACTION`` rules (fnmatch patterns over the flattened metric
name, e.g. ``--tol '*/p99'=0.5``), falling back to ``--tolerance``.
``slack`` is an absolute floor (``--slack``) so a 2 us jitter on a 1 us
metric is not a 200% regression.  A tolerance of ``-1`` skips the
metric entirely.  Metrics present on only one side are ``REMOVED``/
``ADDED``: regressions under an exact gate (tolerance 0 for that
metric), notes otherwise.

Exit codes: 0 no regressions, 1 regressions found, 2 usage/schema
error.  The simulation is deterministic, so CI can compare against a
checked-in baseline with loose tolerances and still catch real drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatchcase
from typing import Optional, TextIO

__all__ = ["flatten", "compare", "main"]

#: Sub-dict keys of a RunReport's profile histograms worth gating on.
_HIST_STATS = ("count", "mean", "p50", "p90", "p99", "max")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _flatten_profile(profile: dict, prefix: str, out: dict[str, float]) -> None:
    for name, entry in profile.get("histograms", {}).items():
        for stat in _HIST_STATS:
            if stat in entry:
                out[f"{prefix}hist.{name}.{stat}"] = float(entry[stat])
    for name, value in profile.get("counters", {}).items():
        out[f"{prefix}counter.{name}"] = float(value)


def _flatten_report(report: dict, prefix: str, out: dict[str, float]) -> None:
    for key in ("wall_time_us", "total_messages", "total_kbytes", "message_drops",
                "retransmissions"):
        if _is_number(report.get(key)):
            out[prefix + key] = float(report[key])
    totals: dict[str, float] = {}
    for breakdown in report.get("node_breakdowns", ()):
        for category, value in breakdown.items():
            totals[category] = totals.get(category, 0.0) + float(value)
    for category, value in totals.items():
        out[f"{prefix}time.{category}"] = value
    if isinstance(report.get("profile"), dict):
        _flatten_profile(report["profile"], prefix, out)


def flatten(data: dict) -> dict[str, float]:
    """A result file as a flat ``metric name -> value`` map.

    RunReport JSONs flatten to bare names (``wall_time_us``,
    ``time.busy``, ``hist.diff_rtt_us.p99``); bench files prefix each
    run's metrics with ``app/config/``.
    """
    out: dict[str, float] = {}
    if isinstance(data.get("runs"), list):  # repro.bench output
        for run in data["runs"]:
            prefix = f"{run['app']}/{run['config']}/"
            for name, value in run.get("metrics", {}).items():
                if _is_number(value):
                    out[prefix + name] = float(value)
            for hist_name, stats in run.get("quantiles", {}).items():
                for stat, value in stats.items():
                    out[f"{prefix}hist.{hist_name}.{stat}"] = float(value)
    elif "wall_time_us" in data:  # a single RunReport
        _flatten_report(data, "", out)
    else:
        raise ValueError("unrecognized result file (neither RunReport nor bench output)")
    return out


def _parse_tolerance_rules(rules: list[str]) -> list[tuple[str, float]]:
    parsed = []
    for rule in rules:
        pattern, _, fraction = rule.rpartition("=")
        if not pattern:
            raise ValueError(f"--tol rule must look like PATTERN=FRACTION, got {rule!r}")
        parsed.append((pattern, float(fraction)))
    return parsed


def _tolerance_for(name: str, rules: list[tuple[str, float]], default: float) -> float:
    for pattern, fraction in rules:
        if fnmatchcase(name, pattern):
            return fraction
    return default


def compare(
    old: dict[str, float],
    new: dict[str, float],
    tolerance: float = 0.0,
    rules: Optional[list[tuple[str, float]]] = None,
    slack: float = 0.0,
    out: TextIO = sys.stdout,
) -> int:
    """Print a diff of the shared metrics; return the regression count."""
    rules = rules or []
    regressions = 0
    improvements = 0
    unchanged = 0
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    for name in sorted(set(old) & set(new)):
        metric_tolerance = _tolerance_for(name, rules, tolerance)
        if metric_tolerance < 0:
            continue
        old_value, new_value = old[name], new[name]
        if new_value > old_value * (1.0 + metric_tolerance) and new_value - old_value > slack:
            base = old_value if old_value else 1.0
            print(
                f"REGRESSION {name}: {old_value:g} -> {new_value:g} "
                f"(+{100.0 * (new_value - old_value) / base:.1f}%, "
                f"tolerance {100.0 * metric_tolerance:.0f}%)",
                file=out,
            )
            regressions += 1
        elif new_value < old_value:
            improvements += 1
        else:
            unchanged += 1
    # One-sided metrics go through the same tolerance routing as shared
    # ones: under an exact gate (tolerance 0) a metric that appeared or
    # vanished IS a difference and fails; with any slop it is a note; a
    # negative tolerance skips it like any other metric.
    unmatched = 0
    for name, verdict in [(n, "REMOVED") for n in only_old] + [
        (n, "ADDED") for n in only_new
    ]:
        metric_tolerance = _tolerance_for(name, rules, tolerance)
        if metric_tolerance < 0:
            continue
        unmatched += 1
        if metric_tolerance == 0:
            which = "missing from NEW" if verdict == "REMOVED" else "new in NEW"
            print(f"{verdict} {name}: {which} (tolerance 0%)", file=out)
            regressions += 1
        else:
            side = "missing from NEW" if verdict == "REMOVED" else "new in NEW"
            print(f"note: metric {name} {side}", file=out)
    print(
        f"{regressions} regression(s), {improvements} improved, "
        f"{unchanged} within tolerance, {unmatched} unmatched",
        file=out,
    )
    return regressions


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile.compare",
        description="Diff two RunReport/bench JSON files; exit 1 on regression.",
    )
    parser.add_argument("old", help="baseline JSON (RunReport or BENCH_*.json)")
    parser.add_argument("new", help="candidate JSON of the same kind")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="default allowed relative growth, e.g. 0.1 = +10%% (default 0)",
    )
    parser.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="PATTERN=FRACTION",
        help="per-metric tolerance by fnmatch pattern, first match wins; "
        "FRACTION of -1 ignores the metric (repeatable)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.0,
        metavar="ABS",
        help="absolute growth below this is never a regression (default 0)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.old) as handle:
            old = flatten(json.load(handle))
        with open(args.new) as handle:
            new = flatten(json.load(handle))
        rules = _parse_tolerance_rules(args.tol)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not (set(old) & set(new)):
        print("error: no metrics in common between the two files", file=sys.stderr)
        return 2
    regressions = compare(old, new, tolerance=args.tolerance, rules=rules, slack=args.slack)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
