"""Trajectory tables across bench points: ``python -m repro.profile.trend``.

``repro.profile.compare`` answers "did NEW regress against OLD?" for
one pair of files; this module answers the longitudinal question — how
has each metric moved across *all* committed ``BENCH_*.json`` points?
Every file becomes one column (labelled from its ``created`` stamp,
falling back to the filename), every flattened metric one row, with the
net change over the whole span::

    python -m repro.profile.trend BENCH_*.json
    python -m repro.profile.trend --metric '*/wall_time_us' BENCH_*.json
    python -m repro.profile.trend --metric 'SOR/*/time.*' --out trend.tsv BENCH_*.json

Files are ordered as given on the command line (shell glob order is
lexicographic, which the date-stamped naming convention makes
chronological).  Metric names and selection reuse the flattening and
fnmatch vocabulary of :mod:`repro.profile.compare`, so the same
patterns work in both tools.  Exit codes: 0 rendered, 2 load/usage
errors (no metric matched, unreadable file, unrecognized schema).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from fnmatch import fnmatchcase
from typing import Optional, TextIO

from repro.profile.compare import flatten

__all__ = ["trend_table", "render_trend", "main"]


def _label(path: str, doc: dict) -> str:
    # The filename stamp wins: several points can share a ``created``
    # date (BENCH_2026-08-07, -07b, -07c) but filenames are unique.
    name = os.path.basename(path)
    if name.startswith("BENCH_"):
        return name[len("BENCH_") :].removesuffix(".json")
    created = doc.get("created")
    if isinstance(created, str) and created:
        return created.split("T")[0] if "T" in created else created
    return name


def trend_table(
    paths: list[str], patterns: Optional[list[str]] = None
) -> tuple[list[str], dict[str, list[Optional[float]]]]:
    """Load bench points into ``(column labels, metric -> value-per-point)``.

    A metric absent from some points gets ``None`` in those columns
    (metrics appear as the codebase grows sections; the trajectory of
    the overlap is still meaningful).
    """
    labels: list[str] = []
    flats: list[dict[str, float]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        labels.append(_label(path, doc))
        flats.append(flatten(doc))
    names: set[str] = set()
    for flat in flats:
        names.update(flat)
    if patterns:
        names = {
            name
            for name in names
            if any(fnmatchcase(name, pattern) for pattern in patterns)
        }
    table: dict[str, list[Optional[float]]] = {
        name: [flat.get(name) for flat in flats] for name in sorted(names)
    }
    return labels, table


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.2f}"


def render_trend(
    labels: list[str],
    table: dict[str, list[Optional[float]]],
    out: Optional[TextIO] = None,
    tsv: bool = False,
) -> None:
    """Render the trajectory table (aligned text, or TSV for tooling)."""
    out = out if out is not None else sys.stdout
    header = ["metric", *labels, "net"]
    rows: list[list[str]] = []
    for name, values in table.items():
        present = [value for value in values if value is not None]
        if len(present) >= 2 and present[0]:
            net = 100.0 * (present[-1] - present[0]) / abs(present[0])
            net_text = f"{net:+.1f}%"
        elif len(present) >= 2:
            net_text = f"{present[-1] - present[0]:+g}"
        else:
            net_text = "-"
        rows.append([name, *[_format_value(value) for value in values], net_text])
    if tsv:
        for row in [header, *rows]:
            print("\t".join(row), file=out)
        return
    widths = [
        max(len(row[column]) for row in [header, *rows])
        for column in range(len(header))
    ]
    print(
        "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(header)
        ),
        file=out,
    )
    for row in rows:
        print(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            ),
            file=out,
        )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile.trend",
        description="Per-metric trajectory table across BENCH_*.json points.",
    )
    parser.add_argument("files", nargs="+", help="bench JSON files, oldest first")
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="PATTERN",
        help="fnmatch pattern over flattened metric names (repeatable; "
        "default '*/wall_time_us')",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="every metric, not just the default wall-time selection",
    )
    parser.add_argument("--out", metavar="PATH", help="also write the table as TSV")
    args = parser.parse_args(argv)

    patterns = args.metric or (None if args.all else ["*/wall_time_us"])
    try:
        labels, table = trend_table(args.files, patterns)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not table:
        print("error: no metric matched the selection", file=sys.stderr)
        return 2
    print(f"{len(table)} metric(s) across {len(labels)} bench point(s)")
    render_trend(labels, table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            render_trend(labels, table, out=handle, tsv=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
