"""The run profiler: latency distributions plus hot-entity attribution.

The aggregate counters (:mod:`repro.metrics`) answer "how much time",
the tracer (:mod:`repro.trace`) answers "in what order"; this module
answers the paper's attribution questions — *which* pages miss, *which*
locks serialize, *which* barriers skew, and what the latency
distributions look like — without hand-reading a Perfetto trace.

A :class:`Profiler` is attached to the :class:`~repro.sim.Simulator`
(as ``sim.profile``), mirroring the ``NULL_TRACER`` / ``NULL_SANITIZER``
pattern: the default is :data:`NULL_PROFILER` whose ``enabled`` is
False, so unprofiled runs pay one attribute check per hook site and
build nothing.  When enabled it collects:

- **per-node** :class:`~repro.profile.registry.MetricsRegistry` objects
  holding log-bucketed latency histograms (page-fault service time,
  diff-fetch RTT, lock acquire/hold/wait, barrier arrival skew and
  waits, prefetch lead time, transport retransmit delay) and named
  counters (sanitizer violations, transport give-ups);
- **hot-entity tables** keyed by page id / lock id / barrier id:
  faults, diffs and bytes fetched, twin creations, and wait time per
  entity — the data behind the paper's per-application analyses (OCEAN
  boundary pages, RADIX permutation-phase traffic, ...).

Observation discipline: hooks only read ``sim.now`` and append to plain
Python structures — no RNG draws, no simulator scheduling, no protocol
state.  A profiled run therefore produces a byte-identical
:class:`~repro.metrics.report.RunReport` core (determinism guard test).
Profiler state is *monotone*: a crash rollback never rewinds it, so the
profile of a recovered run includes the discarded execution's work —
redone work is real work, exactly like the event counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.errors import ConfigError
from repro.profile.registry import MetricsRegistry

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "ProfileConfig",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
]

#: Version of the ``profile`` section embedded in RunReport JSON.
PROFILE_SCHEMA_VERSION = 1

#: Ranking key per entity kind: primary metric (descending), with the
#: remaining metrics and the entity id as deterministic tie-breaks.
_RANK_METRIC = {"page": "stall_us", "lock": "wait_us", "barrier": "wait_us"}


@dataclass(frozen=True)
class ProfileConfig:
    """How a run's profiler reports its data."""

    #: Entries per hot-entity table in the report's profile section.
    top_n: int = 10
    #: Embed raw bucket maps (mergeable across reports) in addition to
    #: the quantile summaries.  Off trims the report for large runs.
    include_buckets: bool = True

    def __post_init__(self) -> None:
        if self.top_n < 1:
            raise ConfigError(f"top_n must be >= 1, got {self.top_n}")


class Profiler:
    """Collects distributions and per-entity attribution for one run."""

    enabled = True

    def __init__(self, config: Optional[ProfileConfig] = None, num_nodes: int = 1) -> None:
        self.config = config or ProfileConfig()
        self.num_nodes = num_nodes
        self.registries = [MetricsRegistry() for _ in range(num_nodes)]
        #: kind -> entity id -> metric -> value; kinds are "page",
        #: "lock", "barrier".
        self.entities: dict[str, dict[int, dict[str, float]]] = {
            "page": {},
            "lock": {},
            "barrier": {},
        }
        #: Open measurement spans (first-begin wins), e.g. barrier
        #: episode arrival windows.  Transient bookkeeping only — a span
        #: orphaned by a crash rollback simply never records.
        self._spans: dict[Hashable, float] = {}

    # -- recording ---------------------------------------------------------

    def node(self, node_id: int) -> MetricsRegistry:
        return self.registries[node_id]

    def observe(self, node_id: int, name: str, value: float) -> None:
        self.registries[node_id].observe(name, value)

    def count(self, node_id: int, name: str, n: int = 1) -> None:
        self.registries[node_id].count(name, n)

    def entity_add(self, kind: str, entity_id: int, metric: str, amount: float = 1.0) -> None:
        table = self.entities[kind]
        stats = table.get(entity_id)
        if stats is None:
            stats = {}
            table[entity_id] = stats
        stats[metric] = stats.get(metric, 0.0) + amount

    def span_begin(self, key: Hashable, now: float) -> None:
        """Open a measurement span; the first begin for a key wins."""
        self._spans.setdefault(key, now)

    def span_end(self, key: Hashable, now: float) -> Optional[float]:
        """Close a span; returns its duration, or None if never opened."""
        started = self._spans.pop(key, None)
        if started is None:
            return None
        return now - started

    # -- queries -----------------------------------------------------------

    def merged(self) -> MetricsRegistry:
        """Cluster-wide registry: the per-node registries folded in node
        order (the result is order-independent; see the merge tests)."""
        return MetricsRegistry.merge(self.registries)

    def top(self, kind: str, n: Optional[int] = None) -> list[tuple[int, dict[str, float]]]:
        """The top-n entities of a kind, ranked by the kind's primary
        metric descending, deterministic under ties."""
        metric = _RANK_METRIC[kind]
        table = self.entities[kind]
        ranked = sorted(
            table.items(),
            key=lambda item: (-item[1].get(metric, 0.0), item[0]),
        )
        return ranked[: n if n is not None else self.config.top_n]

    # -- report section ----------------------------------------------------

    def to_dict(self, space: Any = None) -> dict:
        """The versioned ``profile`` section for :class:`RunReport`.

        ``space`` (a :class:`~repro.memory.address.SharedAddressSpace`)
        is optional; when given, hot pages are annotated with the name
        of the segment they fall in — "which array is hot", not just
        "which page id".
        """
        merged = self.merged()
        histograms: dict[str, dict] = {}
        for name in sorted(merged.histograms):
            histogram = merged.histograms[name]
            entry: dict[str, Any] = histogram.to_dict()
            entry.update(
                p50=histogram.quantile(0.50),
                p90=histogram.quantile(0.90),
                p99=histogram.quantile(0.99),
                mean=histogram.mean,
            )
            if not self.config.include_buckets:
                del entry["buckets"]
            histograms[name] = entry
        return {
            "version": PROFILE_SCHEMA_VERSION,
            "num_nodes": self.num_nodes,
            "histograms": histograms,
            "counters": merged.to_dict()["counters"],
            "hot_pages": [
                {"page": page_id, "segment": _segment_name(space, page_id), **_rounded(stats)}
                for page_id, stats in self.top("page")
            ],
            "hot_locks": [
                {"lock": lock_id, **_rounded(stats)} for lock_id, stats in self.top("lock")
            ],
            "hot_barriers": [
                {"barrier": barrier_id, **_rounded(stats)}
                for barrier_id, stats in self.top("barrier")
            ],
        }


def _rounded(stats: dict[str, float]) -> dict[str, float]:
    """Stable key order; integral metrics rendered as ints."""
    out: dict[str, float] = {}
    for metric in sorted(stats):
        value = stats[metric]
        out[metric] = int(value) if float(value).is_integer() else value
    return out


def _segment_name(space: Any, page_id: int) -> Optional[str]:
    if space is None:
        return None
    addr = page_id * space.page_size
    for segment in space.segments():
        if segment.base <= addr < segment.end:
            return segment.name
    return None


class NullProfiler(Profiler):
    """The default profiler: collects nothing, costs one attribute check.

    Hook sites are written as::

        pf = self.sim.profile
        if pf.enabled:
            pf.observe(...)

    so with the null profiler installed the per-hook cost is a boolean
    load and branch.  The recording methods are still no-ops (not
    errors) as a second line of defence.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(ProfileConfig(), num_nodes=1)

    def observe(self, node_id: int, name: str, value: float) -> None:  # pragma: no cover
        pass

    def count(self, node_id: int, name: str, n: int = 1) -> None:  # pragma: no cover
        pass

    def entity_add(  # pragma: no cover - defensive
        self, kind: str, entity_id: int, metric: str, amount: float = 1.0
    ) -> None:
        pass

    def span_begin(self, key: Hashable, now: float) -> None:  # pragma: no cover
        pass

    def span_end(self, key: Hashable, now: float) -> Optional[float]:  # pragma: no cover
        return None


#: Shared do-nothing profiler; installed on every Simulator by default.
NULL_PROFILER = NullProfiler()
