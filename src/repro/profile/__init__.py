"""Deep profiling: latency histograms, hot-entity attribution, and the
machine-readable benchmark/regression tooling built on them.

- :mod:`repro.profile.histogram` — deterministic log-bucketed
  :class:`Histogram` (p50/p90/p99/max, mergeable across nodes);
- :mod:`repro.profile.registry` — named histograms + counters per node;
- :mod:`repro.profile.profiler` — the ``sim.profile`` hook target with
  hot page/lock/barrier tables and the RunReport ``profile`` section;
- :mod:`repro.profile.compare` — ``python -m repro.profile.compare``,
  the regression gate over two report/bench JSON files.

Enable per run with ``RunConfig(profile=True)`` or ``--profile`` on the
CLIs; the default :data:`NULL_PROFILER` collects nothing and keeps
unprofiled runs byte-identical.
"""

from repro.profile.histogram import SUBBUCKETS, Histogram
from repro.profile.profiler import (
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    NullProfiler,
    ProfileConfig,
    Profiler,
)
from repro.profile.registry import MetricsRegistry

__all__ = [
    "Histogram",
    "SUBBUCKETS",
    "MetricsRegistry",
    "ProfileConfig",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "PROFILE_SCHEMA_VERSION",
]
