"""Named metric registries: histograms plus monotone counters.

One :class:`MetricsRegistry` per node collects that node's latency
distributions and named event counters; the profiler merges the per-node
registries into a cluster-wide view at report time.  Merging is pure
field-wise addition, so the merged result is independent of merge order
and grouping (there is a determinism test for this), and — like every
other statistic in the system — registries are *monotone*: a crash
rollback never rewinds them, so redone work after recovery is visible as
real work in the profile.
"""

from __future__ import annotations

from typing import Iterable

from repro.profile.histogram import Histogram

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named :class:`Histogram` distributions and integer counters."""

    __slots__ = ("histograms", "counters")

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {}
        self.counters: dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self.histograms[name] = histogram
        return histogram

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # -- merging -----------------------------------------------------------

    def merged_with(self, other: "MetricsRegistry") -> "MetricsRegistry":
        merged = MetricsRegistry()
        for name, histogram in self.histograms.items():
            merged.histograms[name] = histogram.merged_with(Histogram())
        for name, histogram in other.histograms.items():
            if name in merged.histograms:
                merged.histograms[name] = merged.histograms[name].merged_with(histogram)
            else:
                merged.histograms[name] = histogram.merged_with(Histogram())
        merged.counters = dict(self.counters)
        for name, value in other.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        return merged

    @staticmethod
    def merge(registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        merged = MetricsRegistry()
        for registry in registries:
            merged = merged.merged_with(registry)
        return merged

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-safe form (keys sorted)."""
        return {
            "histograms": {
                name: self.histograms[name].to_dict() for name in sorted(self.histograms)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        for name, payload in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(payload)
        for name, value in data.get("counters", {}).items():
            registry.counters[name] = int(value)
        return registry
