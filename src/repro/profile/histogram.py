"""Deterministic log-bucketed latency histograms.

The paper's tables quote *averages*; averages hide exactly the tail
behaviour that distinguishes the latency-tolerance techniques (a lock
chain that serializes shows up at p99 long before it moves the mean).
:class:`Histogram` records a distribution in logarithmic buckets so a
run can report p50/p90/p99/max for page-fault service time, diff-fetch
round trips, lock waits, and so on.

Design constraints, mirroring the tracer/sanitizer:

- **Deterministic.**  Bucket indices come from :func:`math.frexp`
  (exact binary decomposition), never from ``log`` rounding, so the
  same value always lands in the same bucket on every platform, and two
  runs of the same seed serialize byte-identically.
- **Mergeable.**  Buckets are sparse ``index -> count`` maps; merging
  is field-wise addition, so per-node histograms can be combined into a
  cluster-wide distribution in any grouping (merge is associative and
  commutative — there is a test for this).
- **Cheap.**  Recording is one ``frexp``, one dict increment and four
  scalar updates; no allocation beyond the first hit of a bucket.

Resolution: :data:`SUBBUCKETS` buckets per power of two gives a worst
case relative error of ``1/SUBBUCKETS`` (~12.5% at the default 8) on
any reported quantile, which is ample for "did p99 regress by 2x".
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["Histogram", "SUBBUCKETS"]

#: Buckets per octave (power of two).  Part of the wire format: merging
#: histograms with different resolutions is a hard error, so this is a
#: module constant rather than a per-instance knob.
SUBBUCKETS = 8


def _bucket_index(value: float) -> int:
    """Bucket index for a non-negative value.

    Bucket 0 holds everything below 1.0 (sub-microsecond noise);
    bucket ``(e-1)*SUBBUCKETS + s + 1`` holds values with binary
    exponent ``e`` subdivided linearly by mantissa into ``SUBBUCKETS``
    slots.  Pure integer/frexp arithmetic: no log rounding.
    """
    if value < 1.0:
        return 0
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    sub = int((mantissa - 0.5) * 2.0 * SUBBUCKETS)
    if sub >= SUBBUCKETS:  # mantissa == 1.0 - epsilon edge
        sub = SUBBUCKETS - 1
    return (exponent - 1) * SUBBUCKETS + sub + 1


def _bucket_upper(index: int) -> float:
    """Exclusive upper bound of a bucket (inclusive for bucket 0)."""
    if index <= 0:
        return 1.0
    octave, sub = divmod(index - 1, SUBBUCKETS)
    return (2.0 ** (octave - 1)) * (1.0 + (sub + 1) / SUBBUCKETS) * 2.0


class Histogram:
    """A sparse log-bucketed histogram of non-negative samples."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = 0.0
        self.buckets: dict[int, int] = {}

    # -- recording ---------------------------------------------------------

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram sample must be non-negative, got {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    # -- queries -----------------------------------------------------------

    @property
    def empty(self) -> bool:
        return self.count == 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1); 0.0 when empty.

        Walks buckets in index order to the bucket containing the target
        rank and reports that bucket's upper bound, clamped into the
        exact observed [min, max] — so ``quantile(1.0) == max`` and no
        reported quantile can fall outside the true range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                estimate = _bucket_upper(index)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def summary(self) -> dict[str, float]:
        """The quantile row reports and benchmarks embed."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max if self.count else 0.0,
        }

    # -- merging -----------------------------------------------------------

    def merged_with(self, other: "Histogram") -> "Histogram":
        """Field-wise sum; associative and commutative."""
        merged = Histogram()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        merged.buckets = dict(self.buckets)
        for index, bucket_count in other.buckets.items():
            merged.buckets[index] = merged.buckets.get(index, 0) + bucket_count
        return merged

    @staticmethod
    def merge(histograms: Iterable["Histogram"]) -> "Histogram":
        merged = Histogram()
        for histogram in histograms:
            merged = merged.merged_with(histogram)
        return merged

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; bucket keys sorted so output is canonical."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "buckets": {str(index): self.buckets[index] for index in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        histogram = cls()
        histogram.count = int(data["count"])
        histogram.total = float(data["total"])
        histogram.min = float(data["min"]) if histogram.count else math.inf
        histogram.max = float(data["max"])
        histogram.buckets = {int(index): int(n) for index, n in data["buckets"].items()}
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "<Histogram empty>"
        return (
            f"<Histogram n={self.count} mean={self.mean:.1f} "
            f"p99={self.quantile(0.99):.1f} max={self.max:.1f}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Histogram is mutable and unhashable")


def bucket_bounds(index: int) -> tuple[float, float]:
    """(inclusive lower, exclusive upper) bounds of a bucket — exposed
    for tests and for rendering bucket tables."""
    if index <= 0:
        return (0.0, 1.0)
    octave, sub = divmod(index - 1, SUBBUCKETS)
    lower = (2.0 ** octave) * (1.0 + sub / SUBBUCKETS)
    return (lower, _bucket_upper(index))
