"""repro — reproduction of "Comparative Evaluation of Latency Tolerance
Techniques for Software Distributed Shared Memory" (HPCA-4, 1998).

The package simulates a TreadMarks-style page-based software DSM running
on a cluster of workstations over an ATM switch, and implements the
paper's two latency-tolerance techniques — software-controlled
non-binding prefetching and user-level multithreading — individually and
combined.

Quick start::

    from repro import DsmRuntime, RunConfig
    from repro.apps import Sor

    report = DsmRuntime(RunConfig(num_nodes=8)).execute(Sor())
    print(report.summary())
"""

from repro.api import (
    Acquire,
    Barrier,
    Compute,
    DsmRuntime,
    Prefetch,
    Program,
    Read,
    Release,
    RunConfig,
    SharedMatrix,
    SharedVector,
    Write,
)
from repro.machine import CostModel
from repro.network import LinkConfig

__version__ = "1.0.0"

__all__ = [
    "Acquire",
    "Barrier",
    "Compute",
    "CostModel",
    "DsmRuntime",
    "LinkConfig",
    "Prefetch",
    "Program",
    "Read",
    "Release",
    "RunConfig",
    "SharedMatrix",
    "SharedVector",
    "Write",
    "__version__",
]
