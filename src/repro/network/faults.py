"""Deterministic, seed-driven fault injection for the interconnect.

The paper's platform runs over *unreliable* UDP/AAL5 datagrams; the base
protocol survives loss only because a retransmitting transport sits
above the wire (Section 3).  This module supplies the loss:
:class:`FaultyNetwork` wraps the star interconnect and perturbs traffic
according to a :class:`FaultPlan` —

- probabilistic message **drop** (the datagram vanishes in the fabric);
- probabilistic **duplication** (a ghost copy follows the original);
- **reordering** via random injection jitter (a delayed message can be
  overtaken by later ones on the same uplink);
- timed **link-degradation windows**: a bandwidth cut and/or latency
  spike over an interval of simulated time, optionally scoped to nodes;
- timed **per-node stall windows**: a node's NIC goes quiet — nothing
  leaves it and nothing is delivered to it until the window ends;
- timed **link partitions**: a set of links (or everything crossing a
  node-group boundary) is severed — all traffic on it vanishes,
  including magically reliable messages, with no random draw;
- timed **bit-corruption windows**: a transmission arrives with
  ``Message.corrupted`` set; the receiver's end-to-end checksum
  discards it before protocol code can apply it as a garbage diff, and
  the reliable transport retransmits.

Every decision draws from one named stream of the experiment's
:class:`~repro.sim.rng.RandomSource`, so a (seed, plan) pair replays
bit-for-bit.  Every injected fault is recorded in
:class:`~repro.network.stats.TrafficStats` by message kind.

Magically reliable messages (``Message.reliable`` without a transport
layer) are exempt from drops and duplication — they model a lossless
channel — but still suffer delay faults, which any channel can.  With
:class:`~repro.network.transport.ReliableTransport` installed, protocol
messages travel as droppable datagrams and nothing is exempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import FaultConfigError
from repro.network.link import LinkConfig
from repro.network.message import Message
from repro.network.network import Network
from repro.sim import Simulator

__all__ = [
    "LinkDegradation",
    "NodeStall",
    "NodeCrash",
    "LinkPartition",
    "BitCorruption",
    "FaultPlan",
    "FaultyNetwork",
]


def _check_window(what: str, start_us: float, end_us: float) -> None:
    if start_us < 0:
        raise FaultConfigError(f"{what}: start_us must be >= 0, got {start_us}")
    if end_us <= start_us:
        raise FaultConfigError(
            f"{what}: window must have end_us > start_us, got [{start_us}, {end_us}]"
        )


def _check_prob(what: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultConfigError(f"{what} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkDegradation:
    """A timed window during which affected traffic runs degraded.

    ``bandwidth_factor`` scales effective bandwidth (0.25 = quartered:
    every affected message pays 3x its serialization time extra);
    ``extra_latency_us`` is a flat added latency.  ``nodes`` scopes the
    window to messages touching those nodes (as source or destination);
    ``None`` degrades the whole fabric.
    """

    start_us: float
    end_us: float
    bandwidth_factor: float = 1.0
    extra_latency_us: float = 0.0
    nodes: Optional[frozenset[int]] = None

    def __post_init__(self) -> None:
        _check_window("degradation", self.start_us, self.end_us)
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise FaultConfigError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if self.extra_latency_us < 0:
            raise FaultConfigError(
                f"extra_latency_us must be >= 0, got {self.extra_latency_us}"
            )
        if self.bandwidth_factor == 1.0 and self.extra_latency_us == 0.0:
            raise FaultConfigError("degradation window degrades nothing")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", frozenset(self.nodes))
            if any(node < 0 for node in self.nodes):
                raise FaultConfigError(f"negative node id in degradation: {self.nodes}")

    def applies(self, message: Message, now: float) -> bool:
        if not self.start_us <= now < self.end_us:
            return False
        return self.nodes is None or message.src in self.nodes or message.dst in self.nodes

    def extra_delay_us(self, message: Message, config: LinkConfig) -> float:
        slowdown = 1.0 / self.bandwidth_factor - 1.0
        return self.extra_latency_us + config.serialization_us(message.size_bytes) * slowdown


@dataclass(frozen=True)
class NodeStall:
    """A timed window during which one node's NIC is unresponsive.

    Messages the node tries to send, and messages arriving for it, are
    held and released when the window ends (modelling a paused process
    or a swamped host, not packet loss).
    """

    node: int
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultConfigError(f"stall node id must be >= 0, got {self.node}")
        _check_window("stall", self.start_us, self.end_us)

    def hold_us(self, node: int, now: float) -> float:
        if node == self.node and self.start_us <= now < self.end_us:
            return self.end_us - now
        return 0.0


@dataclass(frozen=True)
class NodeCrash:
    """A scheduled crash-stop failure of one node.

    At ``at_us`` the node's links go silent, its in-flight simulation
    processes are cancelled, and its threads freeze.  Recovery (the
    :mod:`repro.ft` layer) later rolls the cluster back to the last
    coordinated checkpoint and resumes.  Node 0 cannot crash: it hosts
    the barrier manager and the failure-detection coordinator (the
    paper's platform has the same asymmetry — the manager workstation is
    the trusted base).
    """

    node: int
    at_us: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultConfigError(f"crash node id must be >= 0, got {self.node}")
        if self.at_us <= 0:
            raise FaultConfigError(f"crash time must be > 0, got {self.at_us}")


def _normalize_links(what: str, raw) -> frozenset[tuple[int, int]]:
    links = frozenset((int(src), int(dst)) for src, dst in raw)
    if not links:
        raise FaultConfigError(f"{what} must name at least one link")
    if any(src < 0 or dst < 0 for src, dst in links):
        raise FaultConfigError(f"negative node id in {what}: {sorted(links)}")
    if any(src == dst for src, dst in links):
        raise FaultConfigError(f"self-link in {what}: {sorted(links)}")
    return links


@dataclass(frozen=True)
class LinkPartition:
    """A timed window during which part of the fabric is unreachable.

    Scope is exactly one of:

    - ``nodes``: a group cut off from the rest of the cluster — every
      link *crossing* the group boundary is severed in both directions
      (a switch split); traffic within the group, and within the rest,
      still flows;
    - ``links``: an explicit set of severed directed ``(src, dst)``
      pairs (an asymmetric cable fault).

    Severed traffic vanishes without consuming a single random draw:
    partitions are window-deterministic, so adding one to a plan can
    never perturb the fault stream any other link sees.  Unlike
    probabilistic loss, a partition severs *everything* — including
    magically reliable messages, because there is no wire left to be
    lossless on.  The :mod:`repro.ft` layer is what must tell this
    apart from a crash: heartbeats stop exactly as if the peer died.
    """

    start_us: float
    end_us: float
    nodes: Optional[frozenset[int]] = None
    links: Optional[frozenset[tuple[int, int]]] = None

    def __post_init__(self) -> None:
        _check_window("partition", self.start_us, self.end_us)
        if (self.nodes is None) == (self.links is None):
            raise FaultConfigError(
                "partition: exactly one of nodes/links must be given"
            )
        if self.nodes is not None:
            nodes = frozenset(int(node) for node in self.nodes)
            if not nodes:
                raise FaultConfigError("partition nodes must name at least one node")
            if any(node < 0 for node in nodes):
                raise FaultConfigError(f"negative node id in partition nodes: {sorted(nodes)}")
            object.__setattr__(self, "nodes", nodes)
        if self.links is not None:
            object.__setattr__(
                self, "links", _normalize_links("partition links", self.links)
            )

    def severs(self, src: int, dst: int, now: float) -> bool:
        if not self.start_us <= now < self.end_us:
            return False
        if self.nodes is not None:
            return (src in self.nodes) != (dst in self.nodes)
        return (src, dst) in self.links

    def involves(self, node: int) -> bool:
        """Whether the partition cuts this node off from someone."""
        if self.nodes is not None:
            return node in self.nodes
        return any(node in pair for pair in self.links)


@dataclass(frozen=True)
class BitCorruption:
    """A timed window of per-transmission bit-flip probability.

    A corrupted transmission is still delivered — the fabric does not
    know it mangled the frame — but arrives with ``Message.corrupted``
    set.  The receiving node's end-to-end checksum discards it (after
    paying the receive CPU cost: the frame must be read to be checked)
    before any protocol code or liveness observer sees it, so a flipped
    bit can never be applied as a garbage diff nor count as evidence
    that the sender is alive.  The reliable transport retransmits the
    unacked frame; corruption costs latency, not correctness.

    ``links`` scopes the window to directed pairs; ``None`` corrupts
    the whole fabric.  Corruption draws come from the same per-link
    streams as loss, and are only consumed while a window covering the
    link is active — plans without corruption replay bit-for-bit
    against older versions of this module.
    """

    start_us: float
    end_us: float
    prob: float
    links: Optional[frozenset[tuple[int, int]]] = None

    def __post_init__(self) -> None:
        _check_window("corruption", self.start_us, self.end_us)
        if not 0.0 < self.prob <= 1.0:
            raise FaultConfigError(
                f"corruption prob must be in (0, 1], got {self.prob}"
            )
        if self.links is not None:
            object.__setattr__(
                self, "links", _normalize_links("corruption links", self.links)
            )

    def applies(self, src: int, dst: int, now: float) -> bool:
        if not self.start_us <= now < self.end_us:
            return False
        return self.links is None or (src, dst) in self.links


@dataclass(frozen=True)
class FaultPlan:
    """Everything the fault injector may do to traffic, in one place."""

    #: Per-message probability that a droppable datagram vanishes.
    drop_prob: float = 0.0
    #: Per-message probability that a ghost duplicate is also delivered.
    duplicate_prob: float = 0.0
    #: Per-message probability of injection jitter (enables reordering).
    reorder_prob: float = 0.0
    #: Jitter magnitude: delay drawn uniformly from [0, jitter_us].
    jitter_us: float = 0.0
    degradations: tuple[LinkDegradation, ...] = ()
    stalls: tuple[NodeStall, ...] = ()
    #: Crash-stop failures, executed by the repro.ft layer (the network
    #: only carries the schedule; a plan with crashes auto-enables FT).
    crashes: tuple[NodeCrash, ...] = ()
    #: Timed partitions severing links or node groups (auto-enables FT,
    #: like crashes: someone has to fence and rejoin the cut-off nodes).
    partitions: tuple[LinkPartition, ...] = ()
    #: Timed bit-corruption windows.
    corruptions: tuple[BitCorruption, ...] = ()
    #: Scope the probabilistic faults (drop/duplicate/reorder) to these
    #: directed ``(src, dst)`` links; ``None`` means fabric-wide.
    #: Out-of-scope traffic draws nothing from the fault streams.
    only_links: Optional[frozenset[tuple[int, int]]] = None

    def __post_init__(self) -> None:
        _check_prob("drop_prob", self.drop_prob)
        _check_prob("duplicate_prob", self.duplicate_prob)
        _check_prob("reorder_prob", self.reorder_prob)
        if self.jitter_us < 0:
            raise FaultConfigError(f"jitter_us must be >= 0, got {self.jitter_us}")
        if self.reorder_prob > 0 and self.jitter_us == 0:
            raise FaultConfigError("reorder_prob > 0 requires jitter_us > 0")
        if self.only_links is not None:
            links = frozenset((int(src), int(dst)) for src, dst in self.only_links)
            if not links:
                raise FaultConfigError("only_links must name at least one link")
            if any(src < 0 or dst < 0 for src, dst in links):
                raise FaultConfigError(f"negative node id in only_links: {links}")
            object.__setattr__(self, "only_links", links)
        object.__setattr__(self, "degradations", tuple(self.degradations))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        for item in self.degradations:
            if not isinstance(item, LinkDegradation):
                raise FaultConfigError(f"not a LinkDegradation: {item!r}")
        for item in self.stalls:
            if not isinstance(item, NodeStall):
                raise FaultConfigError(f"not a NodeStall: {item!r}")
        for item in self.crashes:
            if not isinstance(item, NodeCrash):
                raise FaultConfigError(f"not a NodeCrash: {item!r}")
        for item in self.partitions:
            if not isinstance(item, LinkPartition):
                raise FaultConfigError(f"not a LinkPartition: {item!r}")
        for item in self.corruptions:
            if not isinstance(item, BitCorruption):
                raise FaultConfigError(f"not a BitCorruption: {item!r}")
        # A node that is both crashed and partitioned is ambiguous: the
        # detector cannot fence what is already dead, and recovery could
        # revive a node into a still-severed fabric.  The crash "window"
        # is [at_us, infinity) — the node stays down until recovery, so
        # any partition of that node reaching past the crash instant is
        # rejected.
        for crash in self.crashes:
            for part in self.partitions:
                if part.end_us > crash.at_us and part.involves(crash.node):
                    raise FaultConfigError(
                        f"crashes/partitions: node {crash.node} crashes at "
                        f"{crash.at_us} but a partition window "
                        f"[{part.start_us}, {part.end_us}) still involves it"
                    )

    @property
    def is_noop(self) -> bool:
        return (
            self.drop_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.reorder_prob == 0.0
            and not self.degradations
            and not self.stalls
            and not self.crashes
            and not self.partitions
            and not self.corruptions
        )

    def stall_hold_us(self, node: int, now: float) -> float:
        return max((stall.hold_us(node, now) for stall in self.stalls), default=0.0)

    def severed(self, src: int, dst: int, now: float) -> bool:
        return any(part.severs(src, dst, now) for part in self.partitions)

    def corruption_prob(self, src: int, dst: int, now: float) -> float:
        """Combined corruption probability on a directed link right now
        (overlapping windows flip bits independently)."""
        prob = 0.0
        for window in self.corruptions:
            if window.applies(src, dst, now):
                prob = 1.0 - (1.0 - prob) * (1.0 - window.prob)
        return prob

    def validate_topology(self, num_nodes: int) -> None:
        """Cross-check every node and link id against the cluster size.

        Plans are built before the cluster exists, so ``__post_init__``
        can only reject negative ids; the network calls this once it
        knows ``num_nodes``.
        """

        def check_node(what: str, node: int) -> None:
            if node >= num_nodes:
                raise FaultConfigError(
                    f"{what}: unknown node {node} "
                    f"(cluster has {num_nodes} nodes)"
                )

        def check_links(what: str, links) -> None:
            for src, dst in links:
                if src >= num_nodes or dst >= num_nodes:
                    raise FaultConfigError(
                        f"{what}: unknown link ({src}, {dst}) "
                        f"(cluster has {num_nodes} nodes)"
                    )

        if self.only_links is not None:
            check_links("only_links", self.only_links)
        for window in self.degradations:
            if window.nodes is not None:
                for node in window.nodes:
                    check_node("degradations.nodes", node)
        for stall in self.stalls:
            check_node("stalls.node", stall.node)
        for crash in self.crashes:
            check_node("crashes.node", crash.node)
        for part in self.partitions:
            if part.nodes is not None:
                for node in part.nodes:
                    check_node("partitions.nodes", node)
            if part.links is not None:
                check_links("partitions.links", part.links)
        for window in self.corruptions:
            if window.links is not None:
                check_links("corruptions.links", window.links)

    # -- serialization (chaos reproducers live on disk as JSON) ------------

    def to_dict(self) -> dict:
        def links_list(links):
            return None if links is None else sorted([src, dst] for src, dst in links)

        return {
            "drop_prob": self.drop_prob,
            "duplicate_prob": self.duplicate_prob,
            "reorder_prob": self.reorder_prob,
            "jitter_us": self.jitter_us,
            "degradations": [
                {
                    "start_us": w.start_us,
                    "end_us": w.end_us,
                    "bandwidth_factor": w.bandwidth_factor,
                    "extra_latency_us": w.extra_latency_us,
                    "nodes": None if w.nodes is None else sorted(w.nodes),
                }
                for w in self.degradations
            ],
            "stalls": [
                {"node": s.node, "start_us": s.start_us, "end_us": s.end_us}
                for s in self.stalls
            ],
            "crashes": [{"node": c.node, "at_us": c.at_us} for c in self.crashes],
            "partitions": [
                {
                    "start_us": p.start_us,
                    "end_us": p.end_us,
                    "nodes": None if p.nodes is None else sorted(p.nodes),
                    "links": links_list(p.links),
                }
                for p in self.partitions
            ],
            "corruptions": [
                {
                    "start_us": w.start_us,
                    "end_us": w.end_us,
                    "prob": w.prob,
                    "links": links_list(w.links),
                }
                for w in self.corruptions
            ],
            "only_links": links_list(self.only_links),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        def links_set(raw):
            if raw is None:
                return None
            return frozenset((int(src), int(dst)) for src, dst in raw)

        def nodes_set(raw):
            return None if raw is None else frozenset(int(node) for node in raw)

        return cls(
            drop_prob=float(data.get("drop_prob", 0.0)),
            duplicate_prob=float(data.get("duplicate_prob", 0.0)),
            reorder_prob=float(data.get("reorder_prob", 0.0)),
            jitter_us=float(data.get("jitter_us", 0.0)),
            degradations=tuple(
                LinkDegradation(
                    start_us=float(w["start_us"]),
                    end_us=float(w["end_us"]),
                    bandwidth_factor=float(w.get("bandwidth_factor", 1.0)),
                    extra_latency_us=float(w.get("extra_latency_us", 0.0)),
                    nodes=nodes_set(w.get("nodes")),
                )
                for w in data.get("degradations", ())
            ),
            stalls=tuple(
                NodeStall(
                    node=int(s["node"]),
                    start_us=float(s["start_us"]),
                    end_us=float(s["end_us"]),
                )
                for s in data.get("stalls", ())
            ),
            crashes=tuple(
                NodeCrash(node=int(c["node"]), at_us=float(c["at_us"]))
                for c in data.get("crashes", ())
            ),
            partitions=tuple(
                LinkPartition(
                    start_us=float(p["start_us"]),
                    end_us=float(p["end_us"]),
                    nodes=nodes_set(p.get("nodes")),
                    links=links_set(p.get("links")),
                )
                for p in data.get("partitions", ())
            ),
            corruptions=tuple(
                BitCorruption(
                    start_us=float(w["start_us"]),
                    end_us=float(w["end_us"]),
                    prob=float(w["prob"]),
                    links=links_set(w.get("links")),
                )
                for w in data.get("corruptions", ())
            ),
            only_links=links_set(data.get("only_links")),
        )


class FaultyNetwork(Network):
    """The star interconnect with a :class:`FaultPlan` applied to it.

    Faults act at the injection boundary (between the sender's NIC and
    its uplink) and at the delivery boundary (for destination stalls):

    - an injected *drop* consumes the message before the wire; the send
      returns False, so senders that watch the return value (the
      prefetch engine's ENOBUFS-style throttle) observe it, while
      fire-and-forget senders remain oblivious — the reliable transport
      recovers via its timeout either way;
    - a *duplicate* injects a ghost copy after the original;
    - *delay*, *degrade* and *stall* faults postpone injection (or, for
      a stalled destination, delivery) without loss.
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        plan: FaultPlan,
        rng: np.random.Generator,
        link_config: Optional[LinkConfig] = None,
        switch_latency_us: float = 10.0,
    ) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultConfigError(f"not a FaultPlan: {plan!r}")
        plan.validate_topology(num_nodes)
        super().__init__(sim, num_nodes, link_config=link_config, switch_latency_us=switch_latency_us)
        self.plan = plan
        # Fault decisions draw from a *per-directed-link* stream so one
        # link's traffic volume cannot shift the draws another link
        # sees: given a RandomSource, each (src, dst) pair lazily gets
        # its own named stream; a bare numpy Generator (legacy/direct
        # construction) keeps the old fabric-wide behaviour.
        if isinstance(rng, np.random.Generator):
            self._random = None
            self._shared_rng = rng
        else:
            self._random = rng
            self._shared_rng = None

    def _link_rng(self, src: int, dst: int) -> np.random.Generator:
        if self._random is None:
            return self._shared_rng
        return self._random.stream(f"network.faults[{src}->{dst}]")

    # -- send path ---------------------------------------------------------

    def send(self, message: Message) -> bool:
        self._check_destination(message)
        message.incarnation = self.incarnation
        plan = self.plan
        now = self.sim.now
        if plan.partitions and plan.severed(message.src, message.dst, now):
            # A severed link loses everything, reliable or not, and
            # consumes no random draw: the fate of other links' traffic
            # (and of this link's traffic outside the window) is
            # byte-identical with and without the partition.
            self.stats.record_injected("partition", message)
            self.stats.record_drop(message)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    now,
                    "network",
                    "msg_drop",
                    message.src,
                    kind=message.kind.value,
                    dst=message.dst,
                    at="partition",
                )
            return False
        in_scope = plan.only_links is None or (message.src, message.dst) in plan.only_links
        rng = self._link_rng(message.src, message.dst) if in_scope else None
        if (
            in_scope
            and not message.reliable
            and plan.drop_prob > 0
            and rng.random() < plan.drop_prob
        ):
            self.stats.record_injected("drop", message)
            self.stats.record_drop(message)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    now,
                    "network",
                    "msg_drop",
                    message.src,
                    kind=message.kind.value,
                    dst=message.dst,
                    at="fault",
                )
            return False
        delay = 0.0
        if in_scope and plan.reorder_prob > 0 and rng.random() < plan.reorder_prob:
            jitter = float(rng.uniform(0.0, plan.jitter_us))
            if jitter > 0:
                self.stats.record_injected("delay", message)
                delay += jitter
        for window in plan.degradations:
            if window.applies(message, now):
                self.stats.record_injected("degrade", message)
                delay += window.extra_delay_us(message, self.link_config)
        hold = plan.stall_hold_us(message.src, now)
        if hold > 0:
            self.stats.record_injected("stall", message)
            delay += hold
        if in_scope and not message.reliable and plan.corruptions:
            # Draw only while a window covers this link, so plans
            # without corruption consume the same stream positions as
            # before this fault type existed.
            prob = plan.corruption_prob(message.src, message.dst, now)
            if prob > 0 and rng.random() < prob:
                message.corrupted = True
                self.stats.record_injected("corrupt", message)
                if self.sim.trace_on:
                    tr = self.sim.trace
                    tr.instant(
                        now,
                        "network",
                        "msg_corrupt",
                        message.src,
                        kind=message.kind.value,
                        dst=message.dst,
                    )
        if (
            in_scope
            and not message.reliable
            and plan.duplicate_prob > 0
            and rng.random() < plan.duplicate_prob
        ):
            self.stats.record_injected("duplicate", message)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    now,
                    "network",
                    "msg_duplicate",
                    message.src,
                    kind=message.kind.value,
                    dst=message.dst,
                )
            ghost_delay = delay + float(rng.uniform(0.0, max(plan.jitter_us, 1.0)))
            self.sim.schedule(ghost_delay, self._inject, message.clone())
        if delay > 0:
            self.sim.schedule(delay, self._inject_delayed, message, now)
            return True  # fate decided later; injection faults are not drops
        return self._inject(message)

    def _inject_delayed(self, message: Message, sent_at: float) -> None:
        """Inject a fault-delayed message, backdating ``sent_at`` to the
        original send call so the injected delay shows up as latency."""
        self._inject(message)
        message.sent_at = sent_at

    # -- delivery path -----------------------------------------------------

    def _deliver(self, message: Message) -> None:
        hold = self.plan.stall_hold_us(message.dst, self.sim.now)
        if hold > 0:
            self.stats.record_injected("stall", message)
            self.sim.schedule(hold, super()._deliver, message)
            return
        super()._deliver(message)
