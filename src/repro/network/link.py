"""Point-to-point link model with serialization delay and finite queue.

A link transmits one message at a time at a fixed bandwidth.  Messages
queue FIFO behind the transmitter.  The queue is finite in *bytes*; when
it is full, unreliable messages are dropped (the ATM switch has no
retransmission — TreadMarks' reliable channel retransmits above it, so
reliable messages are modelled as never lost, only delayed).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.network.message import Message
from repro.sim import Simulator, Store, spawn

__all__ = ["LinkConfig", "Link"]

ATM_CELL_PAYLOAD = 48
ATM_CELL_SIZE = 53


class LinkConfig:
    """Physical parameters of a link.

    Defaults model the paper's 155 Mbps OC-3 ATM fabric: AAL5/UDP/IP
    framing (~60 bytes per datagram) plus 53/48 cell expansion.
    """

    def __init__(
        self,
        bandwidth_mbps: float = 155.0,
        propagation_us: float = 1.0,
        header_bytes: int = 60,
        # The ASX-200 class switch buffers ~13K cells; a 256 KB port
        # queue is the per-port share of that.
        queue_capacity_bytes: int = 256 * 1024,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if queue_capacity_bytes <= 0:
            raise NetworkError("queue capacity must be positive")
        if propagation_us < 0:
            raise NetworkError(f"propagation delay must be >= 0, got {propagation_us}")
        if header_bytes < 0:
            raise NetworkError(f"header bytes must be >= 0, got {header_bytes}")
        self.bandwidth_mbps = bandwidth_mbps
        self.propagation_us = propagation_us
        self.header_bytes = header_bytes
        self.queue_capacity_bytes = queue_capacity_bytes

    def wire_bytes(self, payload_bytes: int) -> int:
        """Bytes actually occupying the wire, including framing."""
        datagram = payload_bytes + self.header_bytes
        cells = math.ceil(datagram / ATM_CELL_PAYLOAD)
        return cells * ATM_CELL_SIZE

    def serialization_us(self, payload_bytes: int) -> float:
        """Time to clock the message onto the wire, in microseconds."""
        bits = self.wire_bytes(payload_bytes) * 8
        return bits / self.bandwidth_mbps  # Mbps == bits per microsecond


class Link:
    """One simplex link: FIFO queue + transmitter + propagation delay."""

    def __init__(
        self,
        sim: Simulator,
        config: LinkConfig,
        sink: Callable[[Message], None],
        name: str = "",
    ) -> None:
        self.sim = sim
        self.config = config
        self.sink = sink
        self.name = name
        self._queue: Store = Store(sim, name=f"linkq({name})")
        self._queued_bytes = 0
        self._transmitting = False
        # Statistics.
        self.messages_sent = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.busy_time = 0.0
        spawn(sim, self._transmitter(), name=f"link({name})", daemon=True)

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the transmitter was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def send(self, message: Message) -> bool:
        """Enqueue a message; returns False if it was dropped.

        Unreliable messages are dropped when the queue (plus the message
        itself) would exceed capacity.  Reliable messages always queue;
        their delay simply grows — modelling the retransmitting
        transport that TreadMarks layers over UDP.
        """
        wire = self.config.wire_bytes(message.size_bytes)
        if not message.reliable and self._queued_bytes + wire > self.config.queue_capacity_bytes:
            self.messages_dropped += 1
            return False
        self._queued_bytes += wire
        self._queue.put(message)
        return True

    def _transmitter(self):
        while True:
            message: Message = yield self._queue.get()
            serialization = self.config.serialization_us(message.size_bytes)
            yield self.sim.timeout(serialization)
            self.busy_time += serialization
            self._queued_bytes -= self.config.wire_bytes(message.size_bytes)
            self.messages_sent += 1
            self.bytes_sent += self.config.wire_bytes(message.size_bytes)
            self.sim.schedule(self.config.propagation_us, self.sink, message)
