"""Output-queued ATM switch model.

The paper's testbed uses a single FORE ASX-200WG switch in a star
topology.  We model it as an output-queued crossbar: a message arriving
from any uplink is forwarded — after a small fixed switching latency —
onto the downlink queue of its destination port.  Congestion therefore
appears exactly where it did in the paper: on the downlink of a hot node
(e.g. the master during initialization) and on uplinks during bursty
all-to-all phases.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NetworkError
from repro.network.link import Link, LinkConfig
from repro.network.message import Message
from repro.sim import Simulator

__all__ = ["Switch"]


class Switch:
    """A star switch with one downlink (output port) per node."""

    def __init__(
        self,
        sim: Simulator,
        num_ports: int,
        link_config: LinkConfig,
        deliver: Callable[[Message], None],
        latency_us: float = 10.0,
        on_drop: Callable[[Message], None] | None = None,
    ) -> None:
        if num_ports < 2:
            raise NetworkError(f"a switch needs >= 2 ports, got {num_ports}")
        self.sim = sim
        self.num_ports = num_ports
        self.latency_us = latency_us
        self._deliver = deliver
        self._on_drop = on_drop
        self.downlinks: list[Link] = [
            Link(sim, link_config, deliver, name=f"down[{port}]")
            for port in range(num_ports)
        ]
        self.forwarded = 0
        self.dropped = 0

    def accept(self, message: Message) -> None:
        """Entry point for messages arriving from node uplinks."""
        if not 0 <= message.dst < self.num_ports:
            raise NetworkError(f"message to unknown port {message.dst}")
        self.sim.schedule(self.latency_us, self._forward, message)

    def _forward(self, message: Message) -> None:
        accepted = self.downlinks[message.dst].send(message)
        if accepted:
            self.forwarded += 1
        else:
            self.dropped += 1
            if self._on_drop is not None:
                self._on_drop(message)

    def port_queue_bytes(self, port: int) -> int:
        return self.downlinks[port].queued_bytes
