"""Message model for the cluster interconnect.

Every protocol interaction (page requests, diffs, write notices, lock
and barrier traffic, prefetches) travels as a :class:`Message`.  Sizes
are in *payload* bytes; the wire adds per-message protocol headers and
ATM cell framing (see :class:`repro.network.link.Link`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = [
    "MessageKind",
    "Message",
    "PRIORITY_DEMAND",
    "PRIORITY_NOTICE",
    "PRIORITY_PREFETCH",
]

_message_ids = itertools.count()

#: Traffic classes for the adaptive transport's backpressure machinery
#: (repro.network.transport).  Lower value = more urgent.  Demand
#: traffic — page faults, diffs, synchronization — is paced but never
#: shed; membership/write-notice announcements rank below it; prefetch
#: traffic is speculative and is shed first under congestion.
PRIORITY_DEMAND = 0
PRIORITY_NOTICE = 1
PRIORITY_PREFETCH = 2


class MessageKind(str, Enum):
    """The message vocabulary of the DSM protocol.

    The split mirrors TreadMarks: everything is reliable except prefetch
    traffic, which the paper deliberately leaves droppable (Section 3.1,
    footnote 3).
    """

    DIFF_REQUEST = "diff_request"
    DIFF_REPLY = "diff_reply"
    LOCK_REQUEST = "lock_request"
    LOCK_FORWARD = "lock_forward"
    LOCK_GRANT = "lock_grant"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"
    PREFETCH_REQUEST = "prefetch_request"
    PREFETCH_REPLY = "prefetch_reply"
    #: Transport-level acknowledgement (see repro.network.transport).
    ACK = "ack"
    #: Failure-detector liveness datagram (unreliable, see repro.ft).
    HEARTBEAT = "heartbeat"
    #: Coordinator's membership announcements (reliable).
    FT_DOWN = "ft_down"
    FT_UP = "ft_up"
    #: Coordinator -> healed node: partition is over, here is the
    #: authoritative membership (see repro.ft partition handling).
    FT_REJOIN = "ft_rejoin"
    #: Home-based LRC (repro.dsm.hlrc): whole-page fetch round trip to
    #: the page's home, and the eager diff flush that feeds the home.
    PAGE_REQUEST = "page_request"
    PAGE_REPLY = "page_reply"
    HOME_UPDATE = "home_update"
    #: Home's confirmation that an update is applied: the releaser
    #: blocks on it, so a barrier cut can never strand an un-applied
    #: diff in flight (the checkpoint would lose it forever).
    HOME_UPDATE_ACK = "home_update_ack"
    #: SC single-writer invalidate (repro.dsm.sc): directory-serialized
    #: ownership transactions — request to the page's manager, fetch
    #: forwarded to the owner, whole-page data to the requester,
    #: invalidation round trips, write grant, completion notice.
    SC_REQ = "sc_req"
    SC_FETCH = "sc_fetch"
    SC_DATA = "sc_data"
    SC_INVAL = "sc_inval"
    SC_INVAL_ACK = "sc_inval_ack"
    SC_GRANT = "sc_grant"
    SC_DONE = "sc_done"

    @property
    def is_prefetch(self) -> bool:
        return self in (MessageKind.PREFETCH_REQUEST, MessageKind.PREFETCH_REPLY)

    @property
    def is_control(self) -> bool:
        """Membership/liveness/ack traffic that a *fenced* node may still
        exchange: fencing rejects a suspect's data-plane writes but must
        keep the control plane open, or a partitioned node could never
        prove it healed (see repro.ft)."""
        return self in (
            MessageKind.ACK,
            MessageKind.HEARTBEAT,
            MessageKind.FT_DOWN,
            MessageKind.FT_UP,
            MessageKind.FT_REJOIN,
        )


#: Default backpressure class per message kind.  Demand faults, diffs
#: and synchronization outrank membership/notice announcements, which
#: outrank speculative prefetch traffic.
_DEFAULT_PRIORITY = {
    MessageKind.DIFF_REQUEST: PRIORITY_DEMAND,
    MessageKind.DIFF_REPLY: PRIORITY_DEMAND,
    MessageKind.LOCK_REQUEST: PRIORITY_DEMAND,
    MessageKind.LOCK_FORWARD: PRIORITY_DEMAND,
    MessageKind.LOCK_GRANT: PRIORITY_DEMAND,
    MessageKind.BARRIER_ARRIVE: PRIORITY_DEMAND,
    MessageKind.BARRIER_RELEASE: PRIORITY_DEMAND,
    MessageKind.ACK: PRIORITY_DEMAND,
    MessageKind.HEARTBEAT: PRIORITY_NOTICE,
    MessageKind.FT_DOWN: PRIORITY_NOTICE,
    MessageKind.FT_UP: PRIORITY_NOTICE,
    MessageKind.FT_REJOIN: PRIORITY_NOTICE,
    MessageKind.PREFETCH_REQUEST: PRIORITY_PREFETCH,
    MessageKind.PREFETCH_REPLY: PRIORITY_PREFETCH,
    # HLRC: a faulting thread stalls on the page round trip, and a home
    # update unblocks parked fetches — all demand class.
    MessageKind.PAGE_REQUEST: PRIORITY_DEMAND,
    MessageKind.PAGE_REPLY: PRIORITY_DEMAND,
    MessageKind.HOME_UPDATE: PRIORITY_DEMAND,
    MessageKind.HOME_UPDATE_ACK: PRIORITY_DEMAND,
    # SC: every kind sits on some thread's fault critical path.
    MessageKind.SC_REQ: PRIORITY_DEMAND,
    MessageKind.SC_FETCH: PRIORITY_DEMAND,
    MessageKind.SC_DATA: PRIORITY_DEMAND,
    MessageKind.SC_INVAL: PRIORITY_DEMAND,
    MessageKind.SC_INVAL_ACK: PRIORITY_DEMAND,
    MessageKind.SC_GRANT: PRIORITY_DEMAND,
    MessageKind.SC_DONE: PRIORITY_DEMAND,
}


@dataclass(slots=True)
class Message:
    """A single datagram between two nodes.

    Attributes:
        src: sending node id.
        dst: receiving node id.
        kind: protocol message type.
        size_bytes: payload size (headers added by the link model).
        payload: protocol-specific content (diff lists, vector clocks...).
        reliable: the message must arrive.  Without a transport layer the
            link model honours this magically (never dropped, only
            delayed); with :class:`~repro.network.transport.ReliableTransport`
            installed, reliable messages travel as droppable datagrams
            (``seq >= 0``) and reliability comes from retransmission.
        seq: transport sequence number; ``-1`` for untracked datagrams
            (prefetch traffic, acks, magically reliable messages).
        incarnation: the cluster incarnation the message was sent in,
            stamped by the network at send time.  Recovery bumps the
            cluster incarnation; deliveries from an older incarnation
            (in-flight traffic of a discarded execution) are dropped.
        corrupted: this *transmission* suffered injected bit corruption
            in the fabric (``repro.network.faults.BitCorruption``).  The
            flag models an end-to-end checksum: the receiving node
            verifies every arrival and discards corrupted frames before
            any protocol code (or liveness observer) sees them, exactly
            as a CRC mismatch would — a 32-bit CRC misses flips with
            probability ~2^-32, which rounds to never at our traffic
            volumes, so the simulation does not model silent passes.
            Per-transmission by construction: retransmissions and
            duplicate ghosts are :meth:`clone`\\ s, which reset it.
    """

    src: int
    dst: int
    kind: MessageKind
    size_bytes: int
    payload: dict[str, Any] = field(default_factory=dict)
    reliable: bool = True
    seq: int = -1
    incarnation: int = 0
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float = -1.0
    delivered_at: float = -1.0
    corrupted: bool = False
    #: Backpressure class (PRIORITY_*): defaults from the kind, may be
    #: tagged explicitly at construction.  -1 = derive from kind.
    priority: int = -1
    #: Which transmission attempt this wire copy is (1 = first flight).
    #: Stamped per copy by the adaptive transport and echoed back in
    #: the ack, pinning the ack to one copy — TCP timestamps in
    #: miniature, so retransmitted messages still yield unambiguous
    #: round-trip samples.  0 = untagged (static transport, untracked
    #: datagrams); :meth:`clone` resets it, each copy stamps its own.
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message to self: node {self.src}")
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")
        if self.priority < 0:
            self.priority = _DEFAULT_PRIORITY[self.kind]

    def clone(self) -> "Message":
        """A fresh wire copy (new msg_id, clean timestamps).

        Used for retransmissions and injected duplicates: each physical
        transmission owns its timestamps, while payload and ``seq``
        (the logical identity) are shared.
        """
        return Message(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            size_bytes=self.size_bytes,
            payload=self.payload,
            reliable=self.reliable,
            seq=self.seq,
            incarnation=self.incarnation,
            priority=self.priority,
        )

    @property
    def latency(self) -> float:
        """Wire latency in microseconds (valid after delivery)."""
        if self.delivered_at < 0 or self.sent_at < 0:
            raise ValueError("message not delivered yet")
        return self.delivered_at - self.sent_at
