"""Message model for the cluster interconnect.

Every protocol interaction (page requests, diffs, write notices, lock
and barrier traffic, prefetches) travels as a :class:`Message`.  Sizes
are in *payload* bytes; the wire adds per-message protocol headers and
ATM cell framing (see :class:`repro.network.link.Link`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["MessageKind", "Message"]

_message_ids = itertools.count()


class MessageKind(str, Enum):
    """The message vocabulary of the DSM protocol.

    The split mirrors TreadMarks: everything is reliable except prefetch
    traffic, which the paper deliberately leaves droppable (Section 3.1,
    footnote 3).
    """

    DIFF_REQUEST = "diff_request"
    DIFF_REPLY = "diff_reply"
    LOCK_REQUEST = "lock_request"
    LOCK_FORWARD = "lock_forward"
    LOCK_GRANT = "lock_grant"
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_RELEASE = "barrier_release"
    PREFETCH_REQUEST = "prefetch_request"
    PREFETCH_REPLY = "prefetch_reply"

    @property
    def is_prefetch(self) -> bool:
        return self in (MessageKind.PREFETCH_REQUEST, MessageKind.PREFETCH_REPLY)


@dataclass
class Message:
    """A single datagram between two nodes.

    Attributes:
        src: sending node id.
        dst: receiving node id.
        kind: protocol message type.
        size_bytes: payload size (headers added by the link model).
        payload: protocol-specific content (diff lists, vector clocks...).
        reliable: reliable messages are never dropped; unreliable ones
            (prefetch traffic) are dropped when a queue is full.
    """

    src: int
    dst: int
    kind: MessageKind
    size_bytes: int
    payload: dict[str, Any] = field(default_factory=dict)
    reliable: bool = True
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float = -1.0
    delivered_at: float = -1.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message to self: node {self.src}")
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")

    @property
    def latency(self) -> float:
        """Wire latency in microseconds (valid after delivery)."""
        if self.delivered_at < 0 or self.sent_at < 0:
            raise ValueError("message not delivered yet")
        return self.delivered_at - self.sent_at
