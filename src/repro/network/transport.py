"""Request/reply reliability over unreliable datagrams.

TreadMarks runs over UDP: datagrams drop, duplicate and reorder, and the
DSM is correct anyway because a retransmitting transport sits between
the protocol and the wire (paper, Section 3).  This module is that
layer.  One :class:`ReliableTransport` per node:

- **sender side** — every reliable protocol message gets a per
  (sender, destination) sequence number and goes out as a droppable
  datagram; a timer retransmits it with exponential backoff plus
  deterministic jitter until the destination acknowledges, up to a
  bounded retry count (then the message is abandoned: the give-up is
  counted in :class:`TransportStats` and reported to ``on_give_up`` so
  a failure detector can suspect the peer);
- **receiver side** — every tracked datagram is acknowledged (acks are
  themselves unreliable: a lost ack just provokes a retransmission),
  and duplicates — from retransmission races or injected faults — are
  suppressed before the protocol ever sees them.

The DSM protocol above is therefore unchanged: diff requests/replies,
write-notice propagation, lock grants and barrier messages simply stop
relying on the link model's "reliable messages are never lost" magic.
Prefetch traffic (``reliable=False``) deliberately bypasses the
transport — the paper drops prefetches rather than retransmit them.

Adaptive mode (``TransportConfig.adaptive``) replaces the static
timeout/retry policy with a feedback-driven one, per peer:

- **RTT estimation** — SRTT/RTTVAR via Jacobson's algorithm, giving
  ``RTO = SRTT + 4*RTTVAR`` clamped to ``[min_rto_us, max_rto_us]``.
  Each wire copy is stamped with its attempt number and the ack echoes
  it back (TCP timestamps in miniature), so even retransmitted
  messages yield unambiguous samples; echo-less acks fall back to
  Karn's rule (sample only single-flight frames).  A degraded link
  inflates the RTO instead of provoking spurious retransmits; a
  healthy one converges near the true round trip.
- **AIMD congestion control** — at most ``cwnd`` messages are in
  flight per peer: a timeout halves the window, a clean ack grows it
  additively.  Excess sends wait in a deterministic pacing queue,
  drained in priority order (demand before notices; prefetch traffic
  never reaches the transport — the prefetch engine sheds it at the
  source under pressure, see :mod:`repro.prefetch.engine`).
- **Deadline give-up** — a message is abandoned once it has been
  unacked for ``give_up_us`` (wall deadline, not a retry count);
  parked messages toward a live, unfenced peer are re-probed so a
  transient partition that never matured into a fence cannot strand
  them forever.

With ``adaptive=False`` (the default) every code path, RNG draw and
timer computation is identical to the static transport, so reports are
byte-identical to runs that predate the adaptive layer.

CPU accounting: initial sends are charged by the caller as before;
retransmissions and acks charge ``msg_send_cpu`` at handler priority,
so reliability overhead shows up in the DSM share of the breakdown.
(A pacing-queue drain injects the already-paid-for datagram without a
second send charge: the CPU cost was spent preparing the message at
``send_tracked`` time; only its NIC injection was deferred.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.errors import ConfigError
from repro.network.message import (
    Message,
    MessageKind,
    PRIORITY_NOTICE,
)
from repro.metrics.counters import Category
from repro.network.stats import TransportExtremes
from repro.sim import spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["TransportConfig", "TransportStats", "ReliableTransport"]

#: Matches repro.machine.node.HANDLER_PRIORITY (not imported: the
#: machine package imports repro.network, so importing back would cycle).
_HANDLER_PRIORITY = 0

#: Wire size of an acknowledgement (src, dst, seq + framing handled by
#: the link model like any other datagram).
ACK_BYTES = 16


@dataclass(frozen=True)
class TransportConfig:
    """Timeout/retry policy for the reliable transport."""

    #: Base retransmission timeout.  Generous relative to the fabric's
    #: RTT (a 4 KB diff costs ~230 us of serialization each way) so a
    #: fault-free run never retransmits spuriously.  In adaptive mode
    #: this is only the *initial* RTO, replaced by the Jacobson
    #: estimate after the first clean sample.
    timeout_us: float = 10_000.0
    #: Multiplier applied to the timeout after every expiry.
    backoff: float = 2.0
    #: Retransmissions per message before the transport gives up on it.
    #: (Adaptive mode gives up on the ``give_up_us`` deadline instead;
    #: the retry count remains a backstop for checkpoint-restored
    #: pendings whose original send time predates the rollback.)
    max_retries: int = 10
    #: Timeout jitter: each timer is stretched by up to this fraction,
    #: drawn from the experiment's seeded RNG (decorrelates senders).
    jitter_frac: float = 0.1
    #: Dedup horizon, in sequence numbers per peer: the receive window
    #: remembers at most this many seqs below the highest seen, so long
    #: chaos runs don't grow the table without bound.  A duplicate older
    #: than the horizon would be re-delivered — the window must exceed
    #: the per-link pipeline depth (a handful of messages) plus any
    #: parked-and-revived backlog, which the default covers by orders of
    #: magnitude.  This config field is the single source of truth:
    #: :meth:`_ReceiveWindow.accept` takes it as a required argument.
    dedup_window: int = 4096
    #: Enable the adaptive layer: RTT-estimated RTO, AIMD windowing,
    #: pacing, and deadline-based give-up.  Off by default — the static
    #: path is byte-identical to the pre-adaptive transport.
    adaptive: bool = False
    #: RTO clamp floor (adaptive): the estimator never retransmits
    #: faster than this, whatever the variance says.  The floor must
    #: cover the fabric's benign queuing tail (an ack serialized behind
    #: a multi-KB diff transfer), not just the smoothed RTT — variance
    #: decays between rare spikes, so ``SRTT + 4*RTTVAR`` alone would
    #: retransmit spuriously on a clean fabric.
    min_rto_us: float = 5_000.0
    #: RTO clamp ceiling (adaptive): also caps the per-attempt backoff,
    #: so a degraded peer is probed at least this often.  The ceiling
    #: bounds the worst post-heal wait after an outage (a retry timer
    #: armed just before the fabric heals burns at most one ceiling
    #: before probing again), so it is set as low as the slowest
    #: *learnable* fabric allows: it must stay above the estimator's
    #: converged RTO on the committed degraded fabric (~15 ms each way
    #: -> ~35-40 ms RTO), or every message there would retransmit
    #: spuriously forever.
    max_rto_us: float = 45_000.0
    #: Initial AIMD window, in messages, per peer (adaptive).
    cwnd_init: int = 4
    #: AIMD window ceiling (adaptive); also the bound the chaos
    #: harness's bounded-in-flight invariant checks against.
    cwnd_max: int = 64
    #: Unacked-age deadline after which an adaptive transport abandons
    #: a message (parks it and reports the peer to ``on_give_up``).
    #: With the park probe below, the deadline is the cadence at which
    #: an unreachable peer is re-probed *and* re-reported — shorter
    #: means faster post-outage recovery (park -> short probe beats
    #: riding out a fully backed-off ladder) at the cost of more
    #: suspicion reports during a real outage.
    give_up_us: float = 100_000.0
    #: Parked messages toward a live, unfenced peer are re-probed this
    #: long after the give-up (adaptive): a partition that healed
    #: before any fence/rejoin cycle must not strand them forever.
    #: Deliberately short (the RTO floor): toward a peer that still
    #: looks alive, a park is then just one more ladder step with a
    #: fresh give-up deadline — the ``on_give_up`` suspicion report
    #: still fires every deadline burn — while dead or fenced peers
    #: are guarded by the probe's down/fenced check and stay parked
    #: for rollback/rejoin.  A long interval here would turn every
    #: post-heal park into a stall an order of magnitude above the
    #: RTO ceiling.
    park_probe_us: float = 5_000.0
    #: Receiver-pressure signal (adaptive): a peer whose current RTO
    #: has inflated to at least this multiple of what the estimator
    #: alone would set is reported congested to
    #: :meth:`ReliableTransport.under_pressure` (the prefetch engine
    #: sheds speculative traffic on it).  Measuring *retained backoff*
    #: — not the RTO's absolute value — separates congestion from a
    #: fabric that is merely slow: a sustained latency shift re-derives
    #: the RTO from clean samples (no backoff retained, no pressure),
    #: while loss or an outage walks the RTO up multiplicatively past
    #: the estimate.  The default fires after one retained doubling.
    pressure_rtt_factor: float = 2.0
    #: Headroom multiplier over the decayed peak RTT (adaptive).  The
    #: RTO must cover the recent *tail* of the RTT distribution, and
    #: ``SRTT + 4*RTTVAR`` structurally underestimates it when spikes
    #: are bursty: the variance term decays between bursts, so the
    #: second burst retransmits spuriously even though the first one
    #: was observed in full.  A decaying per-peer maximum — the same
    #: max-filter idea BBR applies to its bandwidth estimate — keeps
    #: the RTO above recently seen worst-case round trips.
    peak_margin: float = 1.25
    #: Per-sample decay of the peak-RTT filter.  After a degradation
    #: episode ends, a few dozen clean samples walk the peak back down
    #: so both the RTO and the pressure signal recover instead of
    #: remembering the worst round trip forever.
    peak_decay: float = 0.95

    def __post_init__(self) -> None:
        if self.timeout_us <= 0:
            raise ConfigError(f"timeout_us must be positive, got {self.timeout_us}")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigError(f"jitter_frac must be in [0, 1], got {self.jitter_frac}")
        if self.dedup_window < 1:
            raise ConfigError(f"dedup_window must be >= 1, got {self.dedup_window}")
        if self.min_rto_us <= 0 or self.max_rto_us < self.min_rto_us:
            raise ConfigError(
                f"need 0 < min_rto_us <= max_rto_us, got "
                f"{self.min_rto_us}/{self.max_rto_us}"
            )
        if self.cwnd_init < 1 or self.cwnd_max < self.cwnd_init:
            raise ConfigError(
                f"need 1 <= cwnd_init <= cwnd_max, got "
                f"{self.cwnd_init}/{self.cwnd_max}"
            )
        if self.give_up_us <= 0:
            raise ConfigError(f"give_up_us must be positive, got {self.give_up_us}")
        if self.park_probe_us <= 0:
            raise ConfigError(f"park_probe_us must be positive, got {self.park_probe_us}")
        if self.pressure_rtt_factor < 1.0:
            raise ConfigError(
                f"pressure_rtt_factor must be >= 1, got {self.pressure_rtt_factor}"
            )
        if self.peak_margin < 1.0:
            raise ConfigError(f"peak_margin must be >= 1, got {self.peak_margin}")
        if not 0.0 < self.peak_decay < 1.0:
            raise ConfigError(f"peak_decay must be in (0, 1), got {self.peak_decay}")

    @property
    def initial_rto_us(self) -> float:
        """The adaptive estimator's pre-sample RTO (clamped base timeout)."""
        return min(self.max_rto_us, max(self.min_rto_us, self.timeout_us))


@dataclass
class TransportStats:
    """Per-node transport counters (aggregated into the run report)."""

    data_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    duplicates_suppressed: int = 0
    #: Messages abandoned after max_retries, by message kind.  The
    #: transport no longer raises out of the sim loop on exhaustion: it
    #: records the give-up here and notifies ``on_give_up`` (the failure
    #: detector, when FT is on) so the peer can be suspected.  The
    #: message itself is *parked*, not destroyed: if the membership
    #: layer later decides the peer was merely partitioned and rejoins
    #: it, :meth:`ReliableTransport.revive` puts parked messages back in
    #: flight.
    retries_exhausted: dict[str, int] = field(default_factory=dict)
    #: Parked messages put back in flight after a peer rejoined.
    revived: int = 0
    # Adaptive-layer counters (all zero with adaptive off).
    #: Sends deferred into the pacing queue by a full AIMD window.
    paced: int = 0
    #: Clean (Karn-admissible) RTT samples folded into the estimator.
    rtt_samples: int = 0
    #: AIMD multiplicative decreases (one per retransmission timeout).
    cwnd_halvings: int = 0
    #: High-water mark of per-peer in-flight unacked messages.
    max_in_flight: int = 0
    #: Parked messages re-flighted by the park probe (peer still live).
    park_probes: int = 0
    #: Retained-backoff retransmissions cut short by liveness evidence
    #: (an arrival from the peer while a pending sat on a backed-off
    #: timer; see :meth:`ReliableTransport._on_peer_evidence`).
    fast_reflights: int = 0
    #: Timeouts later proven spurious by an ack of a pre-retransmission
    #: copy (the Eifel undo reverts their AIMD halvings).
    spurious_timeouts: int = 0


@dataclass
class _Pending:
    """One in-flight reliable message awaiting its ack."""

    message: Message
    attempts: int = 1
    #: Bumped on every (re)send and on ack; stale timers check it.
    epoch: int = 0
    #: First transmission time (profiling and RTT sampling; -1 for
    #: pendings never transmitted yet — pacing-queued — or restored
    #: from a checkpoint, whose original send predates the rollback,
    #: and for revived re-flights, which Karn's rule excludes anyway).
    first_sent_at: float = -1.0
    #: Adaptive give-up deadline (absolute sim time; -1 = use the
    #: static retry-count policy).
    deadline_at: float = -1.0
    #: Transmission time of each wire copy, keyed by attempt number.
    #: The ack's attempt echo looks up the matching copy here, turning
    #: every ack — retransmitted messages included — into an exact
    #: round-trip sample.  Cleared on park/revive (fresh flights).
    send_times: dict[int, float] = field(default_factory=dict)
    #: AIMD halvings this message's timeouts caused, undone if the ack
    #: proves them spurious (see the Eifel undo in ``_on_ack``).
    halved: int = 0


@dataclass
class _PeerState:
    """Adaptive estimator + congestion state toward one destination."""

    srtt: float = -1.0  # -1 until the first Karn-clean sample
    rttvar: float = 0.0
    rto: float = 0.0
    #: Smallest clean sample ever (the RTT-inflation baseline).
    min_rtt: float = -1.0
    #: Decaying maximum of recent samples (the burst tail the RTO must
    #: cover; see ``TransportConfig.peak_margin``).
    peak_rtt: float = 0.0
    cwnd: float = 1.0
    in_flight: int = 0
    #: Pacing queues by priority class (demand, then notices).  Keys
    #: are (dst, seq); ``queued`` is the membership set so an ack or a
    #: park can lazily remove an entry without a deque scan.
    queues: tuple[deque, deque] = field(default_factory=lambda: (deque(), deque()))
    queued: set[tuple[int, int]] = field(default_factory=set)


@dataclass
class _ReceiveWindow:
    """Duplicate suppression state for one peer.

    Sequence numbers from a peer are delivered exactly once: a
    contiguous watermark plus the sparse set of out-of-order arrivals
    above it.  The sparse set is garbage-collected against a horizon
    ``window`` below the highest seq seen — without it, a permanently
    missing seq (a sender give-up that was never revived) would pin the
    watermark forever and the set would grow for the rest of the run.
    """

    upto: int = -1
    above: set[int] = field(default_factory=set)
    #: Highest seq ever seen from this peer (drives the GC horizon).
    high: int = -1

    def accept(self, seq: int, window: int) -> bool:
        """Record ``seq``; True if this is its first arrival.

        ``window`` is the caller's ``TransportConfig.dedup_window`` —
        deliberately not defaulted here, so the config stays the single
        source of truth for the horizon.
        """
        if seq <= self.upto or seq in self.above:
            return False
        self.above.add(seq)
        if seq > self.high:
            self.high = seq
        self._compact()
        floor = self.high - window
        if floor > self.upto:
            # Anything at or below the horizon is assumed seen: a gap
            # that old is an abandoned send, not an in-flight one.  (A
            # first arrival from below the horizon *would* be wrongly
            # suppressed — the window is sized so that cannot happen.)
            self.upto = floor
            self.above = {s for s in self.above if s > floor}
            self._compact()
        return True

    def _compact(self) -> None:
        while self.upto + 1 in self.above:
            self.upto += 1
            self.above.remove(self.upto)


class ReliableTransport:
    """Sequence numbers, acks, timeouts and retries for one node."""

    def __init__(self, node: "Node", config: TransportConfig, rng) -> None:
        self.node = node
        self.sim = node.sim
        self.network = node.network
        self.config = config
        self.stats = TransportStats()
        self.extremes = TransportExtremes()
        # Timeout jitter must be deterministic *per endpoint pair*: with
        # one stream per node, destination A's retry count would shift
        # which draws destination B's timers see, coupling unrelated
        # links.  Given a RandomSource, each destination gets its own
        # named stream; a bare numpy Generator (direct construction in
        # tests) falls back to node-wide draws.
        if isinstance(rng, np.random.Generator):
            self._random = None
            self._shared_rng = rng
        else:
            self._random = rng
            self._shared_rng = None
        self._adaptive = config.adaptive
        self._next_seq: dict[int, int] = {}  # destination -> next seq
        self._pending: dict[tuple[int, int], _Pending] = {}  # (dst, seq) -> state
        #: Messages abandoned after max_retries, keyed like _pending.
        #: They keep their seq: on revive the receiver's dedup window
        #: either delivers them (first arrival) or re-acks (the original
        #: did land before the give-up).
        self._parked: dict[tuple[int, int], _Pending] = {}
        self._windows: dict[int, _ReceiveWindow] = {}  # source -> dedup state
        #: Adaptive per-destination estimator/window state.
        self._peers: dict[int, _PeerState] = {}
        #: Source of timer epochs.  Transport-wide and monotonic — never
        #: rolled back — so timers armed before a crash rollback can
        #: never match a pending restored after it.
        self._timer_serial = 0
        #: Called as ``on_give_up(dst, message)`` when retries run out
        #: (wired to the failure detector's suspicion path under FT).
        self.on_give_up = None

    @property
    def adaptive(self) -> bool:
        return self._adaptive

    # -- sender side -------------------------------------------------------

    def send_tracked(self, message: Message) -> bool:
        """Take ownership of a reliable message and transmit it.

        Called by :meth:`Node.send_message` after the send CPU cost has
        been charged.  The message leaves as a droppable datagram; the
        transport guarantees (eventual) delivery, not this transmission.
        In adaptive mode a full congestion window defers the actual
        transmission into the pacing queue instead.
        """
        seq = self._next_seq.get(message.dst, 0)
        self._next_seq[message.dst] = seq + 1
        message.seq = seq
        message.reliable = False
        if self._adaptive:
            pending = _Pending(message, deadline_at=self.sim.now + self.config.give_up_us)
            self._pending[(message.dst, seq)] = pending
            self.stats.data_sent += 1
            peer = self._peer(message.dst)
            if peer.in_flight >= int(peer.cwnd):
                self._enqueue(peer, message.dst, seq, pending)
                return True
            self._admit(peer)
            pending.first_sent_at = self.sim.now
            message.attempt = 1
            pending.send_times[1] = self.sim.now
            self.network.send(message)
            self._arm_timer(message.dst, seq, pending)
            return True
        pending = _Pending(message, first_sent_at=self.sim.now)
        self._pending[(message.dst, seq)] = pending
        self.stats.data_sent += 1
        self.network.send(message)
        self._arm_timer(message.dst, seq, pending)
        return True

    def _peer(self, dst: int) -> _PeerState:
        peer = self._peers.get(dst)
        if peer is None:
            # The peak filter starts pessimistic — the tail is assumed
            # as bad as the initial RTO until samples decay it down —
            # so a first burst toward a freshly warmed-up peer (low
            # SRTT, but incast queuing an order of magnitude above it)
            # is covered without spurious retransmissions.
            peer = _PeerState(
                rto=self.config.initial_rto_us,
                cwnd=float(self.config.cwnd_init),
                peak_rtt=self.config.initial_rto_us / self.config.peak_margin**2,
            )
            self._peers[dst] = peer
        return peer

    def _admit(self, peer: _PeerState) -> None:
        peer.in_flight += 1
        if peer.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = peer.in_flight

    def _enqueue(self, peer: _PeerState, dst: int, seq: int, pending: _Pending) -> None:
        """Defer a transmission until the AIMD window opens (adaptive)."""
        prio = min(pending.message.priority, PRIORITY_NOTICE)
        peer.queues[prio].append((dst, seq))
        peer.queued.add((dst, seq))
        self.extremes.observe_backlog(len(peer.queued))
        self.stats.paced += 1
        self.node.events.messages_paced += 1
        self.network.stats.record_paced(pending.message)
        if self.sim.profile_on:
            self.sim.profile.count(self.node.node_id, "transport_paced")
        if self.sim.trace_on:
            self.sim.trace.instant(
                self.sim.now,
                "transport",
                "transport_paced",
                self.node.node_id,
                dst=dst,
                seq=seq,
                priority=pending.message.priority,
                kind=pending.message.kind.value,
            )

    def _dequeue(self, peer: _PeerState) -> Optional[tuple[int, int]]:
        for queue in peer.queues:
            while queue:
                key = queue.popleft()
                if key in peer.queued:
                    peer.queued.discard(key)
                    return key
        return None

    def _drain(self, dst: int, peer: _PeerState) -> None:
        """Transmit paced messages while the window has room (adaptive)."""
        while peer.in_flight < int(peer.cwnd):
            key = self._dequeue(peer)
            if key is None:
                return
            pending = self._pending.get(key)
            if pending is None:
                continue
            self._admit(peer)
            message = pending.message
            if message.sent_at >= 0:
                # A revived re-flight that queued: each wire copy owns
                # its timestamps, and Karn's rule already excludes it
                # from sampling (first_sent_at stays -1).
                message = message.clone()
                self.stats.retransmissions += 1
                self.node.events.retransmissions += 1
                self.network.stats.record_retransmit(message)
            else:
                pending.first_sent_at = self.sim.now
            message.attempt = pending.attempts
            pending.send_times[pending.attempts] = self.sim.now
            # The give-up clock starts at transmission, not at enqueue:
            # a message that sat out an outage in the pacing queue gets
            # its full deadline on the wire, instead of parking on its
            # first timeout after the fabric already healed.
            pending.deadline_at = self.sim.now + self.config.give_up_us
            self.network.send(message)
            self._arm_timer(key[0], key[1], pending)

    def _jitter_rng(self, dst: int) -> np.random.Generator:
        if self._random is None:
            return self._shared_rng
        return self._random.stream(f"transport[{self.node.node_id}->{dst}]")

    def _timeout_us(self, dst: int, attempts: int) -> float:
        if self._adaptive:
            # The peer RTO alone — every timeout already multiplies it
            # by ``backoff`` (Karn retention in :meth:`_on_timeout`), so
            # stacking an attempts exponent on top would back off
            # *doubly*: the ladder would blow past the give-up deadline
            # during an outage the singly-backed-off ladder (capped at
            # ``max_rto_us``) rides out and delivers through.
            base = min(self.config.max_rto_us, self._peer(dst).rto)
        else:
            base = self.config.timeout_us * self.config.backoff ** (attempts - 1)
        jitter = 1.0 + self.config.jitter_frac * float(self._jitter_rng(dst).random())
        return base * jitter

    def _arm_timer(self, dst: int, seq: int, pending: _Pending) -> None:
        self._timer_serial += 1
        pending.epoch = self._timer_serial
        self.sim.schedule(
            self._timeout_us(dst, pending.attempts), self._on_timeout, dst, seq, pending.epoch
        )

    def _give_up_due(self, pending: _Pending) -> bool:
        if self._adaptive and pending.deadline_at >= 0:
            return self.sim.now >= pending.deadline_at
        return pending.attempts > self.config.max_retries

    def _on_timeout(self, dst: int, seq: int, epoch: int) -> None:
        pending = self._pending.get((dst, seq))
        if pending is None or pending.epoch != epoch:
            return  # acked (or resent) in the meantime
        self.stats.timeouts += 1
        self.node.events.transport_timeouts += 1
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "transport",
                "transport_timeout",
                self.node.node_id,
                dst=dst,
                seq=seq,
                attempts=pending.attempts,
                kind=pending.message.kind.value,
                msg=f"m{pending.message.msg_id}",
            )
        if self._give_up_due(pending):
            # Give up gracefully: the message is parked, the give-up is
            # recorded, and the peer is reported as suspect.  Raising
            # here would unwind the whole simulation out of a timer
            # callback; a dead peer is a liveness problem for the
            # failure detector (or the deadlock watchdog), not a crash.
            # If the peer turns out to be partitioned rather than dead,
            # revive() puts the parked message back in flight.
            del self._pending[(dst, seq)]
            self._parked[(dst, seq)] = pending
            message = pending.message
            kind = message.kind.value
            self.stats.retries_exhausted[kind] = self.stats.retries_exhausted.get(kind, 0) + 1
            self.node.events.retries_exhausted += 1
            if self.sim.profile_on:
                pf = self.sim.profile
                # Named counters so chaos runs surface give-ups in the
                # compare CLI, per kind and in total.
                pf.count(self.node.node_id, "transport_retries_exhausted")
                pf.count(self.node.node_id, f"transport_retries_exhausted:{kind}")
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "transport",
                    "retries_exhausted",
                    self.node.node_id,
                    dst=dst,
                    seq=seq,
                    attempts=pending.attempts,
                    kind=kind,
                )
            if self._adaptive:
                peer = self._peer(dst)
                peer.in_flight = max(0, peer.in_flight - 1)
                # A give-up must never leave a fenced-in pacing backlog
                # behind: the freed window slot re-flights the queue.
                self._drain(dst, peer)
                # Self-healing probe: a partition can heal before any
                # fence (so no rejoin ever revives this message).  The
                # probe re-flights it if the peer still looks alive;
                # crashed/fenced peers are left to rollback/rejoin.
                self.sim.schedule(
                    self.config.park_probe_us, self._probe_parked, dst, seq
                )
            if self.on_give_up is not None:
                self.on_give_up(dst, message)
            return
        if self._adaptive:
            peer = self._peer(dst)
            peer.cwnd = max(1.0, peer.cwnd / 2.0)
            pending.halved += 1
            self.stats.cwnd_halvings += 1
            self.extremes.observe_cwnd(peer.cwnd)
            # Karn's other half: the backed-off RTO is retained for
            # subsequent messages until a fresh clean sample replaces
            # it.  Without this, a latency jump above the estimate
            # strands the estimator — every message gets retransmitted,
            # Karn's rule rejects every sample, and the RTO never
            # learns.  With it, a few timeouts walk the peer RTO up
            # past the new RTT, the next message survives un-resent,
            # and its sample re-seeds the estimator at the true value.
            peer.rto = min(self.config.max_rto_us, peer.rto * self.config.backoff)
            self.extremes.observe_rto(peer.rto)
            if self.sim.trace_on:
                self.sim.trace.instant(
                    self.sim.now,
                    "transport",
                    "cwnd_halved",
                    self.node.node_id,
                    dst=dst,
                    cwnd=round(peer.cwnd, 3),
                )
        pending.attempts += 1
        # Re-arm before the resend process runs: a retransmission stuck
        # behind a busy CPU must still be covered by a live timer.
        self._arm_timer(dst, seq, pending)
        spawn(
            self.sim,
            self._retransmit(dst, seq),
            name=f"rexmit[{self.node.node_id}]",
            group=f"node{self.node.node_id}",
        )

    def _retransmit(self, dst: int, seq: int) -> Generator:
        pending = self._pending.get((dst, seq))
        if pending is None:
            return
        yield from self.node.occupy(
            self.node.costs.msg_send_cpu, Category.DSM, priority=_HANDLER_PRIORITY
        )
        if (dst, seq) not in self._pending:
            return  # acked while waiting for the CPU
        self.stats.retransmissions += 1
        self.node.events.retransmissions += 1
        pf = self.sim.profile
        if pf.enabled and pending.first_sent_at >= 0:
            pf.observe(
                self.node.node_id, "retransmit_delay_us", self.sim.now - pending.first_sent_at
            )
        copy = pending.message.clone()
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "transport",
                "retransmit",
                self.node.node_id,
                dst=dst,
                seq=seq,
                attempts=pending.attempts,
                kind=copy.kind.value,
                # The wire copy's own correlation id: its msg:* async
                # span in the trace belongs to a retransmission, which
                # the critical-path analyzer blames as such.
                msg=f"m{copy.msg_id}",
            )
        self.network.stats.record_retransmit(copy)
        if self._adaptive:
            copy.attempt = pending.attempts
            pending.send_times[pending.attempts] = self.sim.now
        self.network.send(copy)

    def _probe_parked(self, dst: int, seq: int) -> None:
        """Adaptive park probe: re-flight a give-up whose peer is alive.

        Fenced peers are revived by the membership layer's rejoin, and
        crashed peers by checkpoint rollback — the probe covers the gap
        between them: a peer that was unreachable long enough to burn
        the give-up deadline but came back before any fence.
        """
        if (dst, seq) not in self._parked:
            return
        if self.network.is_down(dst) or self.network.is_fenced(dst):
            return
        self.stats.park_probes += 1
        if self.sim.trace_on:
            self.sim.trace.instant(
                self.sim.now, "transport", "park_probe", self.node.node_id, dst=dst, seq=seq
            )
        self._revive_keys(dst, [(dst, seq)])

    def _on_peer_evidence(self, src: int) -> None:
        """Adaptive fast re-flight: an arrival from ``src`` proves the
        path to it works *now*.

        During an outage the retained Karn backoff walks the peer RTO to
        its ceiling, so pendings sent just before the fabric healed sit
        on ceiling-length timers while a static transport's fresh exponential
        ladder would have recovered in a fraction of that.  Evidence of
        liveness cuts the wait: pendings that have gone unacked longer
        than the *estimator's* RTO (the retained backoff excluded) are
        retransmitted immediately, and parked give-ups toward the peer
        are revived without waiting for the park probe.  On a clean
        fabric the retained RTO equals the estimator's and this is a
        no-op; after a re-flight the pending's fresh send time keeps
        subsequent arrivals from re-triggering, so there is no storm.
        """
        if not self._adaptive:
            return
        if self.network.is_down(src) or self.network.is_fenced(src):
            return  # revival of those belongs to rollback/rejoin
        parked = sorted(key for key in self._parked if key[0] == src)
        if parked:
            self.stats.park_probes += len(parked)
            self._revive_keys(src, parked)
        peer = self._peers.get(src)
        if peer is None:
            return
        est = self._estimator_rto(peer)
        if peer.rto <= est:
            return  # no retained backoff to cut
        for key in sorted(self._pending):
            if key[0] != src:
                continue
            pending = self._pending[key]
            if key in peer.queued:
                continue  # pacing-queued, not on the wire
            last = max(pending.send_times.values(), default=pending.first_sent_at)
            if last < 0 or self.sim.now - last < est:
                continue
            self.stats.fast_reflights += 1
            pending.attempts += 1
            self._arm_timer(src, key[1], pending)
            spawn(
                self.sim,
                self._retransmit(src, key[1]),
                name=f"reflight[{self.node.node_id}]",
                group=f"node{self.node.node_id}",
            )

    def _revive_keys(self, dst: int, keys: list[tuple[int, int]]) -> int:
        """Re-flight parked messages (shared by revive and the probe)."""
        for key in keys:
            pending = self._parked.pop(key)
            pending.attempts = 1
            self._pending[key] = pending
            if self._adaptive:
                # A fresh give-up deadline and a clean attempt ledger:
                # the revived flight re-numbers from attempt 1, and any
                # straggler ack of a pre-park copy must not be allowed
                # to match a stale send time.
                pending.first_sent_at = -1.0
                pending.send_times.clear()
                pending.halved = 0
                pending.deadline_at = self.sim.now + self.config.give_up_us
                peer = self._peer(dst)
                if peer.in_flight >= int(peer.cwnd):
                    self._enqueue(peer, dst, key[1], pending)
                    continue
                self._admit(peer)
            self._arm_timer(dst, key[1], pending)
            spawn(
                self.sim,
                self._retransmit(dst, key[1]),
                name=f"revive[{self.node.node_id}]",
                group=f"node{self.node.node_id}",
            )
        return len(keys)

    def revive(self, dst: int) -> int:
        """Put every message parked for ``dst`` back in flight.

        Called by the membership layer when a fenced peer rejoins after
        a partition heals: the give-ups were wrong — the peer is alive —
        so each parked message gets a fresh retry budget and an
        immediate retransmission.  This is the targeted re-sync of the
        rejoin path: sequence numbers are unchanged, so the peer's
        dedup window delivers exactly the messages it missed and
        re-acks the ones that did land before the partition.
        """
        keys = sorted(key for key in self._parked if key[0] == dst)
        revived = self._revive_keys(dst, keys)
        self.stats.revived += revived
        return revived

    def revive_all(self) -> int:
        """Revive every parked message (the parking node itself rejoined:
        all its give-ups happened while it was cut off)."""
        total = 0
        for dst in sorted({key[0] for key in self._parked}):
            total += self.revive(dst)
        return total

    # -- adaptive estimator ------------------------------------------------

    def _estimator_rto(self, peer: _PeerState) -> float:
        """The clamped Jacobson RTO, ignoring any retained backoff.

        The peak-RTT term handles bursty queuing tails (an all-to-all
        exchange phase serializes replies at the responder, so round
        trips spike an order of magnitude above SRTT): Jacobson's
        variance decays between bursts, but the decayed-maximum filter
        remembers the tail long enough to cover the next one.
        """
        if peer.srtt < 0:
            return self.config.initial_rto_us
        return min(
            self.config.max_rto_us,
            max(
                self.config.min_rto_us,
                peer.srtt + 4.0 * peer.rttvar,
                self.config.peak_margin * peer.peak_rtt,
            ),
        )

    def _rtt_sample(self, dst: int, peer: _PeerState, sample: float) -> None:
        """Fold one Karn-clean ack round trip into Jacobson's estimator."""
        self.stats.rtt_samples += 1
        if peer.srtt < 0:
            peer.srtt = sample
            peer.rttvar = sample / 2.0
        else:
            peer.rttvar = 0.75 * peer.rttvar + 0.25 * abs(peer.srtt - sample)
            peer.srtt = 0.875 * peer.srtt + 0.125 * sample
        if peer.min_rtt < 0 or sample < peer.min_rtt:
            peer.min_rtt = sample
        peer.peak_rtt = max(sample, peer.peak_rtt * self.config.peak_decay)
        peer.rto = self._estimator_rto(peer)
        self.extremes.observe_rto(peer.rto)
        if self.sim.profile_on:
            pf = self.sim.profile
            pf.observe(self.node.node_id, "transport_rtt_us", sample)
            pf.observe(self.node.node_id, "transport_rto_us", peer.rto)
        if self.sim.trace_on:
            self.sim.trace.instant(
                self.sim.now,
                "transport",
                "rto_update",
                self.node.node_id,
                dst=dst,
                sample_us=round(sample, 3),
                srtt_us=round(peer.srtt, 3),
                rttvar_us=round(peer.rttvar, 3),
                rto_us=round(peer.rto, 3),
            )

    def under_pressure(self, dst: int) -> bool:
        """Backpressure signal for speculative senders (prefetch).

        True while the adaptive layer sees congestion toward ``dst``:
        either the AIMD window is saturated with a pacing backlog, or
        the peer is carrying retained timeout backoff — its RTO has
        been walked multiplicatively past what the estimator alone
        would set (loss or an outage does that; a fabric that is
        merely *slow* does not, because clean samples keep re-deriving
        the RTO, so speculative traffic is not shed just for latency).
        Always False with the adaptive layer off (the legacy
        drop-streak throttle applies instead).
        """
        if not self._adaptive:
            return False
        peer = self._peers.get(dst)
        if peer is None:
            return False
        if peer.queued:
            return True
        return peer.rto >= self.config.pressure_rtt_factor * self._estimator_rto(peer)

    def health_snapshot(self) -> dict:
        """Adaptive-layer health for ``RunReport.transport_health``.

        Keys are JSON-safe (peer ids as strings); values are rounded so
        the section is stable under serialization.
        """
        peers = {}
        for dst in sorted(self._peers):
            peer = self._peers[dst]
            peers[str(dst)] = {
                "srtt_us": round(peer.srtt, 3),
                "rttvar_us": round(peer.rttvar, 3),
                "rto_us": round(peer.rto, 3),
                "cwnd": round(peer.cwnd, 3),
                "in_flight": peer.in_flight,
                "queued": len(peer.queued),
            }
        parked_by_peer: dict[str, int] = {}
        for dst, _seq in sorted(self._parked):
            parked_by_peer[str(dst)] = parked_by_peer.get(str(dst), 0) + 1
        return {
            "peers": peers,
            "parked_by_peer": parked_by_peer,
            "unacked": len(self._pending),
            "pacing_backlog": sum(len(p.queued) for p in self._peers.values()),
            "max_in_flight": self.stats.max_in_flight,
            "paced": self.stats.paced,
            "rtt_samples": self.stats.rtt_samples,
            "cwnd_halvings": self.stats.cwnd_halvings,
            "park_probes": self.stats.park_probes,
            "fast_reflights": self.stats.fast_reflights,
            "spurious_timeouts": self.stats.spurious_timeouts,
            "extremes": self.extremes.as_dict(),
        }

    # -- receiver side -----------------------------------------------------

    def on_receive(self, message: Message) -> Generator:
        """Transport filter for every arriving message.

        Runs in the node's handler process (receive cost already
        charged).  Returns True if the message should be dispatched to
        the protocol, False if the transport consumed it (an ack or a
        suppressed duplicate).
        """
        if message.kind is MessageKind.ACK:
            self._on_ack(message)
            self._on_peer_evidence(message.src)
            return False
        # Every arrival — heartbeat, datagram, data — is liveness
        # evidence for its sender (see _on_peer_evidence).
        self._on_peer_evidence(message.src)
        if message.seq < 0:
            return True  # untracked datagram (prefetch traffic)
        window = self._windows.setdefault(message.src, _ReceiveWindow())
        first = window.accept(message.seq, self.config.dedup_window)
        if not first:
            self.stats.duplicates_suppressed += 1
            self.node.events.duplicates_suppressed += 1
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "transport",
                    "duplicate_suppressed",
                    self.node.node_id,
                    src=message.src,
                    seq=message.seq,
                    kind=message.kind.value,
                )
        # Ack every arrival, duplicate or not: the duplicate usually
        # means our previous ack was lost.
        yield from self.node.occupy(
            self.node.costs.msg_send_cpu, Category.DSM, priority=_HANDLER_PRIORITY
        )
        self.stats.acks_sent += 1
        self.node.events.acks_sent += 1
        ack_payload: dict = {"seq": message.seq}
        if message.attempt:
            # Echo which wire copy is being acked (adaptive senders
            # stamp it); static-mode acks are byte-identical without.
            ack_payload["attempt"] = message.attempt
        self.network.send(
            Message(
                src=self.node.node_id,
                dst=message.src,
                kind=MessageKind.ACK,
                size_bytes=ACK_BYTES,
                reliable=False,
                payload=ack_payload,
            )
        )
        return first

    def _on_ack(self, message: Message) -> None:
        self.stats.acks_received += 1
        key = (message.src, message.payload["seq"])
        pending = self._pending.pop(key, None)
        # A very late ack can land after the give-up: the peer did
        # receive the message, so the parked copy is obsolete.
        self._parked.pop(key, None)
        if not self._adaptive or pending is None:
            return
        dst = message.src
        peer = self._peer(dst)
        if key in peer.queued:
            # Acked while still pacing-queued: only possible for a
            # revived message whose pre-park transmission was acked
            # very late.  It never consumed a window slot.
            peer.queued.discard(key)
        else:
            peer.in_flight = max(0, peer.in_flight - 1)
            sent = pending.send_times.get(message.payload.get("attempt", 0))
            if sent is not None:
                # The attempt echo pins this ack to one wire copy, so
                # the round trip is unambiguous even for retransmitted
                # messages (where Karn's rule alone must discard the
                # measurement).  The sample carries the disambiguation
                # for free: a fast ack of the latest copy re-derives
                # the RTO from the estimator after a loss episode,
                # while a slow ack of the *first* copy measures the
                # post-jump RTT directly and hoists the RTO past it in
                # one update — no spurious-retransmission ladder walk.
                self._rtt_sample(dst, peer, self.sim.now - sent)
                if message.payload["attempt"] < pending.attempts and pending.halved:
                    # Eifel-style undo: the ack is for an *earlier* copy
                    # than the latest retransmission, so the message was
                    # never lost — the timeout was spurious (an RTT jump,
                    # not congestion) and its multiplicative decreases
                    # are reverted.  The sample above already re-derived
                    # the RTO from the new round trip.
                    self.stats.spurious_timeouts += pending.halved
                    peer.cwnd = min(
                        float(self.config.cwnd_max),
                        peer.cwnd * (2.0 ** pending.halved),
                    )
            elif pending.attempts == 1 and pending.first_sent_at >= 0:
                # Echo-less ack (e.g. for a copy predating a checkpoint
                # rollback): fall back to Karn's rule — only frames
                # transmitted exactly once yield an unambiguous sample.
                self._rtt_sample(dst, peer, self.sim.now - pending.first_sent_at)
            if peer.cwnd < self.config.cwnd_max:
                # Additive increase: ~one window per RTT of clean acks.
                peer.cwnd = min(float(self.config.cwnd_max), peer.cwnd + 1.0 / peer.cwnd)
        self._drain(dst, peer)

    # -- checkpoint/recovery ----------------------------------------------

    def snapshot_state(self) -> dict:
        """Copy of the sequencing state for a coordinated checkpoint.

        The send windows (next_seq), unacked pendings and receive
        windows are cut at the same instant, so they are mutually
        consistent: a restored pending whose original datagram did
        arrive pre-crash is suppressed by the restored receive window at
        its destination and simply re-acked.
        """
        return {
            "next_seq": dict(self._next_seq),
            "pending": {
                key: (state.message, state.attempts) for key, state in self._pending.items()
            },
            "windows": {
                src: (window.upto, set(window.above)) for src, window in self._windows.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot and re-arm a timer per unacked message.

        Timer epochs come from ``_timer_serial``, which is *not* rolled
        back: any timer armed before the rollback can never match a
        restored pending.  Adaptive estimator/window state is reset to
        its initial values — it described the discarded execution — and
        every restored pending re-enters the in-flight accounting.
        """
        self._next_seq = dict(state["next_seq"])
        self._windows = {
            src: _ReceiveWindow(
                upto=upto, above=set(above), high=max(above, default=upto)
            )
            for src, (upto, above) in state["windows"].items()
        }
        # Parked messages belong to the discarded execution: the
        # checkpointed pendings below cover everything unacked at the cut.
        self._parked = {}
        self._pending = {}
        self._peers = {}
        for (dst, seq), (message, attempts) in state["pending"].items():
            pending = _Pending(message, attempts=attempts)
            if self._adaptive:
                pending.deadline_at = self.sim.now + self.config.give_up_us
                self._admit(self._peer(dst))
            self._pending[(dst, seq)] = pending
            self._arm_timer(dst, seq, pending)
