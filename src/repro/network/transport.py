"""Request/reply reliability over unreliable datagrams.

TreadMarks runs over UDP: datagrams drop, duplicate and reorder, and the
DSM is correct anyway because a retransmitting transport sits between
the protocol and the wire (paper, Section 3).  This module is that
layer.  One :class:`ReliableTransport` per node:

- **sender side** — every reliable protocol message gets a per
  (sender, destination) sequence number and goes out as a droppable
  datagram; a timer retransmits it with exponential backoff plus
  deterministic jitter until the destination acknowledges, up to a
  bounded retry count (then the message is abandoned: the give-up is
  counted in :class:`TransportStats` and reported to ``on_give_up`` so
  a failure detector can suspect the peer);
- **receiver side** — every tracked datagram is acknowledged (acks are
  themselves unreliable: a lost ack just provokes a retransmission),
  and duplicates — from retransmission races or injected faults — are
  suppressed before the protocol ever sees them.

The DSM protocol above is therefore unchanged: diff requests/replies,
write-notice propagation, lock grants and barrier messages simply stop
relying on the link model's "reliable messages are never lost" magic.
Prefetch traffic (``reliable=False``) deliberately bypasses the
transport — the paper drops prefetches rather than retransmit them.

CPU accounting: initial sends are charged by the caller as before;
retransmissions and acks charge ``msg_send_cpu`` at handler priority,
so reliability overhead shows up in the DSM share of the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import ConfigError
from repro.network.message import Message, MessageKind
from repro.metrics.counters import Category
from repro.sim import spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.node import Node

__all__ = ["TransportConfig", "TransportStats", "ReliableTransport"]

#: Matches repro.machine.node.HANDLER_PRIORITY (not imported: the
#: machine package imports repro.network, so importing back would cycle).
_HANDLER_PRIORITY = 0

#: Wire size of an acknowledgement (src, dst, seq + framing handled by
#: the link model like any other datagram).
ACK_BYTES = 16


@dataclass(frozen=True)
class TransportConfig:
    """Timeout/retry policy for the reliable transport."""

    #: Base retransmission timeout.  Generous relative to the fabric's
    #: RTT (a 4 KB diff costs ~230 us of serialization each way) so a
    #: fault-free run never retransmits spuriously.
    timeout_us: float = 10_000.0
    #: Multiplier applied to the timeout after every expiry.
    backoff: float = 2.0
    #: Retransmissions per message before the transport gives up on it.
    max_retries: int = 10
    #: Timeout jitter: each timer is stretched by up to this fraction,
    #: drawn from the experiment's seeded RNG (decorrelates senders).
    jitter_frac: float = 0.1
    #: Dedup horizon, in sequence numbers per peer: the receive window
    #: remembers at most this many seqs below the highest seen, so long
    #: chaos runs don't grow the table without bound.  A duplicate older
    #: than the horizon would be re-delivered — the window must exceed
    #: the per-link pipeline depth (a handful of messages) plus any
    #: parked-and-revived backlog, which the default covers by orders of
    #: magnitude.
    dedup_window: int = 4096

    def __post_init__(self) -> None:
        if self.timeout_us <= 0:
            raise ConfigError(f"timeout_us must be positive, got {self.timeout_us}")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ConfigError(f"jitter_frac must be in [0, 1], got {self.jitter_frac}")
        if self.dedup_window < 1:
            raise ConfigError(f"dedup_window must be >= 1, got {self.dedup_window}")


@dataclass
class TransportStats:
    """Per-node transport counters (aggregated into the run report)."""

    data_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    duplicates_suppressed: int = 0
    #: Messages abandoned after max_retries, by message kind.  The
    #: transport no longer raises out of the sim loop on exhaustion: it
    #: records the give-up here and notifies ``on_give_up`` (the failure
    #: detector, when FT is on) so the peer can be suspected.  The
    #: message itself is *parked*, not destroyed: if the membership
    #: layer later decides the peer was merely partitioned and rejoins
    #: it, :meth:`ReliableTransport.revive` puts parked messages back in
    #: flight.
    retries_exhausted: dict[str, int] = field(default_factory=dict)
    #: Parked messages put back in flight after a peer rejoined.
    revived: int = 0


@dataclass
class _Pending:
    """One in-flight reliable message awaiting its ack."""

    message: Message
    attempts: int = 1
    #: Bumped on every (re)send and on ack; stale timers check it.
    epoch: int = 0
    #: First transmission time (profiling; -1 for pendings restored from
    #: a checkpoint, whose original send predates the rollback).
    first_sent_at: float = -1.0


@dataclass
class _ReceiveWindow:
    """Duplicate suppression state for one peer.

    Sequence numbers from a peer are delivered exactly once: a
    contiguous watermark plus the sparse set of out-of-order arrivals
    above it.  The sparse set is garbage-collected against a horizon
    ``window`` below the highest seq seen — without it, a permanently
    missing seq (a sender give-up that was never revived) would pin the
    watermark forever and the set would grow for the rest of the run.
    """

    upto: int = -1
    above: set[int] = field(default_factory=set)
    #: Highest seq ever seen from this peer (drives the GC horizon).
    high: int = -1

    def accept(self, seq: int, window: int = 4096) -> bool:
        """Record ``seq``; True if this is its first arrival."""
        if seq <= self.upto or seq in self.above:
            return False
        self.above.add(seq)
        if seq > self.high:
            self.high = seq
        self._compact()
        floor = self.high - window
        if floor > self.upto:
            # Anything at or below the horizon is assumed seen: a gap
            # that old is an abandoned send, not an in-flight one.  (A
            # first arrival from below the horizon *would* be wrongly
            # suppressed — the window is sized so that cannot happen.)
            self.upto = floor
            self.above = {s for s in self.above if s > floor}
            self._compact()
        return True

    def _compact(self) -> None:
        while self.upto + 1 in self.above:
            self.upto += 1
            self.above.remove(self.upto)


class ReliableTransport:
    """Sequence numbers, acks, timeouts and retries for one node."""

    def __init__(self, node: "Node", config: TransportConfig, rng) -> None:
        self.node = node
        self.sim = node.sim
        self.network = node.network
        self.config = config
        self.stats = TransportStats()
        # Timeout jitter must be deterministic *per endpoint pair*: with
        # one stream per node, destination A's retry count would shift
        # which draws destination B's timers see, coupling unrelated
        # links.  Given a RandomSource, each destination gets its own
        # named stream; a bare numpy Generator (direct construction in
        # tests) falls back to node-wide draws.
        if isinstance(rng, np.random.Generator):
            self._random = None
            self._shared_rng = rng
        else:
            self._random = rng
            self._shared_rng = None
        self._next_seq: dict[int, int] = {}  # destination -> next seq
        self._pending: dict[tuple[int, int], _Pending] = {}  # (dst, seq) -> state
        #: Messages abandoned after max_retries, keyed like _pending.
        #: They keep their seq: on revive the receiver's dedup window
        #: either delivers them (first arrival) or re-acks (the original
        #: did land before the give-up).
        self._parked: dict[tuple[int, int], _Pending] = {}
        self._windows: dict[int, _ReceiveWindow] = {}  # source -> dedup state
        #: Source of timer epochs.  Transport-wide and monotonic — never
        #: rolled back — so timers armed before a crash rollback can
        #: never match a pending restored after it.
        self._timer_serial = 0
        #: Called as ``on_give_up(dst, message)`` when retries run out
        #: (wired to the failure detector's suspicion path under FT).
        self.on_give_up = None

    # -- sender side -------------------------------------------------------

    def send_tracked(self, message: Message) -> bool:
        """Take ownership of a reliable message and transmit it.

        Called by :meth:`Node.send_message` after the send CPU cost has
        been charged.  The message leaves as a droppable datagram; the
        transport guarantees (eventual) delivery, not this transmission.
        """
        seq = self._next_seq.get(message.dst, 0)
        self._next_seq[message.dst] = seq + 1
        message.seq = seq
        message.reliable = False
        pending = _Pending(message, first_sent_at=self.sim.now)
        self._pending[(message.dst, seq)] = pending
        self.stats.data_sent += 1
        self.network.send(message)
        self._arm_timer(message.dst, seq, pending)
        return True

    def _jitter_rng(self, dst: int) -> np.random.Generator:
        if self._random is None:
            return self._shared_rng
        return self._random.stream(f"transport[{self.node.node_id}->{dst}]")

    def _timeout_us(self, dst: int, attempts: int) -> float:
        base = self.config.timeout_us * self.config.backoff ** (attempts - 1)
        jitter = 1.0 + self.config.jitter_frac * float(self._jitter_rng(dst).random())
        return base * jitter

    def _arm_timer(self, dst: int, seq: int, pending: _Pending) -> None:
        self._timer_serial += 1
        pending.epoch = self._timer_serial
        self.sim.schedule(
            self._timeout_us(dst, pending.attempts), self._on_timeout, dst, seq, pending.epoch
        )

    def _on_timeout(self, dst: int, seq: int, epoch: int) -> None:
        pending = self._pending.get((dst, seq))
        if pending is None or pending.epoch != epoch:
            return  # acked (or resent) in the meantime
        self.stats.timeouts += 1
        self.node.events.transport_timeouts += 1
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "transport",
                "transport_timeout",
                self.node.node_id,
                dst=dst,
                seq=seq,
                attempts=pending.attempts,
                kind=pending.message.kind.value,
                msg=f"m{pending.message.msg_id}",
            )
        if pending.attempts > self.config.max_retries:
            # Give up gracefully: the message is parked, the give-up is
            # recorded, and the peer is reported as suspect.  Raising
            # here would unwind the whole simulation out of a timer
            # callback; a dead peer is a liveness problem for the
            # failure detector (or the deadlock watchdog), not a crash.
            # If the peer turns out to be partitioned rather than dead,
            # revive() puts the parked message back in flight.
            del self._pending[(dst, seq)]
            self._parked[(dst, seq)] = pending
            message = pending.message
            kind = message.kind.value
            self.stats.retries_exhausted[kind] = self.stats.retries_exhausted.get(kind, 0) + 1
            self.node.events.retries_exhausted += 1
            if self.sim.profile_on:
                pf = self.sim.profile
                # Named counters so chaos runs surface give-ups in the
                # compare CLI, per kind and in total.
                pf.count(self.node.node_id, "transport_retries_exhausted")
                pf.count(self.node.node_id, f"transport_retries_exhausted:{kind}")
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "transport",
                    "retries_exhausted",
                    self.node.node_id,
                    dst=dst,
                    seq=seq,
                    attempts=pending.attempts,
                    kind=kind,
                )
            if self.on_give_up is not None:
                self.on_give_up(dst, message)
            return
        pending.attempts += 1
        # Re-arm before the resend process runs: a retransmission stuck
        # behind a busy CPU must still be covered by a live timer.
        self._arm_timer(dst, seq, pending)
        spawn(
            self.sim,
            self._retransmit(dst, seq),
            name=f"rexmit[{self.node.node_id}]",
            group=f"node{self.node.node_id}",
        )

    def _retransmit(self, dst: int, seq: int) -> Generator:
        pending = self._pending.get((dst, seq))
        if pending is None:
            return
        yield from self.node.occupy(
            self.node.costs.msg_send_cpu, Category.DSM, priority=_HANDLER_PRIORITY
        )
        if (dst, seq) not in self._pending:
            return  # acked while waiting for the CPU
        self.stats.retransmissions += 1
        self.node.events.retransmissions += 1
        pf = self.sim.profile
        if pf.enabled and pending.first_sent_at >= 0:
            pf.observe(
                self.node.node_id, "retransmit_delay_us", self.sim.now - pending.first_sent_at
            )
        copy = pending.message.clone()
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "transport",
                "retransmit",
                self.node.node_id,
                dst=dst,
                seq=seq,
                attempts=pending.attempts,
                kind=copy.kind.value,
                # The wire copy's own correlation id: its msg:* async
                # span in the trace belongs to a retransmission, which
                # the critical-path analyzer blames as such.
                msg=f"m{copy.msg_id}",
            )
        self.network.stats.record_retransmit(copy)
        self.network.send(copy)

    def revive(self, dst: int) -> int:
        """Put every message parked for ``dst`` back in flight.

        Called by the membership layer when a fenced peer rejoins after
        a partition heals: the give-ups were wrong — the peer is alive —
        so each parked message gets a fresh retry budget and an
        immediate retransmission.  This is the targeted re-sync of the
        rejoin path: sequence numbers are unchanged, so the peer's
        dedup window delivers exactly the messages it missed and
        re-acks the ones that did land before the partition.
        """
        keys = sorted(key for key in self._parked if key[0] == dst)
        for key in keys:
            pending = self._parked.pop(key)
            pending.attempts = 1
            self._pending[key] = pending
            self._arm_timer(dst, key[1], pending)
            spawn(
                self.sim,
                self._retransmit(dst, key[1]),
                name=f"revive[{self.node.node_id}]",
                group=f"node{self.node.node_id}",
            )
        self.stats.revived += len(keys)
        return len(keys)

    def revive_all(self) -> int:
        """Revive every parked message (the parking node itself rejoined:
        all its give-ups happened while it was cut off)."""
        total = 0
        for dst in sorted({key[0] for key in self._parked}):
            total += self.revive(dst)
        return total

    # -- receiver side -----------------------------------------------------

    def on_receive(self, message: Message) -> Generator:
        """Transport filter for every arriving message.

        Runs in the node's handler process (receive cost already
        charged).  Returns True if the message should be dispatched to
        the protocol, False if the transport consumed it (an ack or a
        suppressed duplicate).
        """
        if message.kind is MessageKind.ACK:
            self._on_ack(message)
            return False
        if message.seq < 0:
            return True  # untracked datagram (prefetch traffic)
        window = self._windows.setdefault(message.src, _ReceiveWindow())
        first = window.accept(message.seq, self.config.dedup_window)
        if not first:
            self.stats.duplicates_suppressed += 1
            self.node.events.duplicates_suppressed += 1
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "transport",
                    "duplicate_suppressed",
                    self.node.node_id,
                    src=message.src,
                    seq=message.seq,
                    kind=message.kind.value,
                )
        # Ack every arrival, duplicate or not: the duplicate usually
        # means our previous ack was lost.
        yield from self.node.occupy(
            self.node.costs.msg_send_cpu, Category.DSM, priority=_HANDLER_PRIORITY
        )
        self.stats.acks_sent += 1
        self.node.events.acks_sent += 1
        self.network.send(
            Message(
                src=self.node.node_id,
                dst=message.src,
                kind=MessageKind.ACK,
                size_bytes=ACK_BYTES,
                reliable=False,
                payload={"seq": message.seq},
            )
        )
        return first

    def _on_ack(self, message: Message) -> None:
        self.stats.acks_received += 1
        key = (message.src, message.payload["seq"])
        self._pending.pop(key, None)
        # A very late ack can land after the give-up: the peer did
        # receive the message, so the parked copy is obsolete.
        self._parked.pop(key, None)

    # -- checkpoint/recovery ----------------------------------------------

    def snapshot_state(self) -> dict:
        """Copy of the sequencing state for a coordinated checkpoint.

        The send windows (next_seq), unacked pendings and receive
        windows are cut at the same instant, so they are mutually
        consistent: a restored pending whose original datagram did
        arrive pre-crash is suppressed by the restored receive window at
        its destination and simply re-acked.
        """
        return {
            "next_seq": dict(self._next_seq),
            "pending": {
                key: (state.message, state.attempts) for key, state in self._pending.items()
            },
            "windows": {
                src: (window.upto, set(window.above)) for src, window in self._windows.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot and re-arm a timer per unacked message.

        Timer epochs come from ``_timer_serial``, which is *not* rolled
        back: any timer armed before the rollback can never match a
        restored pending.
        """
        self._next_seq = dict(state["next_seq"])
        self._windows = {
            src: _ReceiveWindow(
                upto=upto, above=set(above), high=max(above, default=upto)
            )
            for src, (upto, above) in state["windows"].items()
        }
        # Parked messages belong to the discarded execution: the
        # checkpointed pendings below cover everything unacked at the cut.
        self._parked = {}
        self._pending = {}
        for (dst, seq), (message, attempts) in state["pending"].items():
            pending = _Pending(message, attempts=attempts)
            self._pending[(dst, seq)] = pending
            self._arm_timer(dst, seq, pending)
