"""The cluster interconnect facade.

``Network`` wires ``num_nodes`` uplinks into a :class:`Switch` and
delivers messages to per-node handler callbacks.  This is the only
networking API the rest of the library uses::

    net = Network(sim, num_nodes=8)
    net.attach(0, handler_fn)          # handler_fn(Message) -> None
    net.send(Message(src=0, dst=1, ...))
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import NetworkError
from repro.network.link import Link, LinkConfig
from repro.network.message import Message
from repro.network.stats import TrafficStats
from repro.network.switch import Switch
from repro.sim import Simulator

__all__ = ["Network"]


class Network:
    """Star-topology interconnect: node uplinks -> switch -> downlinks."""

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        link_config: Optional[LinkConfig] = None,
        switch_latency_us: float = 10.0,
    ) -> None:
        if num_nodes < 2:
            raise NetworkError(f"a network needs >= 2 nodes, got {num_nodes}")
        self.sim = sim
        self.num_nodes = num_nodes
        self.link_config = link_config or LinkConfig()
        self.stats = TrafficStats()
        self._handlers: dict[int, Callable[[Message], None]] = {}
        #: Cluster incarnation: bumped by crash recovery.  Messages are
        #: stamped at send time; deliveries from an older incarnation
        #: (in-flight traffic of a rolled-back execution) are dropped.
        self.incarnation = 0
        #: Nodes currently crashed: their links are silent both ways.
        self._down: set[int] = set()
        #: Nodes currently fenced by the membership layer: suspected
        #: (e.g. partitioned) but not declared dead.  Data-plane traffic
        #: touching a fenced node is dropped — its writes must not leak
        #: into the cluster, nor the cluster's into it — while control
        #: traffic (acks, heartbeats, membership) still flows, so the
        #: node can prove it healed and rejoin without a full rollback.
        self._fenced: set[int] = set()
        self.switch = Switch(
            sim,
            num_nodes,
            self.link_config,
            self._deliver,
            latency_us=switch_latency_us,
            on_drop=self._on_switch_drop,
        )
        self.uplinks: list[Link] = [
            Link(sim, self.link_config, self.switch.accept, name=f"up[{node}]")
            for node in range(num_nodes)
        ]

    def attach(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Register the delivery callback for ``node_id``."""
        if not 0 <= node_id < self.num_nodes:
            raise NetworkError(f"unknown node {node_id}")
        if node_id in self._handlers:
            raise NetworkError(f"node {node_id} already attached")
        self._handlers[node_id] = handler

    def send(self, message: Message) -> bool:
        """Inject a message at its source uplink.

        Returns False if the message was dropped before reaching the
        wire (uplink queue full, or an injected fault — possible only
        for droppable messages).  A drop at the switch downlink is
        recorded in stats but not reported to the sender — exactly like
        a real datagram network.
        """
        self._check_destination(message)
        message.incarnation = self.incarnation
        return self._inject(message)

    # -- node up/down state ------------------------------------------------

    def mark_down(self, node_id: int) -> None:
        """Silence a node's links in both directions (crash-stop)."""
        if not 0 <= node_id < self.num_nodes:
            raise NetworkError(f"unknown node {node_id}")
        self._down.add(node_id)

    def mark_up(self, node_id: int) -> None:
        self._down.discard(node_id)

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def fence_node(self, node_id: int) -> None:
        """Reject a suspect's data-plane traffic, keep its control plane."""
        if not 0 <= node_id < self.num_nodes:
            raise NetworkError(f"unknown node {node_id}")
        self._fenced.add(node_id)

    def unfence_node(self, node_id: int) -> None:
        self._fenced.discard(node_id)

    def is_fenced(self, node_id: int) -> bool:
        return node_id in self._fenced

    def _check_destination(self, message: Message) -> None:
        if message.dst not in self._handlers:
            raise NetworkError(f"destination node {message.dst} not attached")

    def _inject(self, message: Message) -> bool:
        """Hand the message to its source uplink, with send accounting.

        A message counts as *sent* only once the uplink accepts it; an
        uplink-queue drop is recorded as a drop, not a send.
        """
        message.sent_at = self.sim.now
        accepted = self.uplinks[message.src].send(message)
        if accepted:
            self.stats.record_send(message)
            if self.sim.trace_on:
                tr = self.sim.trace
                # In-flight span, closed at delivery; a dropped message
                # leaves an unterminated async slice (by design).
                tr.async_begin(
                    self.sim.now,
                    "network",
                    f"msg:{message.kind.value}",
                    message.src,
                    f"m{message.msg_id}",
                    dst=message.dst,
                    bytes=message.size_bytes,
                    seq=message.seq,
                )
        else:
            self.stats.record_drop(message)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "network",
                    "msg_drop",
                    message.src,
                    kind=message.kind.value,
                    dst=message.dst,
                    at="uplink",
                )
        return accepted

    def _on_switch_drop(self, message: Message) -> None:
        self.stats.record_drop(message)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.instant(
                self.sim.now,
                "network",
                "msg_drop",
                message.src,
                kind=message.kind.value,
                dst=message.dst,
                at="switch",
                msg=f"m{message.msg_id}",
            )

    def _deliver(self, message: Message) -> None:
        fenced = (
            message.src in self._fenced or message.dst in self._fenced
        ) and not message.kind.is_control
        if (
            message.incarnation != self.incarnation
            or message.src in self._down
            or message.dst in self._down
            or fenced
        ):
            # Traffic from a rolled-back incarnation, touching a crashed
            # node, or data-plane traffic touching a fenced suspect: the
            # wire eats it silently (for fenced nodes the transport keeps
            # retrying until the membership layer resolves the suspicion).
            if message.incarnation != self.incarnation:
                reason = "stale"
            elif fenced:
                reason = "fenced"
            else:
                reason = "down"
            self.stats.record_drop(message)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "network",
                    "msg_drop",
                    message.src,
                    kind=message.kind.value,
                    dst=message.dst,
                    at=reason,
                    msg=f"m{message.msg_id}",
                )
            return
        message.delivered_at = self.sim.now
        self.stats.record_delivery(message)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.async_end(
                self.sim.now,
                "network",
                f"msg:{message.kind.value}",
                message.dst,
                f"m{message.msg_id}",
                src=message.src,
                # Redundant with the matching async b, but lets the PAG
                # reconstruct the wire edge even when the ring sink
                # dropped the begin event (the validator flags that).
                sent_at=message.sent_at,
            )
        self._handlers[message.dst](message)

    # -- inspection --------------------------------------------------------

    def dropped_at_switch(self) -> int:
        return self.switch.dropped

    def total_drops(self) -> int:
        """All drops (uplink + switch downlink); stats records both."""
        return self.stats.total_drops
