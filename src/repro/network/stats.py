"""Traffic accounting for the interconnect.

Tracks, per message kind and overall: message counts, payload bytes,
drops, and latency sums — enough to regenerate the "Total Traffic" and
"All Messages" columns of the paper's Tables 1 and 2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.network.message import Message, MessageKind

__all__ = ["TrafficStats"]


@dataclass
class TrafficStats:
    """Aggregate counters, updated by the :class:`~repro.network.network.Network`."""

    messages_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    drops_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    latency_sum_by_kind: dict[MessageKind, float] = field(default_factory=lambda: defaultdict(float))
    delivered_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))

    def record_send(self, message: Message) -> None:
        self.messages_by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += message.size_bytes

    def record_drop(self, message: Message) -> None:
        self.drops_by_kind[message.kind] += 1

    def record_delivery(self, message: Message) -> None:
        self.delivered_by_kind[message.kind] += 1
        self.latency_sum_by_kind[message.kind] += message.latency

    # -- aggregates -------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    @property
    def total_drops(self) -> int:
        return sum(self.drops_by_kind.values())

    def mean_latency(self, kind: MessageKind) -> float:
        delivered = self.delivered_by_kind.get(kind, 0)
        if delivered == 0:
            return 0.0
        return self.latency_sum_by_kind[kind] / delivered

    def summary(self) -> dict[str, float]:
        """Flat dict used by reports and tests."""
        return {
            "messages": self.total_messages,
            "kbytes": self.total_bytes / 1024.0,
            "drops": self.total_drops,
        }
