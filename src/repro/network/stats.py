"""Traffic accounting for the interconnect.

Tracks, per message kind and overall: message counts, payload bytes,
drops, and latency sums — enough to regenerate the "Total Traffic" and
"All Messages" columns of the paper's Tables 1 and 2.

The reliability layers add two more families of counters:

- *injected faults* (:meth:`TrafficStats.record_injected`), recorded by
  the fault-injection layer per fault kind (drop, duplicate, delay,
  degrade, stall, partition, corrupt) and message kind;
- *retransmissions* (:meth:`TrafficStats.record_retransmit`), recorded
  by the reliable transport whenever a timeout forces a resend;
- *backpressure* (:meth:`TrafficStats.record_paced` and
  :meth:`TrafficStats.record_shed`), recorded by the adaptive transport
  when a send is deferred into the pacing queue and by the prefetch
  engine when a speculative request is shed at the source.

:meth:`TrafficStats.kind_breakdown` flattens everything into one
per-kind table, so experiment output can separate prefetch-drop
behaviour from protocol-retransmit behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.network.message import Message, MessageKind

__all__ = ["TrafficStats", "TransportExtremes", "FAULT_KINDS"]

#: The fault vocabulary of the injection layer (repro.network.faults).
FAULT_KINDS = ("drop", "duplicate", "delay", "degrade", "stall", "partition", "corrupt")


@dataclass
class TransportExtremes:
    """Worst-case excursions of the adaptive transport's live state.

    End-of-run gauges (``health_snapshot``) only show *final* values: a
    congestion window that collapsed to the floor mid-run and recovered
    looks identical to one that never moved.  These watermarks record
    the excursions themselves, deterministically, without telemetry:

    - ``max_backlog`` — high-water mark of any single peer's pacing
      queue (sends deferred by a full AIMD window);
    - ``min_cwnd`` — smallest congestion window any multiplicative
      decrease produced (``-1`` until the first halving: a window that
      never shrank has no meaningful minimum);
    - ``max_rto_us`` — largest RTO the estimator or retained timeout
      backoff ever set.
    """

    max_backlog: int = 0
    min_cwnd: float = -1.0
    max_rto_us: float = 0.0

    def observe_backlog(self, backlog: int) -> None:
        if backlog > self.max_backlog:
            self.max_backlog = backlog

    def observe_cwnd(self, cwnd: float) -> None:
        if self.min_cwnd < 0 or cwnd < self.min_cwnd:
            self.min_cwnd = cwnd

    def observe_rto(self, rto_us: float) -> None:
        if rto_us > self.max_rto_us:
            self.max_rto_us = rto_us

    def as_dict(self) -> dict[str, float]:
        return {
            "max_backlog": self.max_backlog,
            "min_cwnd": round(self.min_cwnd, 3),
            "max_rto_us": round(self.max_rto_us, 3),
        }


@dataclass
class TrafficStats:
    """Aggregate counters, updated by the :class:`~repro.network.network.Network`."""

    messages_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    drops_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    latency_sum_by_kind: dict[MessageKind, float] = field(default_factory=lambda: defaultdict(float))
    delivered_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    retransmits_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    #: fault name -> message kind -> count of injected faults.
    injected_by_fault: dict[str, dict[MessageKind, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    #: Sends deferred by the adaptive transport's pacing queue.
    paced_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))
    #: Speculative messages shed at the source under backpressure.
    shed_by_kind: dict[MessageKind, int] = field(default_factory=lambda: defaultdict(int))

    def record_send(self, message: Message) -> None:
        self.messages_by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += message.size_bytes

    def record_drop(self, message: Message) -> None:
        self.drops_by_kind[message.kind] += 1

    def record_delivery(self, message: Message) -> None:
        self.delivered_by_kind[message.kind] += 1
        self.latency_sum_by_kind[message.kind] += message.latency

    def record_retransmit(self, message: Message) -> None:
        self.retransmits_by_kind[message.kind] += 1

    def record_injected(self, fault: str, message: Message) -> None:
        self.injected_by_fault[fault][message.kind] += 1

    def record_paced(self, message: Message) -> None:
        self.paced_by_kind[message.kind] += 1

    def record_shed(self, kind: MessageKind) -> None:
        """Shed messages never exist as objects — recorded by kind."""
        self.shed_by_kind[kind] += 1

    # -- aggregates -------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    @property
    def total_drops(self) -> int:
        return sum(self.drops_by_kind.values())

    @property
    def total_retransmits(self) -> int:
        return sum(self.retransmits_by_kind.values())

    @property
    def total_injected_faults(self) -> int:
        return sum(sum(by_kind.values()) for by_kind in self.injected_by_fault.values())

    @property
    def total_paced(self) -> int:
        return sum(self.paced_by_kind.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed_by_kind.values())

    def injected_count(self, fault: str) -> int:
        return sum(self.injected_by_fault.get(fault, {}).values())

    def mean_latency(self, kind: MessageKind) -> float:
        delivered = self.delivered_by_kind.get(kind, 0)
        if delivered == 0:
            return 0.0
        return self.latency_sum_by_kind[kind] / delivered

    def kind_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-message-kind table: sent/delivered/dropped/retransmits/faults.

        Keys are the ``MessageKind`` values (strings), so the table is
        JSON-friendly for reports and experiment output.
        """
        kinds: set[MessageKind] = set()
        for counters in (
            self.messages_by_kind,
            self.delivered_by_kind,
            self.drops_by_kind,
            self.retransmits_by_kind,
            self.paced_by_kind,
            self.shed_by_kind,
        ):
            kinds.update(counters)
        for by_kind in self.injected_by_fault.values():
            kinds.update(by_kind)
        table: dict[str, dict[str, float]] = {}
        for kind in sorted(kinds, key=lambda k: k.value):
            row: dict[str, float] = {
                "sent": self.messages_by_kind.get(kind, 0),
                "kbytes": self.bytes_by_kind.get(kind, 0) / 1024.0,
                "delivered": self.delivered_by_kind.get(kind, 0),
                "dropped": self.drops_by_kind.get(kind, 0),
                "retransmits": self.retransmits_by_kind.get(kind, 0),
                "mean_latency_us": self.mean_latency(kind),
            }
            for fault in FAULT_KINDS:
                count = self.injected_by_fault.get(fault, {}).get(kind, 0)
                if count:
                    row[f"injected_{fault}s"] = count
            # Backpressure columns appear only when nonzero (like the
            # injected-fault columns): static runs stay byte-identical.
            paced = self.paced_by_kind.get(kind, 0)
            if paced:
                row["paced"] = paced
            shed = self.shed_by_kind.get(kind, 0)
            if shed:
                row["shed"] = shed
            table[kind.value] = row
        return table

    def summary(self) -> dict[str, float]:
        """Flat dict used by reports and tests."""
        return {
            "messages": self.total_messages,
            "kbytes": self.total_bytes / 1024.0,
            "drops": self.total_drops,
            "retransmits": self.total_retransmits,
            "injected_faults": self.total_injected_faults,
        }
