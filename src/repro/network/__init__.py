"""ATM cluster interconnect model (links, switch, messages, traffic stats)."""

from repro.network.link import Link, LinkConfig
from repro.network.message import Message, MessageKind
from repro.network.network import Network
from repro.network.stats import TrafficStats
from repro.network.switch import Switch

__all__ = ["Link", "LinkConfig", "Message", "MessageKind", "Network", "Switch", "TrafficStats"]
