"""ATM cluster interconnect model (links, switch, messages, traffic
stats), plus the robustness layers: deterministic fault injection and
the reliable request/reply transport."""

from repro.network.faults import (
    BitCorruption,
    FaultPlan,
    FaultyNetwork,
    LinkDegradation,
    LinkPartition,
    NodeCrash,
    NodeStall,
)
from repro.network.link import Link, LinkConfig
from repro.network.message import (
    PRIORITY_DEMAND,
    PRIORITY_NOTICE,
    PRIORITY_PREFETCH,
    Message,
    MessageKind,
)
from repro.network.network import Network
from repro.network.stats import TrafficStats
from repro.network.switch import Switch
from repro.network.transport import ReliableTransport, TransportConfig, TransportStats

__all__ = [
    "BitCorruption",
    "FaultPlan",
    "FaultyNetwork",
    "Link",
    "LinkConfig",
    "LinkDegradation",
    "LinkPartition",
    "Message",
    "MessageKind",
    "Network",
    "NodeCrash",
    "NodeStall",
    "PRIORITY_DEMAND",
    "PRIORITY_NOTICE",
    "PRIORITY_PREFETCH",
    "ReliableTransport",
    "Switch",
    "TrafficStats",
    "TransportConfig",
    "TransportStats",
]
