"""TreadMarks-style lazy release consistency protocol."""

from repro.dsm.barriers import BarrierSubsystem
from repro.dsm.interval import DiffStore, IntervalManager, StoredDiff
from repro.dsm.locks import LockState, LockSubsystem
from repro.dsm.pagestate import PageCoherence
from repro.dsm.protocol import DsmNode
from repro.dsm.vclock import VectorClock
from repro.dsm.writenotice import WriteNotice, WriteNoticeLog

__all__ = [
    "BarrierSubsystem",
    "DiffStore",
    "DsmNode",
    "IntervalManager",
    "LockState",
    "LockSubsystem",
    "PageCoherence",
    "StoredDiff",
    "VectorClock",
    "WriteNotice",
    "WriteNoticeLog",
]
