"""The per-node DSM protocol engine.

``DsmNode`` is the protocol *host* for one node: it owns what every
coherence protocol shares — the lock and barrier subsystems, the
prefetch/FT hooks, message dispatch, and the fault counters — and
delegates everything protocol-specific to a
:class:`~repro.dsm.backend.CoherenceBackend` strategy selected by
``RunConfig.protocol`` (``lrc`` / ``hlrc`` / ``sc``).

:class:`LrcBackend`, defined here, is the default: TreadMarks-style
lazy release consistency with vector clocks, intervals, write notices,
twins and diffs.

Design notes (LRC)
------------------
Diffs are created lazily, at request time.  Flushing a dirty page tags
the diff as covering through the *open* interval (``vc.own + 1``): the
write notice for those modifications will carry exactly that index when
the interval closes.  A page re-dirtied after being flushed within the
same interval forces the interval closed first (the paper's
"sub-intervals", Section 3.1), so a diff can never silently cover
modifications announced under a later notice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.dsm.backend import CoherenceBackend, make_backend
from repro.dsm.barriers import BarrierSubsystem
from repro.dsm.interval import DiffStore, IntervalManager, StoredDiff
from repro.dsm.locks import LockSubsystem
from repro.dsm.pagestate import PageCoherence
from repro.dsm.vclock import VectorClock
from repro.dsm.writenotice import WriteNotice, WriteNoticeLog
from repro.errors import ProtocolError
from repro.machine.node import Node
from repro.memory import apply_diff, make_diff
from repro.metrics.counters import Category
from repro.network import PRIORITY_DEMAND, Message, MessageKind
from repro.sim import Event, spawn

if TYPE_CHECKING:  # pragma: no cover
    from repro.prefetch.engine import PrefetchEngine

__all__ = ["DsmNode", "LrcBackend"]


class DsmNode:
    """The DSM protocol host for one node."""

    def __init__(self, node: Node, num_nodes: int, protocol: str = "lrc") -> None:
        self.node = node
        self.sim = node.sim
        self.node_id = node.node_id
        self.num_nodes = num_nodes
        #: optional prefetch engine (installed by the runtime when on).
        self.prefetch: Optional["PrefetchEngine"] = None
        #: optional fault-tolerance manager (installed by the runtime);
        #: receives heartbeat/membership messages and barrier-epoch
        #: checkpoint opportunities.
        self.ft = None
        # statistics (host-owned: monotone across rollbacks, and the
        # fault counter names trace correlation ids).
        self.faults = 0
        self.diff_requests_served = 0
        self.backend: CoherenceBackend = make_backend(protocol, self)
        self.locks = LockSubsystem(self)
        self.barriers = BarrierSubsystem(self)
        node.set_message_handler(self.dispatch)

    @property
    def protocol(self) -> str:
        return self.backend.name

    # -- protocol-state views (backend-owned; SC serves inert instances) ----

    @property
    def vc(self) -> VectorClock:
        return self.backend.vc

    @property
    def intervals(self) -> IntervalManager:
        return self.backend.intervals

    @property
    def wn_log(self) -> WriteNoticeLog:
        return self.backend.wn_log

    @property
    def diff_store(self) -> DiffStore:
        return self.backend.diff_store

    # -- small helpers -----------------------------------------------------

    def coherence(self, page_id: int) -> PageCoherence:
        return self.backend.coherence(page_id)

    def page_valid(self, page_id: int) -> bool:
        return self.backend.page_valid(page_id)

    def page_writable(self, page_id: int) -> bool:
        return self.backend.page_writable(page_id)

    def send(self, message: Message):
        """Generator: charge the send cost and inject the message."""
        return self.node.send_message(message)

    def label_edge(self, message: Message, role: str, **entity) -> None:
        """Attach an entity label to a causal message edge (trace only).

        Emitted at message *construction* (before the send charge) as a
        ``pag_edge`` instant carrying the message's correlation id plus
        the protocol entity it serves (``page=``/``lock=``/``barrier=``).
        The program-activity-graph builder joins these to the network's
        ``msg:*`` async spans by id, so wire edges on the critical path
        are blamed on concrete pages, locks and barriers.  The instant's
        own timestamp is irrelevant — matching is purely by ``msg``.
        """
        if self.sim.trace_on:
            self.sim.trace.instant(
                self.sim.now,
                "protocol",
                "pag_edge",
                self.node_id,
                msg=f"m{message.msg_id}",
                role=role,
                **entity,
            )

    # ``occupy_dsm`` is used heavily by the subsystems.
    def _occupy_dsm(self, duration: float):
        yield from self.node.occupy(duration, Category.DSM)

    # -- delegated protocol surface ----------------------------------------

    def close_interval_charged(self) -> Generator:
        """The release action (protocol-specific)."""
        return self.backend.close_interval_charged()

    def apply_notices_charged(
        self, notices: list[WriteNotice], advance_vc: bool = True
    ) -> Generator:
        """The acquire action (protocol-specific)."""
        return self.backend.apply_notices_charged(notices, advance_vc)

    def op_write_touch(self, page_id: int) -> Generator:
        return self.backend.op_write_touch(page_id)

    def ensure_valid(self, page_id: int, for_write: bool = False) -> Optional[Event]:
        return self.backend.ensure_valid(page_id, for_write)

    def flush_page_if_dirty(self, page_id: int) -> Generator:
        return self.backend.flush_page_if_dirty(page_id)

    def apply_stored_diffs(self, page_id: int, stored: list[StoredDiff]) -> Generator:
        return self.backend.apply_stored_diffs(page_id, stored)

    def reply_notices(
        self, page_id: int, t_have: int, requester_vc: Optional[tuple[int, ...]] = None
    ) -> list[WriteNotice]:
        return self.backend.reply_notices(page_id, t_have, requester_vc)

    # -- dispatch -------------------------------------------------------------------

    def dispatch(self, msg: Message) -> Generator:
        """Route an arriving message to its handler (runs as a process)."""
        kind = msg.kind
        if kind is MessageKind.LOCK_REQUEST:
            yield from self.locks.handle_request(msg)
        elif kind is MessageKind.LOCK_FORWARD:
            yield from self.locks.handle_forward(msg)
        elif kind is MessageKind.LOCK_GRANT:
            yield from self.locks.handle_grant(msg)
        elif kind is MessageKind.BARRIER_ARRIVE:
            yield from self.barriers.handle_arrive(msg)
        elif kind is MessageKind.BARRIER_RELEASE:
            yield from self.barriers.handle_release(msg)
        elif kind in (
            MessageKind.HEARTBEAT,
            MessageKind.FT_DOWN,
            MessageKind.FT_UP,
            MessageKind.FT_REJOIN,
        ):
            if self.ft is not None:
                yield from self.ft.handle_message(self.node_id, msg)
        elif kind.is_prefetch:
            if self.prefetch is None:
                raise ProtocolError("prefetch message with no prefetch engine installed")
            yield from self.prefetch.dispatch(msg)
        else:
            # Coherence-protocol kinds (diff/page/invalidate traffic).
            yield from self.backend.handle_message(msg)

    # -- checkpoint / recovery ------------------------------------------------

    def snapshot_state(self) -> dict:
        """Deep-copy the node's full protocol state at a consistent cut.

        Taken at a barrier cut (all threads cluster-wide blocked at the
        barrier), so no fetch, flush, or coherence transaction can be in
        flight; per-request bookkeeping is therefore not part of the
        snapshot and is simply cleared on restore.  The backend
        contributes the protocol-specific part; the host adds what every
        protocol shares.  No mutable structure is shared with live state.
        """
        snap = self.backend.snapshot_state()
        snap["protocol"] = self.backend.name
        snap["locks"] = self.locks.snapshot_state()
        snap["barriers"] = self.barriers.snapshot_state()
        snap["pages"] = self.node.pages.snapshot_all()
        return snap

    def restore_state(self, snap: dict) -> None:
        """Rewind to a :meth:`snapshot_state` cut (coordinated rollback)."""
        self.backend.restore_state(snap)
        self.locks.restore_state(snap["locks"])
        self.barriers.restore_state(snap["barriers"])
        self.node.pages.restore_all(snap["pages"])
        # Counting stats (faults, requests served) are deliberately NOT
        # rolled back: redone work is real work, and monotone counters
        # keep trace correlation ids unique across the rollback.

    # Convenience alias used by the lock/barrier subsystems.
    def occupy_dsm(self, duration: float):
        return self.node.occupy(duration, Category.DSM)


class LrcBackend(CoherenceBackend):
    """TreadMarks-style lazy release consistency (the default backend)."""

    name = "lrc"
    supports_diff_prefetch = True

    def __init__(self, host: DsmNode) -> None:
        super().__init__(host)
        self.vc = VectorClock(self.num_nodes, owner=self.node_id)
        self.intervals = IntervalManager(owner=self.node_id)
        self.wn_log = WriteNoticeLog(self.num_nodes)
        self.diff_store = DiffStore()
        self._coherence: dict[int, PageCoherence] = {}
        #: pages flushed during the currently open interval (forces a
        #: sub-interval on re-dirty).
        self._flushed_in_open: set[int] = set()
        #: outstanding diff request completion events, by request id.
        self._pending_requests: dict[int, Event] = {}
        #: in-progress flush per page (serializes concurrent handlers).
        self._flush_events: dict[int, Event] = {}
        self._next_request_id = 0

    # -- small helpers -----------------------------------------------------

    def coherence(self, page_id: int) -> PageCoherence:
        state = self._coherence.get(page_id)
        if state is None:
            state = PageCoherence(page_id, self.num_nodes)
            self._coherence[page_id] = state
        return state

    def page_valid(self, page_id: int) -> bool:
        state = self._coherence.get(page_id)
        return state is None or state.valid

    def page_writable(self, page_id: int) -> bool:
        # Valid + dirty with a live twin that is not write-protected:
        # exactly the store-readiness predicate the scheduler needs.
        state = self.coherence(page_id)
        return state.valid and state.dirty and not state.write_protected

    # -- consistency actions -------------------------------------------------

    def close_interval_charged(self) -> Generator:
        """LRC release: close the open interval if it has modifications."""
        if not self.intervals.has_modifications and not self._flushed_in_open:
            return
        yield from self.node.occupy(self.node.costs.interval_close, Category.DSM)
        self._close_interval()

    def _close_interval(self) -> list[WriteNotice]:
        """Close the open interval; emit and log its write notices.

        Notices cover pages written during the interval: those currently
        dirty plus those whose diffs were flushed mid-interval.
        """
        pages = self.intervals.take_dirty() | self._flushed_in_open
        if not pages:
            return []
        new_idx = self.vc.advance_own()
        if self.sim.sanitizer_on:
            san = self.sim.sanitizer
            san.on_interval_closed(self.node_id, new_idx)
        self.intervals.lamport += 1
        lamport = self.intervals.lamport
        self._flushed_in_open.clear()
        notices = [
            WriteNotice(self.node_id, new_idx, lamport, page_id) for page_id in sorted(pages)
        ]
        self.wn_log.add_all(notices)
        # TreadMarks write-protects dirty pages at interval creation: a
        # later write to a still-dirty page must announce itself under a
        # NEW write notice, or its modifications would be invisible to
        # any node that already fetched this interval's diff.
        for page_id in pages:
            state = self._coherence.get(page_id)
            if state is not None and state.dirty:
                state.write_protected = True
        return notices

    def apply_notices_charged(
        self, notices: list[WriteNotice], advance_vc: bool = True
    ) -> Generator:
        """Merge received write notices; invalidate named pages.

        ``advance_vc=False`` is for *page-filtered* notice sets (diff
        replies): a vector clock component may only advance when the
        FULL interval has been transferred — a write notice names one
        page, and an interval may have dirtied several.  Advancing on a
        partial set would make later grants/releases skip the other
        pages' invalidations entirely.
        """
        if notices:
            cost = self.node.costs.write_notice_apply * len(notices)
            yield from self.node.occupy(cost, Category.DSM)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "protocol",
                    "write_notices",
                    self.node_id,
                    count=len(notices),
                    full=advance_vc,
                )
        san = self.sim.sanitizer
        for notice in notices:
            if notice.proc == self.node_id:
                continue
            if san.enabled:
                san.on_write_notice(
                    self.node_id, notice.proc, notice.interval_idx, notice.page_id
                )
            # Page-filtered sets stay out of the per-proc log (see
            # WriteNoticeLog.add): they must not be forwarded by grants
            # nor advance any vector clock.
            self.wn_log.add(notice, full=advance_vc)
            if advance_vc:
                old = self.vc[notice.proc]
                self.vc.observe(notice.proc, notice.interval_idx)
                if san.enabled:
                    san.on_vc_update(self.node_id, notice.proc, old, self.vc[notice.proc])
            self.intervals.observe_lamport(notice.lamport)
            self.coherence(notice.page_id).note_write_notice(notice.proc, notice.interval_idx)
            if self.prefetch is not None:
                self.prefetch.on_invalidation(notice.page_id)

    # -- write path ------------------------------------------------------------

    def op_write_touch(self, page_id: int) -> Generator:
        """Bookkeeping for a store to a (valid) page: twin + dirty bits."""
        state = self.coherence(page_id)
        if not state.valid:
            raise ProtocolError(f"write to invalid page {page_id} on node {self.node_id}")
        if state.dirty:
            if state.write_protected:
                # First write since the last interval close: the mods
                # belong to the open interval and need their own notice.
                # The existing twin still captures them for the diff.
                state.write_protected = False
                self.intervals.record_write(page_id)
                yield from self.node.occupy(self.node.costs.fault_handler, Category.DSM)
            return
        yield from self.node.occupy(self.node.costs.twin_create, Category.DSM)
        state.twin = self.node.pages.snapshot(page_id)
        state.dirty = True
        if self.sim.profile_on:
            pf = self.sim.profile
            pf.entity_add("page", page_id, "twins")
        if self.sim.sanitizer_on:
            san = self.sim.sanitizer
            san.on_twin_created(self.node_id, page_id)
        self.intervals.record_write(page_id)

    # -- fault / fetch path ------------------------------------------------------

    def ensure_valid(self, page_id: int, for_write: bool = False) -> Optional[Event]:
        """Return None if the page is usable now, else a fetch event.

        All local threads faulting on the same page share one event
        (request combining for remote memory accesses).  ``for_write``
        is ignored: under LRC any valid page accepts stores once
        :meth:`op_write_touch` has made a twin.
        """
        state = self.coherence(page_id)
        if state.valid:
            return None
        if state.fetch_in_flight:
            return state.fetch_event
        fetch_done = Event(self.sim, name=f"fetch(p{page_id})@{self.node_id}")
        state.fetch_event = fetch_done
        spawn(
            self.sim,
            self._fetch(page_id, fetch_done),
            name=f"fetch[{self.node_id}]",
            group=f"node{self.node_id}",
        )
        return fetch_done

    def _fetch(self, page_id: int, done: Event) -> Generator:
        """The fault handler: gather diffs until the page is valid."""
        self.host.faults += 1
        costs = self.node.costs
        tr = self.sim.trace
        pf = self.sim.profile
        fault_started = self.sim.now
        if pf.enabled:
            pf.entity_add("page", page_id, "faults")
        fault_id = f"n{self.node_id}:f{self.host.faults}"
        if tr.enabled:
            tr.async_begin(
                self.sim.now, "protocol", "page_fault", self.node_id, fault_id, page=page_id
            )
        yield from self.node.occupy(costs.fault_handler, Category.DSM)
        state = self.coherence(page_id)
        consumed_cache = False
        guard = 0
        while not state.valid:
            guard += 1
            if guard > 64:
                raise ProtocolError(f"fetch of page {page_id} cannot converge")
            # Gather everything needed — prefetch-heap contents plus
            # fresh replies from still-stale writers — and apply it all
            # in ONE timestamp-sorted pass.  Applying per-source batches
            # independently would let an older writer's diff clobber a
            # newer conflicting one (violating happened-before-1).
            batch: list[StoredDiff] = []
            covers_updates: dict[int, int] = {}
            if self.prefetch is not None:
                cached = self.prefetch.take_cached(page_id)
                if cached is not None:
                    batch.extend(cached.diffs)
                    covers_updates.update(cached.covers)
                    consumed_cache = True

            def missing_writers() -> list[int]:
                return [
                    writer
                    for writer in state.stale_writers()
                    if state.needed_upto[writer]
                    > max(state.applied_upto[writer], covers_updates.get(writer, 0))
                ]

            # Gather until the writer set is stable: a reply's interval
            # records may reveal further writers — or NEWER intervals of
            # already-queried writers — whose diffs must land in the
            # SAME sorted batch, or a newer conflicting diff would be
            # applied before an older one arriving in a later batch.
            requested: dict[int, int] = {}
            while True:
                writers = [
                    w
                    for w in missing_writers()
                    if requested.get(w, -1) < state.needed_upto[w]
                ]
                if not writers:
                    break
                done.needed_remote = True  # type: ignore[attr-defined]
                if self.prefetch is not None:
                    self.prefetch.classify_remote_fault(page_id)
                replies = []
                for writer in writers:
                    requested[writer] = state.needed_upto[writer]
                    request_id = self._next_request_id
                    self._next_request_id += 1
                    reply_event = Event(self.sim, name=f"diffreq{request_id}")
                    if pf.enabled:
                        # Stashed on the event itself: the RTT closes in
                        # handle_diff_reply, a different process.
                        reply_event.profile_t0 = self.sim.now  # type: ignore[attr-defined]
                    self._pending_requests[request_id] = reply_event
                    replies.append(reply_event)
                    if tr.enabled:
                        # The request/reply round trip: closed by
                        # handle_diff_reply, rendered as an async span
                        # linking the two sides in Perfetto.
                        tr.async_begin(
                            self.sim.now,
                            "protocol",
                            "diff_rtt",
                            self.node_id,
                            f"n{self.node_id}:dr{request_id}",
                            page=page_id,
                            writer=writer,
                        )
                    out = Message(
                        src=self.node_id,
                        dst=writer,
                        kind=MessageKind.DIFF_REQUEST,
                        size_bytes=36 + self.vc.size_bytes,
                        # A faulting thread is stalled on this round
                        # trip: demand class, never shed, paced last.
                        priority=PRIORITY_DEMAND,
                        payload={
                            "page_id": page_id,
                            "t_have": max(
                                state.applied_upto[writer],
                                covers_updates.get(writer, 0),
                            ),
                            "vc": self.vc.snapshot(),
                            "request_id": request_id,
                        },
                    )
                    self.label_edge(out, "request", page=page_id, request_id=request_id)
                    yield from self.send(out)
                reply_payloads = yield self.sim.all_of(replies)
                for src, diffs, covers in reply_payloads:
                    batch.extend(diffs)
                    if covers > covers_updates.get(src, 0):
                        covers_updates[src] = covers
            if not batch and not covers_updates:
                break
            yield from self.apply_stored_diffs(page_id, batch)
            for writer, covers in covers_updates.items():
                state.note_diffs_applied(writer, covers)
        yield from self.node.occupy(costs.page_validate, Category.DSM)
        if self.prefetch is not None:
            if consumed_cache and not getattr(done, "needed_remote", False):
                self.prefetch.count_hit(page_id)
            self.prefetch.on_page_validated(page_id)
        if tr.enabled:
            tr.async_end(
                self.sim.now,
                "protocol",
                "page_fault",
                self.node_id,
                fault_id,
                remote=bool(getattr(done, "needed_remote", False)),
            )
        if pf.enabled:
            service = self.sim.now - fault_started
            pf.observe(self.node_id, "page_fault_us", service)
            pf.entity_add("page", page_id, "stall_us", service)
            if getattr(done, "needed_remote", False):
                pf.entity_add("page", page_id, "remote_faults")
        done.succeed(None)

    def apply_stored_diffs(self, page_id: int, stored: list[StoredDiff]) -> Generator:
        """Apply incoming diffs in happened-before (lamport) order."""
        state = self.coherence(page_id)
        page = self.node.pages.page(page_id)
        san = self.sim.sanitizer
        for item in sorted(stored, key=lambda s: (s.lamport, s.proc)):
            if item.covers_through <= state.applied_upto[item.proc]:
                # Already covered (e.g. a stale prefetch-heap entry);
                # re-applying could revert newer data.
                continue
            if san.enabled:
                san.on_diff_applied(
                    self.node_id, page_id, item.proc, item.covers_through, item.lamport
                )
            cost = self.node.costs.diff_apply_us(item.diff.modified_bytes)
            yield from self.node.occupy(cost, Category.DSM)
            if self.sim.profile_on:
                pf = self.sim.profile
                pf.entity_add("page", page_id, "diffs")
                pf.entity_add("page", page_id, "bytes", item.diff.modified_bytes)
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "protocol",
                    "diff_apply",
                    self.node_id,
                    page=page_id,
                    writer=item.proc,
                    bytes=item.diff.modified_bytes,
                )
            # Per-byte happened-before enforcement: a byte is written
            # only if no LATER interval's diff already supplied it —
            # fetch batches interleave arbitrarily (each apply yields
            # for the CPU), so ordering cannot rely on batching alone.
            marks = state.lamport_watermarks(len(page))
            for offset, data in item.diff.runs:
                window = slice(offset, offset + len(data))
                mask = marks[window] <= item.lamport
                if mask.all():
                    page[window] = data
                    if state.dirty and state.twin is not None:
                        state.twin[window] = data
                else:
                    page[window][mask] = data[mask]
                    if state.dirty and state.twin is not None:
                        state.twin[window][mask] = data[mask]
                np.maximum(marks[window], item.lamport, out=marks[window])
            state.note_diffs_applied(item.proc, item.covers_through)
            self.intervals.observe_lamport(item.lamport)

    # -- diff server ---------------------------------------------------------------

    def flush_page_if_dirty(self, page_id: int) -> Generator:
        """Create and store a diff for a locally dirty page.

        Flushing *seals* the open interval (the paper's sub-interval
        creation): the diff's coverage index is the interval closed at
        this instant, so later writes land in a fresh interval and are
        announced by their own write notice.  The page becomes clean
        ("write-protected") and loses its twin; a subsequent write makes
        a fresh twin in the new interval.
        """
        while True:
            # Serialize flushes per page: concurrent request handlers
            # must not each create a diff for the same dirty span (the
            # duplicates would carry escalating interval tags and later
            # clobber a reader's own newer writes).
            in_flight = self._flush_events.get(page_id)
            if in_flight is not None and not in_flight.triggered:
                yield in_flight
                continue  # re-check: the page may have been re-dirtied
            state = self.coherence(page_id)
            if not state.dirty:
                return
            break
        if state.twin is None:
            raise ProtocolError(f"dirty page {page_id} with no twin on node {self.node_id}")
        flush_done = Event(self.sim, name=f"flush(p{page_id})@{self.node_id}")
        self._flush_events[page_id] = flush_done
        try:
            # The critical section is fully synchronous (no yields):
            # diff creation, write-protection, interval seal, and store
            # happen atomically, so a local write racing the flush lands
            # cleanly in the *next* interval with a fresh twin.
            page = self.node.pages.page(page_id)
            if self.sim.sanitizer_on:
                san = self.sim.sanitizer
                san.on_flush(self.node_id, page_id, had_twin=state.twin is not None)
            diff = make_diff(page_id, state.twin, page)
            state.dirty = False
            state.twin = None
            self._flushed_in_open.add(page_id)
            self._close_interval()
            self.diff_store.add(
                StoredDiff(
                    proc=self.node_id,
                    covers_through=self.vc[self.node_id],
                    lamport=self.intervals.lamport,
                    diff=diff,
                )
            )
            if self.sim.trace_on:
                tr = self.sim.trace
                tr.instant(
                    self.sim.now,
                    "protocol",
                    "diff_create",
                    self.node_id,
                    page=page_id,
                    bytes=diff.modified_bytes,
                )
            # Service time is charged after the fact; the reply waits.
            cost = self.node.costs.diff_create_us(len(page), diff.modified_bytes)
            yield from self.node.occupy(cost, Category.DSM)
        finally:
            flush_done.succeed(None)

    def reply_notices(
        self, page_id: int, t_have: int, requester_vc: Optional[tuple[int, ...]] = None
    ) -> list[WriteNotice]:
        """The page's interval records the requester may be missing.

        Diff replies must carry the page's consistency history, for two
        reasons: (a) a flush seals a *sub-interval* whose write notice
        would otherwise exist only in our own log; (b) conflicting
        writes are by definition same-page, so shipping the page history
        keeps the happened-before relation transitively closed — a
        receiver can never apply a newer conflicting diff while ignorant
        of an older one.  ``t_have`` bounds our own records; the
        requester's vector clock (piggybacked on the request) bounds
        other writers' records.
        """
        notices = []
        for notice in self.wn_log.notices_for_page(page_id):
            if notice.proc == self.node_id:
                if notice.interval_idx > t_have:
                    notices.append(notice)
            elif requester_vc is None or notice.interval_idx > requester_vc[notice.proc]:
                notices.append(notice)
        return notices

    def handle_diff_request(self, msg: Message) -> Generator:
        self.host.diff_requests_served += 1
        if self.sim.profile_on:
            pf = self.sim.profile
            pf.entity_add("page", msg.payload["page_id"], "diffs_served")
        page_id = msg.payload["page_id"]
        t_have = msg.payload["t_have"]
        yield from self.flush_page_if_dirty(page_id)
        stored = self.diff_store.diffs_after(page_id, t_have)
        # The coverage claim must be PAGE-specific: an empty reply means
        # "nothing newer than my latest flush of THIS page" — claiming
        # the node-wide interval index would mark the requester as
        # having modifications it never received.
        covers = max(
            (s.covers_through for s in stored),
            default=max(t_have, self.diff_store.latest_coverage(page_id)),
        )
        notices = self.reply_notices(page_id, t_have, msg.payload.get("vc"))
        size = 24 + sum(s.diff.size_bytes + 12 for s in stored) + WriteNoticeLog.wire_bytes(
            notices
        )
        out = Message(
            src=self.node_id,
            dst=msg.src,
            kind=MessageKind.DIFF_REPLY,
            size_bytes=size,
            # The requester's fault is blocked on this reply: demand
            # class, ahead of any notice/prefetch backlog on the link.
            priority=PRIORITY_DEMAND,
            payload={
                "page_id": page_id,
                "request_id": msg.payload["request_id"],
                "diffs": stored,
                "covers_through": covers,
                "notices": notices,
            },
        )
        self.label_edge(out, "reply", page=page_id, request_id=msg.payload["request_id"])
        yield from self.send(out)

    def handle_diff_reply(self, msg: Message) -> Generator:
        """Hand the reply's diffs to the waiting fetch process.

        The diffs are NOT applied here: the fetch gathers every writer's
        reply and applies the union in timestamp order.
        """
        # Log the writer's interval records first, so this node can
        # re-propagate them (transitive closure of happened-before).
        # advance_vc=False: these are page-filtered.
        yield from self.apply_notices_charged(msg.payload["notices"], advance_vc=False)
        pending = self._pending_requests.pop(msg.payload["request_id"], None)
        if pending is None:
            raise ProtocolError(f"unexpected diff reply {msg.payload['request_id']}")
        if self.sim.profile_on:
            pf = self.sim.profile
            t0 = getattr(pending, "profile_t0", None)
            if t0 is not None:
                pf.observe(self.node_id, "diff_rtt_us", self.sim.now - t0)
        if self.sim.trace_on:
            tr = self.sim.trace
            tr.async_end(
                self.sim.now,
                "protocol",
                "diff_rtt",
                self.node_id,
                f"n{self.node_id}:dr{msg.payload['request_id']}",
                writer=msg.src,
            )
        pending.succeed((msg.src, msg.payload["diffs"], msg.payload["covers_through"]))

    # -- dispatch -------------------------------------------------------------------

    def handle_message(self, msg: Message) -> Generator:
        kind = msg.kind
        if kind is MessageKind.DIFF_REQUEST:
            yield from self.handle_diff_request(msg)
        elif kind is MessageKind.DIFF_REPLY:
            yield from self.handle_diff_reply(msg)
        else:
            yield from super().handle_message(msg)

    # -- checkpoint / recovery ------------------------------------------------

    def snapshot_state(self) -> dict:
        """Deep-copy the backend's LRC state at a consistent cut.

        Taken at a barrier cut (all threads cluster-wide blocked at the
        barrier), so no fetch, flush, or diff request can be in flight;
        the pending-request and flush-event maps are therefore not part
        of the snapshot and are simply cleared on restore.
        """
        return {
            "vc": self.vc.snapshot(),
            "intervals": self.intervals.snapshot_state(),
            "wn_log": self.wn_log.snapshot_state(),
            "diff_store": self.diff_store.snapshot_state(),
            "coherence": {
                pid: state.snapshot_state() for pid, state in self._coherence.items()
            },
            "flushed_in_open": set(self._flushed_in_open),
            "next_request_id": self._next_request_id,
        }

    def restore_state(self, snap: dict) -> None:
        self.vc.restore(snap["vc"])
        self.intervals.restore_state(snap["intervals"])
        self.wn_log.restore_state(snap["wn_log"])
        self.diff_store.restore_state(snap["diff_store"])
        self._coherence = {
            pid: PageCoherence.from_snapshot(pid, self.num_nodes, page_snap)
            for pid, page_snap in snap["coherence"].items()
        }
        self._flushed_in_open = set(snap["flushed_in_open"])
        self._next_request_id = snap["next_request_id"]
        # Any in-flight request/flush belongs to the discarded execution.
        self._pending_requests.clear()
        self._flush_events.clear()

    # -- verification ---------------------------------------------------------

    def global_page(self, runtime, page_id: int) -> np.ndarray:
        """The authoritative final contents of a page.

        Reconstructed by replaying every flushed diff — plus each node's
        still-unflushed dirty modifications — in happened-before order,
        starting from the demand-zero page.  This is exactly the value
        any node would observe after synchronizing with everyone.
        """
        page = np.zeros(runtime.config.page_size, dtype=np.uint8)
        deltas: list[StoredDiff] = []
        for dsm in runtime.dsm_nodes:
            backend = dsm.backend
            deltas.extend(backend.diff_store.diffs_after(page_id, 0))
            coherence = backend._coherence.get(page_id)
            if coherence is not None and coherence.dirty and coherence.twin is not None:
                virtual = make_diff(
                    page_id, coherence.twin, dsm.node.pages.page(page_id)
                )
                deltas.append(
                    StoredDiff(
                        proc=dsm.node_id,
                        covers_through=backend.vc[dsm.node_id] + 1,
                        lamport=backend.intervals.lamport + 1,
                        diff=virtual,
                    )
                )
        for item in sorted(deltas, key=lambda s: (s.lamport, s.proc)):
            apply_diff(page, item.diff)
        return page
