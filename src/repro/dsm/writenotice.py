"""Write notices: which pages were modified in which interval.

At each synchronization point a node closes its current interval and
emits one :class:`WriteNotice` per page dirtied during it.  Notices
travel piggybacked on lock grants and barrier releases; the receiver
invalidates the named pages.  :class:`WriteNoticeLog` is the per-node
archive of every notice seen, supporting the "what does node X not know
yet" queries that drive lazy propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WriteNotice", "WriteNoticeLog", "WIRE_BYTES_PER_NOTICE"]

# Encoded as (proc, interval_idx, lamport, page_id): four 4-byte fields.
WIRE_BYTES_PER_NOTICE = 16


@dataclass(frozen=True, slots=True)
class WriteNotice:
    """Page ``page_id`` was modified by ``proc`` during interval ``interval_idx``."""

    proc: int
    interval_idx: int
    lamport: int
    page_id: int


class WriteNoticeLog:
    """Every write notice a node has seen, indexed for lazy propagation."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        # notices[proc] is ordered by interval_idx (appended in order).
        # CONTAINS ONLY FULLY-TRANSFERRED NOTICES: this log drives
        # unseen_by and (indirectly) vector clocks, whose semantics
        # require per-proc prefix-closure — knowing interval k implies
        # knowing every notice of intervals <= k.  Page-filtered notice
        # sets (diff replies) would punch holes in the prefix; a later
        # grant forwarding the holey knowledge advances the receiver's
        # clock past a notice it never saw, losing it permanently.
        self._by_proc: list[list[WriteNotice]] = [[] for _ in range(num_nodes)]
        #: per-page history (full + page-filtered) for reply closure.
        self._by_page: dict[int, list[WriteNotice]] = {}
        # O(1) duplicate detection per structure.
        self._seen_full: set[tuple[int, int, int]] = set()
        self._seen_page: set[tuple[int, int, int]] = set()

    def add(self, notice: WriteNotice, full: bool = True) -> bool:
        """Insert a notice; returns False if it was already known.

        ``full=False`` marks a page-filtered source (a diff reply): the
        notice enters only the per-page history, never the per-proc log.
        """
        key = (notice.proc, notice.interval_idx, notice.page_id)
        if key not in self._seen_page:
            self._seen_page.add(key)
            self._by_page.setdefault(notice.page_id, []).append(notice)
        if not full:
            return False
        if key in self._seen_full:
            return False
        self._seen_full.add(key)
        known = self._by_proc[notice.proc]
        if known and known[-1].interval_idx > notice.interval_idx:
            # Out-of-order arrival of a missed older notice.
            import bisect

            bisect.insort(known, notice, key=lambda n: n.interval_idx)
        else:
            known.append(notice)
        return True

    def notices_for_page(self, page_id: int) -> list[WriteNotice]:
        """Every notice known for one page (all writers)."""
        return list(self._by_page.get(page_id, ()))

    def add_all(self, notices: list[WriteNotice]) -> int:
        return sum(1 for notice in notices if self.add(notice))

    def notices_from(self, proc: int) -> list[WriteNotice]:
        return list(self._by_proc[proc])

    def unseen_by(self, vc_snapshot: tuple[int, ...]) -> list[WriteNotice]:
        """All notices the holder of ``vc_snapshot`` has not yet seen."""
        import bisect

        missing: list[WriteNotice] = []
        for proc, known in enumerate(self._by_proc):
            threshold = vc_snapshot[proc]
            start = bisect.bisect_right(known, threshold, key=lambda n: n.interval_idx)
            missing.extend(known[start:])
        return missing

    def own_notices_after(self, proc: int, interval_idx: int) -> list[WriteNotice]:
        """Notices from ``proc`` with interval index above ``interval_idx``."""
        return [n for n in self._by_proc[proc] if n.interval_idx > interval_idx]

    def total(self) -> int:
        return sum(len(known) for known in self._by_proc)

    def snapshot_state(self) -> dict:
        # WriteNotice is frozen: lists/sets are copied, entries shared.
        return {
            "by_proc": [list(known) for known in self._by_proc],
            "by_page": {pid: list(ns) for pid, ns in self._by_page.items()},
            "seen_full": set(self._seen_full),
            "seen_page": set(self._seen_page),
        }

    def restore_state(self, snap: dict) -> None:
        self._by_proc = [list(known) for known in snap["by_proc"]]
        self._by_page = {pid: list(ns) for pid, ns in snap["by_page"].items()}
        self._seen_full = set(snap["seen_full"])
        self._seen_page = set(snap["seen_page"])

    @staticmethod
    def wire_bytes(notices: list[WriteNotice]) -> int:
        return WIRE_BYTES_PER_NOTICE * len(notices)
