"""Distributed locks with lazy release consistency.

TreadMarks assigns each lock a static *manager* (``lock_id % N``); a
request goes to the manager, which forwards it to the last requester,
building a distributed FIFO queue.  The grant message carries the write
notices the acquirer has not yet seen — this is the moment consistency
information propagates.

Multithreading adds *request combining* (Section 4.1): if the token is
on this node (or already requested), additional local threads queue
locally, and on release the lock is handed between local threads at
user-level cost, without any messages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ProtocolError
from repro.network import Message, MessageKind
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dsm.protocol import DsmNode

__all__ = ["LockState", "LockSubsystem"]


@dataclass
class LockState:
    """Per-node view of one lock."""

    lock_id: int
    #: The token (ownership of the lock's queue position) is here.
    has_token: bool = False
    #: A local thread currently holds the lock.
    held: bool = False
    #: Local threads waiting for the lock (their wake events).
    local_waiters: deque = field(default_factory=deque)
    #: Remote node to grant to after the local release (at most one:
    #: the distributed queue gives each holder a single successor).
    pending_remote_grant: Optional[int] = None
    pending_remote_vc: Optional[tuple[int, ...]] = None
    #: A LOCK_REQUEST has been sent and the token is on its way.
    request_outstanding: bool = False
    # Manager-side state (meaningful only on the manager node).
    last_requester: Optional[int] = None

    # statistics
    remote_acquires: int = 0
    local_handoffs: int = 0
    #: When the current holder acquired (profiling only; locks are
    #: quiescent at checkpoint cuts, so this never enters a snapshot).
    acquired_at: float = -1.0


class LockSubsystem:
    """All lock behaviour for one node."""

    def __init__(self, dsm: "DsmNode") -> None:
        self.dsm = dsm
        self._locks: dict[int, LockState] = {}

    def state(self, lock_id: int) -> LockState:
        if lock_id < 0:
            raise ProtocolError(f"negative lock id {lock_id}")
        if lock_id not in self._locks:
            state = LockState(lock_id)
            if self.manager_of(lock_id) == self.dsm.node_id:
                # The token is born at the manager, free.
                state.has_token = True
                state.last_requester = self.dsm.node_id
            self._locks[lock_id] = state
        return self._locks[lock_id]

    def manager_of(self, lock_id: int) -> int:
        return lock_id % self.dsm.num_nodes

    # -- thread-facing operations (generators run in thread context) -----

    def op_acquire(self, lock_id: int):
        """Acquire path; returns None (granted now) or an Event to wait on.

        An acquire is also an LRC *acquire* operation, but invalidations
        arrive with the grant message; a locally satisfied acquire needs
        no consistency action (the local memory image is current for
        intervals this node has seen).
        """
        state = self.state(lock_id)
        costs = self.dsm.node.costs
        pf = self.dsm.sim.profile
        if state.has_token and not state.held and not state.local_waiters:
            # Claim synchronously (before any yield): a concurrent
            # forward-handler must not observe the token as free and
            # grant it away while we wait for the CPU.
            state.held = True
            state.acquired_at = self.dsm.sim.now
            yield from self.dsm.occupy_dsm(costs.lock_local_handoff)
            if pf.enabled:
                pf.observe(
                    self.dsm.node_id, "lock_acquire_us", self.dsm.sim.now - state.acquired_at
                )
                pf.entity_add("lock", lock_id, "acquires")
            return None
        # Queue locally; send one request if the token is absent and not
        # already on its way (request combining).
        wake = Event(self.dsm.sim, name=f"lock{lock_id}@{self.dsm.node_id}")
        if pf.enabled:
            # The wait closes wherever this waiter is woken (local
            # handoff or remote grant) — stash the start on the event.
            wake.profile_t0 = self.dsm.sim.now  # type: ignore[attr-defined]
        state.local_waiters.append(wake)
        if not state.has_token and not state.request_outstanding:
            state.request_outstanding = True
            if self.dsm.sim.trace_on:
                tr = self.dsm.sim.trace
                # Request->grant round trip; at most one outstanding per
                # (node, lock), so the acquire count disambiguates.
                tr.async_begin(
                    self.dsm.sim.now,
                    "protocol",
                    "lock_wait",
                    self.dsm.node_id,
                    f"n{self.dsm.node_id}:L{lock_id}:{state.remote_acquires}",
                    lock=lock_id,
                )
            manager = self.manager_of(lock_id)
            if manager == self.dsm.node_id:
                # The manager requests its own lock back: do the queue
                # bookkeeping locally and ask the tail to grant to us.
                yield from self.dsm.occupy_dsm(costs.lock_handler)
                previous = state.last_requester
                state.last_requester = self.dsm.node_id
                if previous == self.dsm.node_id:
                    raise ProtocolError(
                        f"lock {lock_id}: manager is queue tail but has no token"
                    )
                out = Message(
                    src=self.dsm.node_id,
                    dst=previous,
                    kind=MessageKind.LOCK_FORWARD,
                    size_bytes=16 + self.dsm.vc.size_bytes,
                    payload={
                        "lock_id": lock_id,
                        "requester": self.dsm.node_id,
                        "vc": self.dsm.vc.snapshot(),
                    },
                )
                self.dsm.label_edge(out, "request", lock=lock_id)
                yield from self.dsm.send(out)
            else:
                out = Message(
                    src=self.dsm.node_id,
                    dst=manager,
                    kind=MessageKind.LOCK_REQUEST,
                    size_bytes=16 + self.dsm.vc.size_bytes,
                    payload={"lock_id": lock_id, "vc": self.dsm.vc.snapshot()},
                )
                self.dsm.label_edge(out, "request", lock=lock_id)
                yield from self.dsm.send(out)
        return wake

    def op_release(self, lock_id: int):
        """Release path (generator); never blocks the caller."""
        state = self.state(lock_id)
        if not state.held:
            raise ProtocolError(f"release of unheld lock {lock_id} on node {self.dsm.node_id}")
        costs = self.dsm.node.costs
        pf = self.dsm.sim.profile
        if pf.enabled and state.acquired_at >= 0:
            held_for = self.dsm.sim.now - state.acquired_at
            pf.observe(self.dsm.node_id, "lock_hold_us", held_for)
            pf.entity_add("lock", lock_id, "hold_us", held_for)
        # LRC release: close the current interval so the modifications
        # become visible to the next acquirer.
        yield from self.dsm.close_interval_charged()
        if state.local_waiters:
            # Hand off between local threads without any messages.
            yield from self.dsm.occupy_dsm(costs.lock_local_handoff)
            state.local_handoffs += 1
            if self.dsm.sim.trace_on:
                tr = self.dsm.sim.trace
                tr.instant(
                    self.dsm.sim.now, "protocol", "lock_handoff", self.dsm.node_id, lock=lock_id
                )
            self._wake_next(state, handoff=True)  # stays held
            return
        state.held = False
        if state.pending_remote_grant is not None:
            yield from self._send_grant(state)

    # -- message handlers --------------------------------------------------

    def handle_request(self, msg: Message):
        """Manager-side: forward the request to the last requester."""
        lock_id = msg.payload["lock_id"]
        state = self.state(lock_id)
        if self.manager_of(lock_id) != self.dsm.node_id:
            raise ProtocolError(f"node {self.dsm.node_id} is not manager of lock {lock_id}")
        yield from self.dsm.occupy_dsm(self.dsm.node.costs.lock_handler)
        previous = state.last_requester
        state.last_requester = msg.src
        if previous == self.dsm.node_id:
            # Manager is (or was) the tail of the queue: treat as a
            # locally delivered forward.
            yield from self._accept_forward(lock_id, msg.src, msg.payload["vc"])
        else:
            out = Message(
                src=self.dsm.node_id,
                dst=previous,
                kind=MessageKind.LOCK_FORWARD,
                size_bytes=16 + self.dsm.vc.size_bytes,
                payload={"lock_id": lock_id, "requester": msg.src, "vc": msg.payload["vc"]},
            )
            self.dsm.label_edge(out, "forward", lock=lock_id, requester=msg.src)
            yield from self.dsm.send(out)

    def handle_forward(self, msg: Message):
        yield from self.dsm.occupy_dsm(self.dsm.node.costs.lock_handler)
        yield from self._accept_forward(
            msg.payload["lock_id"], msg.payload["requester"], msg.payload["vc"]
        )

    def _accept_forward(self, lock_id: int, requester: int, requester_vc: tuple[int, ...]):
        state = self.state(lock_id)
        if state.pending_remote_grant is not None:
            raise ProtocolError(
                f"lock {lock_id}: node {self.dsm.node_id} already has successor "
                f"{state.pending_remote_grant}, got {requester}"
            )
        state.pending_remote_grant = requester
        state.pending_remote_vc = requester_vc
        if state.has_token and not state.held and not state.local_waiters:
            yield from self._send_grant(state)

    def _send_grant(self, state: LockState):
        """Ship the token (and unseen write notices) to the successor."""
        if state.pending_remote_grant is None or state.pending_remote_vc is None:
            raise ProtocolError("no pending grant to send")
        # Claim the token synchronously (before any yield) so a local
        # thread cannot slip in and double-own the lock while the grant
        # is being assembled.
        requester = state.pending_remote_grant
        requester_vc = state.pending_remote_vc
        state.pending_remote_grant = None
        state.pending_remote_vc = None
        state.has_token = False
        # The grant is an LRC release towards the successor: close the
        # interval so every local modification is announced.
        yield from self.dsm.close_interval_charged()
        notices = self.dsm.wn_log.unseen_by(requester_vc)
        from repro.dsm.writenotice import WriteNoticeLog

        out = Message(
            src=self.dsm.node_id,
            dst=requester,
            kind=MessageKind.LOCK_GRANT,
            size_bytes=24 + WriteNoticeLog.wire_bytes(notices),
            payload={"lock_id": state.lock_id, "notices": notices},
        )
        # The granting handoff: names which node releases the token to
        # which requester, keyed by the grant message's correlation id.
        self.dsm.label_edge(out, "grant", lock=state.lock_id, requester=requester)
        yield from self.dsm.send(out)

    def handle_grant(self, msg: Message):
        """Requester-side: token arrives with consistency information."""
        lock_id = msg.payload["lock_id"]
        state = self.state(lock_id)
        costs = self.dsm.node.costs
        yield from self.dsm.occupy_dsm(costs.lock_handler)
        yield from self.dsm.apply_notices_charged(msg.payload["notices"])
        if self.dsm.sim.trace_on:
            tr = self.dsm.sim.trace
            tr.async_end(
                self.dsm.sim.now,
                "protocol",
                "lock_wait",
                self.dsm.node_id,
                f"n{self.dsm.node_id}:L{lock_id}:{state.remote_acquires}",
                lock=lock_id,
                granted_by=msg.src,
            )
        state.has_token = True
        state.request_outstanding = False
        state.remote_acquires += 1
        if not state.local_waiters:
            # Everyone gave up?  Impossible: requests are only sent when a
            # waiter queued, and waiters never abandon the queue.
            raise ProtocolError(f"lock {lock_id} granted to node with no waiters")
        state.held = True
        self._wake_next(state, handoff=False)

    def _wake_next(self, state: LockState, handoff: bool) -> None:
        """Wake the next local waiter; it is the lock holder from now."""
        wake = state.local_waiters.popleft()
        now = self.dsm.sim.now
        state.acquired_at = now
        if self.dsm.sim.profile_on:
            pf = self.dsm.sim.profile
            t0 = getattr(wake, "profile_t0", None)
            if t0 is not None:
                waited = now - t0
                pf.observe(self.dsm.node_id, "lock_wait_us", waited)
                pf.observe(self.dsm.node_id, "lock_acquire_us", waited)
                pf.entity_add("lock", state.lock_id, "wait_us", waited)
            pf.entity_add("lock", state.lock_id, "acquires")
            if handoff:
                pf.entity_add("lock", state.lock_id, "handoffs")
        wake.succeed(None)

    # -- checkpoint / recovery --------------------------------------------

    def snapshot_state(self) -> dict:
        """Lock state at the checkpoint cut (scalars only).

        The cut is a barrier with every thread arrived, so no lock can
        be held, waited on, or mid-handoff; a non-quiescent lock means
        the cut is not consistent and the checkpoint must be refused.
        """
        from repro.errors import CheckpointError

        snap: dict[int, dict] = {}
        for lock_id, state in self._locks.items():
            if state.held or state.local_waiters or state.pending_remote_grant is not None:
                raise CheckpointError(
                    f"lock {lock_id} active at the barrier cut on node {self.dsm.node_id}"
                )
            snap[lock_id] = {
                "has_token": state.has_token,
                "request_outstanding": state.request_outstanding,
                "last_requester": state.last_requester,
                "remote_acquires": state.remote_acquires,
                "local_handoffs": state.local_handoffs,
            }
        return snap

    def restore_state(self, snap: dict) -> None:
        self._locks = {}
        for lock_id, fields in snap.items():
            state = LockState(lock_id)
            state.has_token = fields["has_token"]
            state.request_outstanding = fields["request_outstanding"]
            state.last_requester = fields["last_requester"]
            state.remote_acquires = fields["remote_acquires"]
            state.local_handoffs = fields["local_handoffs"]
            self._locks[lock_id] = state
