"""Home-based lazy release consistency backend (``hlrc``).

The HLRC refinement of TreadMarks-style LRC (Zhou/Iftode/Li; see
PAPERS.md): every page gets a deterministic *home* node
(``page_id % num_nodes``).  The synchronization plane — vector clocks,
intervals, write notices piggybacked on locks and barriers — is
inherited from :class:`~repro.dsm.protocol.LrcBackend` unchanged.  Only
the data plane differs:

- **Releases flush home.**  Closing an interval eagerly creates the
  diff of every page it dirtied and sends each to its page's home
  (``HOME_UPDATE``).  The release blocks until every home has applied
  and acknowledged its update.  That ack round trip is the protocol's
  release-side cost — and it guarantees a barrier cut (where coordinated
  checkpoints are taken) can never strand an un-applied diff in flight.
- **Fetches pull the whole page from home.**  A faulting node sends its
  needed-vector to the home (``PAGE_REQUEST``); the home *parks* the
  request until its applied-vector dominates it, then replies with the
  full page plus the coverage it certifies (``PAGE_REPLY``).  The
  requester installs the page wholesale, re-applying its own
  still-unflushed local modifications on top.

The trade against flat LRC is the paper's motivating comparison: LRC's
faults pay one diff round trip *per stale writer* and archives grow with
every interval, while HLRC pays one round trip to one fixed node and a
full page on the wire — write-notice processing stays, but diff
accumulation and multi-writer fault fan-out disappear.  Apps with many
writers per page (OCEAN boundary rows) win; apps whose pages have one
writer and tiny diffs pay page-sized transfers for byte-sized changes.

The home keeps no separate directory: its own ``PageCoherence`` record
already tracks exactly what HLRC needs (``applied_upto`` per writer is
the home's applied-vector; byte-level lamport watermarks order
conflicting-update arrivals), and the shared replay verifier
(:meth:`LrcBackend.global_page`) keeps working because every eager flush
is also archived in the writer's local diff store, exactly where a flat
LRC flush would have put it.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.dsm.interval import StoredDiff
from repro.dsm.protocol import LrcBackend
from repro.errors import ProtocolError
from repro.memory import make_diff
from repro.metrics.counters import Category
from repro.network import PRIORITY_DEMAND, Message, MessageKind
from repro.sim import Event

__all__ = ["HlrcBackend"]


class HlrcBackend(LrcBackend):
    """Home-based LRC: eager diff flush home, whole-page fetch from home."""

    name = "hlrc"
    #: Diff prefetch is meaningless here — non-home nodes never traffic
    #: in diffs.  (The prefetch engine falls back to page-mode.)
    supports_diff_prefetch = False

    def __init__(self, host) -> None:
        super().__init__(host)
        #: Home side: fetches waiting for coverage, per hosted page.
        #: Remote entries are ``(needed, requester, request_id)``;
        #: local ones (the home faulting on its own page) ``(needed,
        #: event)``.
        self._parked: dict[int, list] = {}
        self._parked_local: dict[int, list] = {}
        #: Per page, the interval index (our vc component) of our last
        #: flushed diff.  A fetch carries it as our own ``needed``
        #: component so the home parks the serve until our update has
        #: been applied — otherwise a whole-page install could revert
        #: our own committed writes while the update is still in
        #: flight (our release blocks on the ack, but OTHER local
        #: threads fetch concurrently).
        self._flushed_upto: dict[int, int] = {}

    def home_of(self, page_id: int) -> int:
        return page_id % self.num_nodes

    # -- release side ------------------------------------------------------

    def close_interval_charged(self) -> Generator:
        """HLRC release: close the interval, then flush its diffs home.

        The close itself (write notices, vector clock) is inherited LRC
        machinery.  The flush is the home-based part: one diff per
        dirtied page, sent to the page's home, the release blocking
        until every home has applied and acked.
        """
        if not self.intervals.has_modifications and not self._flushed_in_open:
            return
        yield from self.node.occupy(self.node.costs.interval_close, Category.DSM)
        notices = self._close_interval()
        flushed = []
        # Diff creation is synchronous across ALL dirtied pages (no
        # yields until every twin is sealed): the moment the vector
        # clock advanced above, a home serve certifies the closed
        # interval as covered — so no page may keep a twin that
        # predates it.  Yielding between per-page flushes would leave
        # the later pages closed-but-unflushed, and a concurrent
        # ``_serve_page`` on a home node would ship their stale twins
        # under a coverage vector that promises the new interval.
        # (A store racing the flush likewise lands in a fresh interval
        # with a fresh twin.)  The CPU costs are charged in one lump
        # after the seals.
        flush_cost = 0.0
        for page_id in sorted({n.page_id for n in notices}):
            state = self._coherence.get(page_id)
            if state is None or not state.dirty or state.twin is None:
                continue
            page = self.node.pages.page(page_id)
            if self.sim.sanitizer_on:
                self.sim.sanitizer.on_flush(self.node_id, page_id, had_twin=True)
            diff = make_diff(page_id, state.twin, page)
            state.dirty = False
            state.twin = None
            state.write_protected = False
            stored = StoredDiff(
                proc=self.node_id,
                covers_through=self.vc[self.node_id],
                lamport=self.intervals.lamport,
                diff=diff,
            )
            # Archived locally as well: the replay verifier and the
            # checkpoint sizer read the writer's own diff store, same
            # as under flat LRC.
            self.diff_store.add(stored)
            self._flushed_upto[page_id] = stored.covers_through
            if self.sim.trace_on:
                self.sim.trace.instant(
                    self.sim.now,
                    "protocol",
                    "diff_create",
                    self.node_id,
                    page=page_id,
                    bytes=diff.modified_bytes,
                )
            flush_cost += self.node.costs.diff_create_us(len(page), diff.modified_bytes)
            flushed.append((page_id, stored))
        if flush_cost:
            yield from self.node.occupy(flush_cost, Category.DSM)
        acks = []
        for page_id, stored in flushed:
            home = self.home_of(page_id)
            if home == self.node_id:
                # The home's own copy of the page IS current; the local
                # close already raised the coverage it certifies.
                if self.sim.profile_on:
                    self.sim.profile.entity_add("page", page_id, "home_updates")
                continue
            request_id = self._next_request_id
            self._next_request_id += 1
            ack = Event(self.sim, name=f"homeack{request_id}")
            self._pending_requests[request_id] = ack
            acks.append(ack)
            out = Message(
                src=self.node_id,
                dst=home,
                kind=MessageKind.HOME_UPDATE,
                size_bytes=24 + stored.diff.size_bytes + 12,
                priority=PRIORITY_DEMAND,
                payload={
                    "page_id": page_id,
                    "stored": stored,
                    "request_id": request_id,
                },
            )
            self.label_edge(out, "home_update", page=page_id, request_id=request_id)
            yield from self.send(out)
        # Any fetch parked on our newly closed interval can go now.
        for page_id, _stored in flushed:
            if self.home_of(page_id) == self.node_id:
                self._pump_parked(page_id)
        if acks:
            yield self.sim.all_of(acks)

    # -- home side ---------------------------------------------------------

    def _home_covers(self, page_id: int) -> tuple:
        """The coverage this home certifies for one of its pages.

        Our own component is the closed-interval count — the local copy
        always contains our own committed writes — and every other
        writer's is what their updates have delivered.
        """
        state = self.coherence(page_id)
        return tuple(
            self.vc[proc] if proc == self.node_id else state.applied_upto[proc]
            for proc in range(self.num_nodes)
        )

    def _covers_dominates(self, covers: tuple, needed: tuple) -> bool:
        return all(c >= n for c, n in zip(covers, needed))

    def handle_home_update(self, msg: Message) -> Generator:
        page_id = msg.payload["page_id"]
        stored: StoredDiff = msg.payload["stored"]
        home = self.home_of(page_id)
        if self.sim.sanitizer_on:
            self.sim.sanitizer.on_home_update(self.node_id, page_id, home)
        if self.sim.profile_on:
            self.sim.profile.entity_add("page", page_id, "home_updates")
        # The shared LRC applier does everything the home needs: charge
        # the apply, update page AND twin, advance applied_upto, and
        # order conflicting arrivals by per-byte lamport watermark.
        yield from self.apply_stored_diffs(page_id, [stored])
        self._pump_parked(page_id)
        out = Message(
            src=self.node_id,
            dst=msg.src,
            kind=MessageKind.HOME_UPDATE_ACK,
            size_bytes=16,
            priority=PRIORITY_DEMAND,
            payload={"request_id": msg.payload["request_id"]},
        )
        self.label_edge(out, "home_ack", page=page_id)
        yield from self.send(out)

    def handle_home_update_ack(self, msg: Message) -> Generator:
        pending = self._pending_requests.pop(msg.payload["request_id"], None)
        if pending is None:
            raise ProtocolError(
                f"unexpected home-update ack {msg.payload['request_id']}"
            )
        pending.succeed(None)
        return
        yield  # pragma: no cover

    def _pump_parked(self, page_id: int) -> None:
        """Re-check parked fetches after coverage grew."""
        covers = None
        remote = self._parked.get(page_id)
        if remote:
            covers = self._home_covers(page_id)
            still = []
            for needed, requester, request_id in remote:
                if self._covers_dominates(covers, needed):
                    self._spawn_serve(page_id, requester, request_id)
                else:
                    still.append((needed, requester, request_id))
            if still:
                self._parked[page_id] = still
            else:
                del self._parked[page_id]
        local = self._parked_local.get(page_id)
        if local:
            if covers is None:
                covers = self._home_covers(page_id)
            still = []
            for needed, event in local:
                if self._covers_dominates(covers, needed):
                    event.succeed(None)
                else:
                    still.append((needed, event))
            if still:
                self._parked_local[page_id] = still
            else:
                del self._parked_local[page_id]

    def _spawn_serve(self, page_id: int, requester: int, request_id: int) -> None:
        from repro.sim import spawn

        spawn(
            self.sim,
            self._serve_page(page_id, requester, request_id),
            name=f"homeserve[{self.node_id}]",
            group=f"node{self.node_id}",
        )

    def _serve_page(self, page_id: int, requester: int, request_id: int) -> Generator:
        """Ship the whole page, certifying the coverage it carries.

        A dirty home copy serves its *twin*: the twin holds every
        committed write (ours through the last close, every applied
        update) without the still-open interval's uncommitted stores.
        """
        state = self.coherence(page_id)
        covers = self._home_covers(page_id)
        if self.sim.sanitizer_on:
            self.sim.sanitizer.on_page_served(
                self.node_id, page_id, self.home_of(page_id), covers
            )
        if self.sim.profile_on:
            self.sim.profile.entity_add("page", page_id, "pages_served")
        source = state.twin if (state.dirty and state.twin is not None) else None
        if source is None:
            source = self.node.pages.page(page_id)
        data = source.copy()
        cost = self.node.costs.diff_create_us(len(data), 0)
        yield from self.node.occupy(cost, Category.DSM)
        out = Message(
            src=self.node_id,
            dst=requester,
            kind=MessageKind.PAGE_REPLY,
            size_bytes=24 + len(data) + 4 * self.num_nodes,
            priority=PRIORITY_DEMAND,
            payload={
                "page_id": page_id,
                "request_id": request_id,
                "data": data,
                "covers": covers,
                "lamport": self.intervals.lamport,
            },
        )
        self.label_edge(out, "reply", page=page_id, request_id=request_id)
        yield from self.send(out)

    def handle_page_request(self, msg: Message) -> Generator:
        page_id = msg.payload["page_id"]
        if self.home_of(page_id) != self.node_id:
            raise ProtocolError(
                f"page request for page {page_id} routed to node {self.node_id}, "
                f"home is {self.home_of(page_id)}"
            )
        needed = tuple(msg.payload["needed"])
        request_id = msg.payload["request_id"]
        if self._covers_dominates(self._home_covers(page_id), needed):
            yield from self._serve_page(page_id, msg.src, request_id)
        else:
            # Park until the missing writers' updates land.  The writers
            # flushed (or will flush, blocking their release) at the
            # interval close that minted the notices the requester saw,
            # so the updates are already committed or en route.
            self._parked.setdefault(page_id, []).append((needed, msg.src, request_id))
            if self.sim.trace_on:
                self.sim.trace.instant(
                    self.sim.now,
                    "protocol",
                    "fetch_parked",
                    self.node_id,
                    page=page_id,
                    requester=msg.src,
                )

    def handle_page_reply(self, msg: Message) -> Generator:
        pending = self._pending_requests.pop(msg.payload["request_id"], None)
        if pending is None:
            raise ProtocolError(f"unexpected page reply {msg.payload['request_id']}")
        if self.sim.profile_on:
            t0 = getattr(pending, "profile_t0", None)
            if t0 is not None:
                self.sim.profile.observe(self.node_id, "home_fetch_us", self.sim.now - t0)
        if self.sim.trace_on:
            self.sim.trace.async_end(
                self.sim.now,
                "protocol",
                "home_fetch",
                self.node_id,
                f"n{self.node_id}:hr{msg.payload['request_id']}",
                home=msg.src,
            )
        pending.succeed(
            (msg.payload["data"], msg.payload["covers"], msg.payload["lamport"])
        )
        return
        yield  # pragma: no cover

    # -- fault / fetch path ------------------------------------------------

    def _fetch(self, page_id: int, done: Event) -> Generator:
        """The fault handler: one whole-page round trip to the home."""
        self.host.faults += 1
        costs = self.node.costs
        tr = self.sim.trace
        pf = self.sim.profile
        fault_started = self.sim.now
        if pf.enabled:
            pf.entity_add("page", page_id, "faults")
        fault_id = f"n{self.node_id}:f{self.host.faults}"
        if tr.enabled:
            tr.async_begin(
                self.sim.now, "protocol", "page_fault", self.node_id, fault_id, page=page_id
            )
        yield from self.node.occupy(costs.fault_handler, Category.DSM)
        state = self.coherence(page_id)
        home = self.home_of(page_id)
        guard = 0
        while not state.valid:
            guard += 1
            if guard > 64:
                raise ProtocolError(f"fetch of page {page_id} cannot converge")
            if home == self.node_id:
                # We ARE the home: the page turns valid the moment the
                # missing writers' updates are applied locally — park on
                # our own coverage pump, nothing to install.
                ready = Event(self.sim, name=f"homewait(p{page_id})@{self.node_id}")
                self._parked_local.setdefault(page_id, []).append(
                    (tuple(state.needed_upto), ready)
                )
                yield ready
                continue
            done.needed_remote = True  # type: ignore[attr-defined]
            if self.prefetch is not None:
                self.prefetch.classify_remote_fault(page_id)
            request_id = self._next_request_id
            self._next_request_id += 1
            reply = Event(self.sim, name=f"pagereq{request_id}")
            if pf.enabled:
                reply.profile_t0 = self.sim.now  # type: ignore[attr-defined]
                pf.entity_add("page", page_id, "home_fetches")
            self._pending_requests[request_id] = reply
            if tr.enabled:
                tr.async_begin(
                    self.sim.now,
                    "protocol",
                    "home_fetch",
                    self.node_id,
                    f"n{self.node_id}:hr{request_id}",
                    page=page_id,
                    home=home,
                )
            # Our own component of ``needed`` is the flush watermark,
            # never the notice count (nodes are not notified of their
            # own intervals): the serve must wait out our in-flight
            # home update, or its whole-page install would revert our
            # own committed writes.
            needed = list(state.needed_upto)
            needed[self.node_id] = self._flushed_upto.get(page_id, 0)
            out = Message(
                src=self.node_id,
                dst=home,
                kind=MessageKind.PAGE_REQUEST,
                size_bytes=24 + self.vc.size_bytes,
                priority=PRIORITY_DEMAND,
                payload={
                    "page_id": page_id,
                    "needed": tuple(needed),
                    "request_id": request_id,
                },
            )
            self.label_edge(out, "request", page=page_id, request_id=request_id)
            yield from self.send(out)
            data, covers, lamport = yield reply
            yield from self._install_page(page_id, data, covers, lamport)
        yield from self.node.occupy(costs.page_validate, Category.DSM)
        if self.prefetch is not None:
            self.prefetch.on_page_validated(page_id)
        if tr.enabled:
            tr.async_end(
                self.sim.now,
                "protocol",
                "page_fault",
                self.node_id,
                fault_id,
                remote=bool(getattr(done, "needed_remote", False)),
            )
        if pf.enabled:
            service = self.sim.now - fault_started
            pf.observe(self.node_id, "page_fault_us", service)
            pf.entity_add("page", page_id, "stall_us", service)
            if getattr(done, "needed_remote", False):
                pf.entity_add("page", page_id, "remote_faults")
        done.succeed(None)

    def _install_page(
        self, page_id: int, data: np.ndarray, covers: tuple, lamport: int
    ) -> Generator:
        """Install a home-served page, preserving local dirty writes."""
        state = self.coherence(page_id)
        page = self.node.pages.page(page_id)
        local_diff = None
        if state.dirty and state.twin is not None:
            # Our own unflushed stores must survive the wholesale
            # install: lift them off the twin first, lay them back on
            # top after.  The twin itself takes the home data, so the
            # next flush's diff still isolates exactly our writes.
            local_diff = make_diff(page_id, state.twin, page)
        page[:] = data
        if state.dirty and state.twin is not None:
            state.twin[:] = data
        if local_diff is not None:
            for offset, run in local_diff.runs:
                page[offset : offset + len(run)] = run
        if self.sim.profile_on:
            pf = self.sim.profile
            pf.entity_add("page", page_id, "page_fetches")
            pf.entity_add("page", page_id, "bytes", len(data))
        yield from self.node.occupy(
            self.node.costs.diff_apply_us(len(data)), Category.DSM
        )
        for proc in range(self.num_nodes):
            if proc != self.node_id:
                state.note_diffs_applied(proc, covers[proc])
        # The served content reflects intervals up to the home's
        # lamport horizon; our next interval must order after them in
        # the replay's happened-before order.
        self.intervals.observe_lamport(lamport)

    # -- dispatch ----------------------------------------------------------

    def handle_message(self, msg: Message) -> Generator:
        kind = msg.kind
        if kind is MessageKind.PAGE_REQUEST:
            yield from self.handle_page_request(msg)
        elif kind is MessageKind.PAGE_REPLY:
            yield from self.handle_page_reply(msg)
        elif kind is MessageKind.HOME_UPDATE:
            yield from self.handle_home_update(msg)
        elif kind is MessageKind.HOME_UPDATE_ACK:
            yield from self.handle_home_update_ack(msg)
        else:
            yield from super().handle_message(msg)

    # -- checkpoint / recovery ---------------------------------------------

    def snapshot_state(self) -> dict:
        """LRC layout plus the per-page flush watermarks: the
        ack-blocking release guarantees no update is in flight at a
        barrier cut, and a cut cannot have parked fetches (every thread
        is blocked at the barrier)."""
        if self._parked or self._parked_local:
            raise ProtocolError("hlrc home has parked fetches at a checkpoint cut")
        snap = super().snapshot_state()
        snap["flushed_upto"] = dict(self._flushed_upto)
        return snap

    def restore_state(self, snap: dict) -> None:
        super().restore_state(snap)
        self._parked.clear()
        self._parked_local.clear()
        self._flushed_upto = dict(snap.get("flushed_upto", {}))
