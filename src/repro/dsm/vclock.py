"""Vector timestamps for lazy release consistency.

Each node numbers its own *intervals* (epochs between synchronization
points) with a local counter; a :class:`VectorClock` records, per node,
the highest interval the owner has seen.  A write notice for interval
``(proc, idx)`` is "news" to a node exactly when ``idx > vc[proc]``.

A scalar Lamport component rides along to order diff application: it is
bumped past every timestamp observed at synchronization, so it respects
the happened-before-1 partial order among intervals.
"""

from __future__ import annotations

from repro.errors import ProtocolError

__all__ = ["VectorClock"]


class VectorClock:
    """A per-node vector of interval counters."""

    def __init__(self, num_nodes: int, owner: int) -> None:
        if not 0 <= owner < num_nodes:
            raise ProtocolError(f"owner {owner} outside 0..{num_nodes - 1}")
        self.num_nodes = num_nodes
        self.owner = owner
        self._clock = [0] * num_nodes

    def __getitem__(self, node: int) -> int:
        return self._clock[node]

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._clock)

    def restore(self, snapshot: tuple[int, ...]) -> None:
        """Rewind to a checkpointed snapshot (coordinated recovery only)."""
        if len(snapshot) != self.num_nodes:
            raise ProtocolError(
                f"snapshot has {len(snapshot)} components, clock has {self.num_nodes}"
            )
        self._clock = list(snapshot)

    @property
    def size_bytes(self) -> int:
        """Wire size when piggybacked on a message."""
        return 4 * self.num_nodes

    def advance_own(self) -> int:
        """Close an interval: bump the owner's component; returns new index."""
        self._clock[self.owner] += 1
        return self._clock[self.owner]

    def observe(self, node: int, interval_idx: int) -> bool:
        """Record that ``(node, interval_idx)`` has been seen.

        Returns True if this was news (idx above the current component).
        """
        if node == self.owner:
            raise ProtocolError("a node never 'observes' its own intervals")
        if interval_idx > self._clock[node]:
            self._clock[node] = interval_idx
            return True
        return False

    def dominates(self, other_snapshot: tuple[int, ...]) -> bool:
        """True if this clock has seen everything in ``other_snapshot``."""
        return all(mine >= theirs for mine, theirs in zip(self._clock, other_snapshot))

    def merge(self, other_snapshot: tuple[int, ...]) -> None:
        """Component-wise max with a received snapshot (except own slot)."""
        for node, theirs in enumerate(other_snapshot):
            if node != self.owner and theirs > self._clock[node]:
                self._clock[node] = theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC(owner={self.owner}, {self._clock})"
