"""Interval tracking and the lazy diff store.

A node's execution is divided into *intervals* delimited by
synchronization operations (and by diff flushes forced by incoming
requests — the "sub-intervals" of Section 3.1).  During an interval the
node accumulates a dirty-page set; closing the interval emits write
notices.  Diffs are created lazily: only when another node (or a
prefetch) asks for a page's modifications is the twin compared against
the current contents.  Each stored diff is tagged with the interval it
was flushed in, and satisfies every earlier notice for that page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsm.writenotice import WriteNotice
from repro.memory import Diff

__all__ = ["StoredDiff", "IntervalManager", "DiffStore"]


@dataclass(frozen=True, slots=True)
class StoredDiff:
    """A flushed diff, tagged for ordering and coverage.

    ``covers_through`` is the owner's interval index at flush time: a
    requester holding this diff has the page's modifications for every
    owner interval up to and including that index.
    """

    proc: int
    covers_through: int
    lamport: int
    diff: Diff


class DiffStore:
    """Per-node archive of flushed diffs, keyed by page."""

    def __init__(self) -> None:
        self._by_page: dict[int, list[StoredDiff]] = {}
        self.total_flushes = 0
        self.total_diff_bytes = 0

    def add(self, stored: StoredDiff) -> None:
        self._by_page.setdefault(stored.diff.page_id, []).append(stored)
        self.total_flushes += 1
        self.total_diff_bytes += stored.diff.size_bytes

    def diffs_after(self, page_id: int, interval_idx: int) -> list[StoredDiff]:
        """Stored diffs for ``page_id`` flushed after ``interval_idx``."""
        return [d for d in self._by_page.get(page_id, []) if d.covers_through > interval_idx]

    def latest_coverage(self, page_id: int) -> int:
        diffs = self._by_page.get(page_id)
        return diffs[-1].covers_through if diffs else 0

    def pages(self) -> list[int]:
        return list(self._by_page)

    def snapshot_state(self) -> dict:
        # StoredDiff (and the Diff inside) is immutable: lists are
        # copied, entries shared.
        return {
            "by_page": {pid: list(diffs) for pid, diffs in self._by_page.items()},
            "flushes": self.total_flushes,
            "bytes": self.total_diff_bytes,
        }

    def restore_state(self, snap: dict) -> None:
        self._by_page = {pid: list(diffs) for pid, diffs in snap["by_page"].items()}
        self.total_flushes = snap["flushes"]
        self.total_diff_bytes = snap["bytes"]

    def garbage_collect_before(self, page_id: int, interval_idx: int) -> int:
        """Drop diffs every node already has; returns bytes reclaimed."""
        diffs = self._by_page.get(page_id)
        if not diffs:
            return 0
        keep = [d for d in diffs if d.covers_through > interval_idx]
        reclaimed = sum(d.diff.size_bytes for d in diffs) - sum(d.diff.size_bytes for d in keep)
        self._by_page[page_id] = keep
        self.total_diff_bytes -= reclaimed
        return reclaimed


class IntervalManager:
    """Tracks the node's current interval and its dirty-page set."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.lamport = 0
        self._dirty_pages: set[int] = set()
        self._closed_intervals = 0

    @property
    def dirty_pages(self) -> frozenset[int]:
        return frozenset(self._dirty_pages)

    @property
    def has_modifications(self) -> bool:
        return bool(self._dirty_pages)

    def record_write(self, page_id: int) -> None:
        self._dirty_pages.add(page_id)

    def observe_lamport(self, lamport: int) -> None:
        """Advance the scalar clock past a timestamp seen at sync."""
        if lamport > self.lamport:
            self.lamport = lamport

    def snapshot_state(self) -> dict:
        return {
            "lamport": self.lamport,
            "dirty": set(self._dirty_pages),
            "closed": self._closed_intervals,
        }

    def restore_state(self, snap: dict) -> None:
        self.lamport = snap["lamport"]
        self._dirty_pages = set(snap["dirty"])
        self._closed_intervals = snap["closed"]

    def take_dirty(self) -> set[int]:
        """Return and clear the open interval's dirty-page set."""
        pages, self._dirty_pages = self._dirty_pages, set()
        self._closed_intervals += 1
        return pages

    def close(self, new_interval_idx: int) -> list[WriteNotice]:
        """Close the current interval, emitting its write notices.

        ``new_interval_idx`` is the vector-clock component after the
        caller bumped it.  Returns the notices for the interval just
        closed (empty when nothing was written — callers should avoid
        bumping the clock in that case).
        """
        self.lamport += 1
        notices = [
            WriteNotice(self.owner, new_interval_idx, self.lamport, page_id)
            for page_id in sorted(self._dirty_pages)
        ]
        self._dirty_pages.clear()
        self._closed_intervals += 1
        return notices
