"""The coherence-backend strategy interface.

``DsmNode`` (repro.dsm.protocol) is the per-node *host*: it owns the
pieces every protocol shares — the lock and barrier subsystems, the
prefetch engine and FT manager hooks, message dispatch, and the fault
counters.  Everything protocol-*specific* — fault handling, the
release/acquire consistency actions, notice propagation, and the
checkpoint snapshot/restore pair — lives behind this narrow
:class:`CoherenceBackend` interface, selected by ``RunConfig.protocol``:

- ``lrc`` — TreadMarks-style lazy release consistency (the default;
  :class:`~repro.dsm.protocol.LrcBackend`), multiple writers with
  twins/diffs and distributed diff servers;
- ``hlrc`` — home-based LRC (:class:`~repro.dsm.hlrc.HlrcBackend`):
  each page has a deterministic home node, releases flush diffs home
  eagerly, and faults pull the whole page from the home;
- ``sc`` — single-writer sequentially-consistent invalidate
  (:class:`~repro.dsm.sc.ScBackend`): a per-page directory serializes
  ownership transfers, write faults invalidate every copy, and there
  are no twins, diffs, or vector clocks.

Every backend — even SC, which needs none of them — exposes ``vc``,
``wn_log``, ``diff_store`` and ``intervals`` attributes, because the
shared lock/barrier subsystems piggyback vector-clock snapshots and
write-notice sets on their messages.  SC satisfies them with *inert*
instances (a never-advancing clock, an empty log), which keeps the
synchronization code paths — and their message sizes — identical
across protocols without per-protocol branches in locks/barriers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import ConfigError, ProtocolError
from repro.metrics.counters import Category

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.dsm.pagestate import PageCoherence
    from repro.network import Message
    from repro.sim import Event

__all__ = ["BACKEND_NAMES", "CoherenceBackend", "make_backend"]

#: Valid ``RunConfig.protocol`` values, in presentation order.
BACKEND_NAMES = ("lrc", "hlrc", "sc")


class CoherenceBackend:
    """One coherence protocol's per-node state machine.

    Subclasses implement the narrow surface the host, the thread
    scheduler, the synchronization subsystems and the verifier rely on.
    All generator-returning methods run in simulation context and may
    charge CPU, send messages and wait on events.
    """

    #: The registry key, also recorded in reports and checkpoints.
    name = "?"
    #: Whether the diff-based prefetch protocol (PREFETCH_REQUEST /
    #: PREFETCH_REPLY carrying diffs) applies.  Backends without diff
    #: servers get early-binding prefetch instead: the engine starts
    #: the backend's own fetch ahead of the access.
    supports_diff_prefetch = False

    def __init__(self, host) -> None:
        self.host = host
        self.node = host.node
        self.sim = host.sim
        self.node_id = host.node_id
        self.num_nodes = host.num_nodes

    # -- shared helpers (identical across backends) ------------------------

    @property
    def prefetch(self):
        """The host's prefetch engine (installed after construction)."""
        return self.host.prefetch

    def send(self, message: "Message"):
        """Generator: charge the send cost and inject the message."""
        return self.node.send_message(message)

    def label_edge(self, message: "Message", role: str, **entity) -> None:
        """Attach an entity label to a causal message edge (trace only)."""
        if self.sim.trace_on:
            self.sim.trace.instant(
                self.sim.now,
                "protocol",
                "pag_edge",
                self.node_id,
                msg=f"m{message.msg_id}",
                role=role,
                **entity,
            )

    def _occupy_dsm(self, duration: float):
        yield from self.node.occupy(duration, Category.DSM)

    # -- page access (scheduler-facing) ------------------------------------

    def coherence(self, page_id: int) -> "PageCoherence":
        raise NotImplementedError

    def page_valid(self, page_id: int) -> bool:
        raise NotImplementedError

    def page_writable(self, page_id: int) -> bool:
        """Whether a store may land on the page right now, with no
        further protocol action and no yields."""
        raise NotImplementedError

    def ensure_valid(self, page_id: int, for_write: bool = False) -> Optional["Event"]:
        """None if the page is usable now, else a fetch event.

        ``for_write`` requests write access where the protocol
        distinguishes it (SC needs exclusive ownership before a store;
        the LRC family ignores the flag — any valid page is writable
        after :meth:`op_write_touch`).
        """
        raise NotImplementedError

    def op_write_touch(self, page_id: int) -> Generator:
        """Per-page bookkeeping for a store to a valid page."""
        raise NotImplementedError

    # -- consistency actions (lock/barrier-facing) -------------------------

    def close_interval_charged(self) -> Generator:
        """The release action (lock release, barrier arrival)."""
        raise NotImplementedError

    def apply_notices_charged(self, notices: list, advance_vc: bool = True) -> Generator:
        """The acquire action: merge received write notices."""
        raise NotImplementedError

    def flush_page_if_dirty(self, page_id: int) -> Generator:
        """Make a locally dirty page servable (LRC diff creation); a
        no-protocol-action default for backends without diff servers."""
        return
        yield  # pragma: no cover

    # -- message dispatch --------------------------------------------------

    def handle_message(self, msg: "Message") -> Generator:
        """Handle a protocol-kind message the host did not route."""
        raise ProtocolError(f"unhandled message kind {msg.kind}")
        yield  # pragma: no cover

    # -- checkpoint / verification -----------------------------------------

    def snapshot_state(self) -> dict:
        """Deep-copy the backend's protocol state at a consistent cut.

        The returned dict must share NO mutable structure with live
        state (tests/dsm/test_snapshot_aliasing.py drives this against
        every backend), and must carry a ``"vc"`` snapshot — the FT
        manager reports rollback vector clocks for every protocol
        (inert zeros under SC).
        """
        raise NotImplementedError

    def restore_state(self, snap: dict) -> None:
        raise NotImplementedError

    def global_page(self, runtime, page_id: int) -> "np.ndarray":
        """The authoritative final contents of a page (verifier path).

        Called on node 0's backend; may inspect every node's backend
        through ``runtime.dsm_nodes``.
        """
        raise NotImplementedError


def make_backend(protocol: str, host) -> CoherenceBackend:
    """Instantiate the backend named by ``RunConfig.protocol``."""
    # Imported here, not at module scope: the concrete backends import
    # this interface (and LRC lives beside the host in repro.dsm.protocol).
    if protocol == "lrc":
        from repro.dsm.protocol import LrcBackend

        return LrcBackend(host)
    if protocol == "hlrc":
        from repro.dsm.hlrc import HlrcBackend

        return HlrcBackend(host)
    if protocol == "sc":
        from repro.dsm.sc import ScBackend

        return ScBackend(host)
    raise ConfigError(f"unknown protocol {protocol!r} (choose from {BACKEND_NAMES})")
