"""Single-writer sequentially-consistent invalidate backend (``sc``).

The consistency-literature baseline (Golab's CC-vs-DSM separation,
PAPERS.md): a per-page *directory* at a deterministic manager node
(``page_id % num_nodes``) serializes ownership transfers.  A read fault
pulls the whole page from the current owner; a write fault invalidates
every copy cluster-wide before the writer proceeds.  There are **no**
twins, diffs, intervals or vector clocks — writes are globally visible
through ownership, never merged.

Every page starts as a zero-filled replica on every node (demand-zero
SHARED everywhere, owner = manager), matching LRC's "all pages start
valid" model: the first *write* fault pays the broadcast invalidation.

Transaction protocol (manager M, requester R, owner O):

- R sends ``SC_REQ`` to M; M runs one transaction per page at a time
  (FIFO queue behind a busy flag).
- Read: M forwards ``SC_FETCH`` to O; O downgrades to SHARED and sends
  the page to R as ``SC_DATA``; R installs, sends ``SC_DONE`` to M.
- Write: M sends ``SC_INVAL`` to every copy holder except R (O instead
  gets ``SC_FETCH`` with ``mode="write"`` when R needs data: it serves
  the page, invalidates its own copy, and acks).  When every remote ack
  is in, M sends ``SC_GRANT`` (carrying whether data was served, so R
  knows to wait for it); R installs, flips to EXCLUSIVE, sends
  ``SC_DONE``.
- Directory bookkeeping (owner/copyset) happens when the fetch/grant is
  *issued*, not at ``SC_DONE`` — so the directory is consistent at any
  barrier cut even while a fire-and-forget DONE is still in flight (the
  busy flag alone straddles the cut, and restore clears it; a
  post-rollback stale DONE is discarded by the incarnation check).

Interactions where both ends are the same node (R==M, O==M, M holding a
copy) are local calls — the :class:`~repro.network.message.Message`
model deliberately rejects self-addressed datagrams.

Cost model: a transaction charges the directory ``lock_handler`` per
admission, the owner ``diff_create_us(page, 0)`` to copy the page out,
the requester ``diff_apply_us(page)`` to install it, plus the usual
``fault_handler``/``page_validate`` bracket around the fault — the same
primitives the LRC family charges, so protocol comparisons measure
protocol structure, not accounting conventions.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

import numpy as np

from repro.dsm.backend import CoherenceBackend
from repro.dsm.interval import DiffStore, IntervalManager
from repro.dsm.vclock import VectorClock
from repro.dsm.writenotice import WriteNoticeLog
from repro.errors import ProtocolError
from repro.metrics.counters import Category
from repro.network import PRIORITY_DEMAND, Message, MessageKind
from repro.sim import Event, spawn

__all__ = ["ScBackend"]

#: Page access modes.
INVALID = "invalid"
SHARED = "shared"
EXCLUSIVE = "exclusive"


class _ScPage:
    """Requester-side per-page state."""

    __slots__ = ("mode", "fetch_event", "data_event", "data_installed", "pins", "unpin_event")

    def __init__(self) -> None:
        self.mode = SHARED
        #: Shared fault-completion event (request combining).
        self.fetch_event: Optional[Event] = None
        #: Arrival event for an expected SC_DATA (one per transaction).
        self.data_event: Optional[Event] = None
        #: Whether the current transaction's data has been installed.
        self.data_installed = False
        #: Anti-starvation hold (see ``ScBackend._unpinned``): nonzero
        #: between a completed write fault and the faulting store.
        self.pins = 0
        #: Fired when ``pins`` drops to zero (parked serves re-check).
        self.unpin_event: Optional[Event] = None


class _Directory:
    """Manager-side per-page directory entry."""

    __slots__ = ("owner", "copyset", "busy", "queue", "done_event", "acks_pending", "ack_event")

    def __init__(self, owner: int, num_nodes: int) -> None:
        self.owner = owner
        self.copyset = set(range(num_nodes))
        self.busy = False
        self.queue: deque = deque()
        self.done_event: Optional[Event] = None
        self.acks_pending = 0
        self.ack_event: Optional[Event] = None


class ScBackend(CoherenceBackend):
    """Directory-based single-writer invalidate protocol."""

    name = "sc"
    supports_diff_prefetch = False

    def __init__(self, host) -> None:
        super().__init__(host)
        # Inert LRC-shaped state: the lock/barrier subsystems piggyback
        # vector-clock snapshots and write-notice sets on their messages
        # for every protocol.  Under SC the clock never advances and the
        # log stays empty, so those payloads are all-zeros/empty with
        # identical message sizes and no per-protocol branches.
        self.vc = VectorClock(self.num_nodes, owner=self.node_id)
        self.intervals = IntervalManager(owner=self.node_id)
        self.wn_log = WriteNoticeLog(self.num_nodes)
        self.diff_store = DiffStore()
        self._pages: dict[int, _ScPage] = {}
        #: Directory entries for pages this node manages (lazy).
        self._directory: dict[int, _Directory] = {}
        self._next_request_id = 0

    # -- topology ----------------------------------------------------------

    def manager_of(self, page_id: int) -> int:
        return page_id % self.num_nodes

    def _page(self, page_id: int) -> _ScPage:
        state = self._pages.get(page_id)
        if state is None:
            state = _ScPage()
            self._pages[page_id] = state
        return state

    def _dir(self, page_id: int) -> _Directory:
        if self.manager_of(page_id) != self.node_id:
            raise ProtocolError(
                f"node {self.node_id} is not the manager of page {page_id}"
            )
        entry = self._directory.get(page_id)
        if entry is None:
            entry = _Directory(owner=self.node_id, num_nodes=self.num_nodes)
            self._directory[page_id] = entry
        return entry

    # -- scheduler-facing surface ------------------------------------------

    def coherence(self, page_id: int):
        # The LRC PageCoherence record does not exist under SC; the few
        # callers that reach for it are LRC-only paths.
        raise ProtocolError("sc backend has no PageCoherence records")

    def page_valid(self, page_id: int) -> bool:
        return self._page(page_id).mode != INVALID

    def page_writable(self, page_id: int) -> bool:
        return self._page(page_id).mode == EXCLUSIVE

    def op_write_touch(self, page_id: int) -> Generator:
        """Release the write fault's anti-starvation pin.

        The scheduler touches every page of a write op after the ensure
        pass and immediately before the no-yield check-and-store, so
        "the touch ran" means "the faulting store is about to land".
        The release is *scheduled* rather than immediate: firing the
        unpin event synchronously would let a parked invalidation strip
        the page before the store, which is the exact race the pin
        exists to close.  ``schedule(0)`` runs after the current
        synchronous chain — i.e. after the store — at the same instant.
        """
        state = self._page(page_id)
        if state.pins:
            self.sim.schedule(0.0, self._release_pin, page_id)
        return
        yield  # pragma: no cover

    def _release_pin(self, page_id: int) -> None:
        state = self._page(page_id)
        if state.pins:
            state.pins -= 1
            if state.pins == 0 and state.unpin_event is not None:
                event, state.unpin_event = state.unpin_event, None
                event.succeed(None)

    def _unpinned(self, page_id: int) -> Generator:
        """Park until the page's write-fault pin (if any) is released.

        Without the pin, a hot page livelocks under multithreading: the
        scheduler may run other threads between a write fault completing
        and the faulting thread's store, and in that window the next
        queued transaction steals the page — the store never lands, the
        thread re-faults, repeat.  Real SC implementations hold the page
        at the faulting processor until the faulting access completes
        (Li & Hudak's IVY); the pin is that hold.  Deadlock-free: the
        scheduler ensures a write's pages in ascending address order,
        so a pin holder only ever waits on pages *above* everything it
        has pinned, and a cyclic wait would need a descending step.
        """
        state = self._page(page_id)
        while state.pins:
            if state.unpin_event is None:
                state.unpin_event = Event(
                    self.sim, name=f"scunpin(p{page_id})@{self.node_id}"
                )
            yield state.unpin_event

    def ensure_valid(self, page_id: int, for_write: bool = False) -> Optional[Event]:
        state = self._page(page_id)
        satisfied = state.mode == EXCLUSIVE or (not for_write and state.mode != INVALID)
        if satisfied:
            return None
        if state.fetch_event is not None and not state.fetch_event.triggered:
            # Request combining.  A concurrent read fault may complete
            # with SHARED while a writer needs EXCLUSIVE: the waiter
            # re-checks on wake and re-issues (scheduler guard loop).
            return state.fetch_event
        done = Event(self.sim, name=f"scfetch(p{page_id})@{self.node_id}")
        state.fetch_event = done
        mode = "write" if for_write else "read"
        spawn(
            self.sim,
            self._acquire(page_id, mode, done),
            name=f"scfetch[{self.node_id}]",
            group=f"node{self.node_id}",
        )
        return done

    # -- requester side ----------------------------------------------------

    def _acquire(self, page_id: int, mode: str, done: Event) -> Generator:
        """The fault handler: one ownership transaction per iteration."""
        self.host.faults += 1
        costs = self.node.costs
        tr = self.sim.trace
        pf = self.sim.profile
        fault_started = self.sim.now
        if pf.enabled:
            pf.entity_add("page", page_id, "faults")
            if mode == "write":
                pf.entity_add("page", page_id, "write_faults")
        fault_id = f"n{self.node_id}:f{self.host.faults}"
        if tr.enabled:
            tr.async_begin(
                self.sim.now, "protocol", "page_fault", self.node_id, fault_id, page=page_id
            )
        yield from self.node.occupy(costs.fault_handler, Category.DSM)
        state = self._page(page_id)
        needed_remote = False
        guard = 0
        while not (state.mode == EXCLUSIVE or (mode == "read" and state.mode != INVALID)):
            guard += 1
            if guard > 64:
                raise ProtocolError(f"sc acquire of page {page_id} cannot converge")
            request_id = self._next_request_id
            self._next_request_id = request_id + 1
            state.data_event = Event(self.sim, name=f"scdata(p{page_id})@{self.node_id}")
            state.data_installed = False
            grant = Event(self.sim, name=f"scgrant(p{page_id})@{self.node_id}")
            manager = self.manager_of(page_id)
            if tr.enabled:
                tr.async_begin(
                    self.sim.now,
                    "protocol",
                    "sc_txn",
                    self.node_id,
                    f"n{self.node_id}:sr{request_id}",
                    page=page_id,
                    mode=mode,
                )
            if manager == self.node_id:
                # Local directory: admit the request in a separate
                # process — the transaction waits for data/acks that
                # this very process must consume.
                self._admit(page_id, self.node_id, mode, grant)
            else:
                needed_remote = True
                out = Message(
                    src=self.node_id,
                    dst=manager,
                    kind=MessageKind.SC_REQ,
                    size_bytes=24,
                    priority=PRIORITY_DEMAND,
                    payload={
                        "page_id": page_id,
                        "mode": mode,
                        "requester": self.node_id,
                        "grant": grant,
                    },
                )
                self.label_edge(out, "request", page=page_id, request_id=request_id)
                yield from self.send(out)
            # The grant closes the transaction from the requester's
            # side: for reads it is sent with the fetch (completion is
            # data arrival), for writes after every invalidation acked.
            result = yield grant
            if result and result.get("data_sent") and not state.data_installed:
                yield from self._await_data(state)
            if mode == "write":
                state.mode = EXCLUSIVE
            elif state.mode == INVALID:
                state.mode = SHARED
            if self.sim.sanitizer_on:
                self.sim.sanitizer.on_sc_install(self.node_id, page_id, mode)
            if tr.enabled:
                tr.async_end(
                    self.sim.now,
                    "protocol",
                    "sc_txn",
                    self.node_id,
                    f"n{self.node_id}:sr{request_id}",
                )
            # Fire-and-forget completion notice releases the directory.
            if manager == self.node_id:
                self._txn_done(page_id)
            else:
                out = Message(
                    src=self.node_id,
                    dst=manager,
                    kind=MessageKind.SC_DONE,
                    size_bytes=16,
                    priority=PRIORITY_DEMAND,
                    payload={"page_id": page_id},
                )
                self.label_edge(out, "done", page=page_id, request_id=request_id)
                yield from self.send(out)
        if mode == "write":
            # Hold the page until the faulting store lands — released
            # by op_write_touch (see _unpinned for why this must exist).
            state.pins += 1
        yield from self.node.occupy(costs.page_validate, Category.DSM)
        if self.prefetch is not None:
            self.prefetch.on_page_validated(page_id)
        if tr.enabled:
            tr.async_end(
                self.sim.now,
                "protocol",
                "page_fault",
                self.node_id,
                fault_id,
                remote=needed_remote,
            )
        if pf.enabled:
            service = self.sim.now - fault_started
            pf.observe(self.node_id, "page_fault_us", service)
            pf.entity_add("page", page_id, "stall_us", service)
            if needed_remote:
                pf.entity_add("page", page_id, "remote_faults")
        if needed_remote:
            # Table-1 accounting: the scheduler classifies the stall as
            # a remote miss (vs a locally-satisfied fault) off this flag.
            done.needed_remote = True  # type: ignore[attr-defined]
        done.succeed(None)

    def _await_data(self, state: _ScPage) -> Generator:
        event = state.data_event
        if event is not None and not event.triggered:
            yield event

    def _install_data(self, page_id: int, data: np.ndarray) -> Generator:
        """Copy served page contents in and charge the install cost."""
        page = self.node.pages.page(page_id)
        page[:] = data
        state = self._page(page_id)
        state.data_installed = True
        if self.sim.profile_on:
            pf = self.sim.profile
            pf.entity_add("page", page_id, "page_fetches")
            pf.entity_add("page", page_id, "bytes", len(data))
        yield from self.node.occupy(self.node.costs.diff_apply_us(len(data)), Category.DSM)
        if state.data_event is not None:
            state.data_event.succeed(None)

    def _invalidate_local(self, page_id: int) -> None:
        state = self._page(page_id)
        if state.mode == INVALID:
            return
        state.mode = INVALID
        if self.sim.sanitizer_on:
            self.sim.sanitizer.on_sc_invalidate(self.node_id, page_id)
        if self.sim.profile_on:
            self.sim.profile.entity_add("page", page_id, "invalidations")
        if self.sim.trace_on:
            self.sim.trace.instant(
                self.sim.now, "protocol", "sc_invalidate", self.node_id, page=page_id
            )
        if self.prefetch is not None:
            self.prefetch.on_invalidation(page_id)

    # -- owner side --------------------------------------------------------

    def _serve_fetch(self, page_id: int, requester: int, mode: str) -> Generator:
        """Copy the page out to the requester.

        Serving a read *downgrades* the owner to SHARED: a later local
        store must re-fault and invalidate the new reader, or the
        reader's copy would silently go stale.  Serving a write
        self-invalidates instead — the new writer must hold the only
        copy.
        """
        yield from self._unpinned(page_id)
        # The transition happens synchronously, BEFORE the copy-out cost
        # elapses: a local store racing the serve must fault and queue
        # its own transaction, not slip into (or past) the copy while
        # the data is on the wire.
        if mode == "write":
            self._invalidate_local(page_id)
        else:
            state = self._page(page_id)
            if state.mode == EXCLUSIVE:
                state.mode = SHARED
        costs = self.node.costs
        page = self.node.pages.page(page_id)
        data = page.copy()
        yield from self.node.occupy(costs.diff_create_us(len(page), 0), Category.DSM)
        if self.sim.profile_on:
            self.sim.profile.entity_add("page", page_id, "pages_served")
        out = Message(
            src=self.node_id,
            dst=requester,
            kind=MessageKind.SC_DATA,
            size_bytes=24 + len(page),
            priority=PRIORITY_DEMAND,
            payload={"page_id": page_id, "data": data},
        )
        self.label_edge(out, "data", page=page_id)
        yield from self.send(out)

    # -- manager side ------------------------------------------------------

    def _admit(self, page_id: int, requester: int, mode: str, grant: Event) -> None:
        """Queue a transaction; start the pump if the page is idle."""
        entry = self._dir(page_id)
        entry.queue.append((requester, mode, grant))
        if not entry.busy:
            entry.busy = True
            spawn(
                self.sim,
                self._run_transactions(page_id),
                name=f"scdir[{self.node_id}]",
                group=f"node{self.node_id}",
            )

    def _run_transactions(self, page_id: int) -> Generator:
        """The per-page directory pump: one transaction at a time."""
        entry = self._dir(page_id)
        costs = self.node.costs
        while entry.queue:
            requester, mode, grant = entry.queue.popleft()
            if self.sim.sanitizer_on:
                self.sim.sanitizer.on_sc_txn_start(self.node_id, page_id, requester, mode)
            # Armed BEFORE the grant can fire: a local requester resumes
            # synchronously inside grant.succeed and reports completion
            # before this generator runs again.
            entry.done_event = Event(self.sim, name=f"scdone(p{page_id})@{self.node_id}")
            yield from self.node.occupy(costs.lock_handler, Category.DSM)
            if mode == "read":
                yield from self._txn_read(entry, page_id, requester, grant)
            else:
                yield from self._txn_write(entry, page_id, requester, grant)
            # Wait for the requester's completion notice before
            # admitting the next transaction (serialization).
            yield entry.done_event
            entry.done_event = None
            if self.sim.sanitizer_on:
                self.sim.sanitizer.on_sc_txn_end(self.node_id, page_id)
        entry.busy = False

    def _txn_read(
        self, entry: _Directory, page_id: int, requester: int, grant: Event
    ) -> Generator:
        owner = entry.owner
        if requester in entry.copyset:
            # The copy re-appeared before the queued transaction ran
            # (e.g. a combined fault already completed): nothing to do.
            grant.succeed({"data_sent": False})
            return
        if owner == self.node_id:
            yield from self._serve_fetch(page_id, requester, "read")
        else:
            out = Message(
                src=self.node_id,
                dst=owner,
                kind=MessageKind.SC_FETCH,
                size_bytes=24,
                priority=PRIORITY_DEMAND,
                payload={"page_id": page_id, "requester": requester, "mode": "read"},
            )
            self.label_edge(out, "fetch", page=page_id)
            yield from self.send(out)
        # Bookkeeping at issue time (not at DONE): the directory is
        # consistent at any barrier cut — see the module docstring.
        entry.copyset.add(requester)
        grant.succeed({"data_sent": True})

    def _txn_write(
        self, entry: _Directory, page_id: int, requester: int, grant: Event
    ) -> Generator:
        owner = entry.owner
        need_data = requester not in entry.copyset
        targets = sorted(entry.copyset - {requester})
        entry.acks_pending = 0
        entry.ack_event = None
        for target in targets:
            serve = need_data and target == owner
            if target == self.node_id:
                # Manager-resident copy: handled inline, no messages.
                if serve:
                    yield from self._serve_fetch(page_id, requester, "write")
                else:
                    yield from self._unpinned(page_id)
                    self._invalidate_local(page_id)
                continue
            entry.acks_pending += 1
            if serve:
                out = Message(
                    src=self.node_id,
                    dst=target,
                    kind=MessageKind.SC_FETCH,
                    size_bytes=24,
                    priority=PRIORITY_DEMAND,
                    payload={"page_id": page_id, "requester": requester, "mode": "write"},
                )
                self.label_edge(out, "fetch", page=page_id)
            else:
                out = Message(
                    src=self.node_id,
                    dst=target,
                    kind=MessageKind.SC_INVAL,
                    size_bytes=16,
                    priority=PRIORITY_DEMAND,
                    payload={"page_id": page_id},
                )
                self.label_edge(out, "invalidate", page=page_id)
            yield from self.send(out)
        if entry.acks_pending:
            entry.ack_event = Event(self.sim, name=f"scacks(p{page_id})@{self.node_id}")
            yield entry.ack_event
            entry.ack_event = None
        entry.owner = requester
        entry.copyset = {requester}
        data_sent = need_data
        if requester == self.node_id:
            grant.succeed({"data_sent": data_sent})
        else:
            out = Message(
                src=self.node_id,
                dst=requester,
                kind=MessageKind.SC_GRANT,
                size_bytes=16,
                priority=PRIORITY_DEMAND,
                payload={"page_id": page_id, "grant": grant, "data_sent": data_sent},
            )
            self.label_edge(out, "grant", page=page_id)
            yield from self.send(out)

    def _txn_done(self, page_id: int) -> None:
        entry = self._dir(page_id)
        if entry.done_event is not None and not entry.done_event.triggered:
            entry.done_event.succeed(None)

    # -- consistency actions -----------------------------------------------

    def close_interval_charged(self) -> Generator:
        """Releases are free: every write was globally ordered when its
        fault completed — there is nothing to publish."""
        return
        yield  # pragma: no cover

    def apply_notices_charged(self, notices: list, advance_vc: bool = True) -> Generator:
        if notices:
            raise ProtocolError(
                f"sc backend received {len(notices)} write notices; "
                "the inert log should never produce any"
            )
        return
        yield  # pragma: no cover

    # -- message dispatch --------------------------------------------------

    def handle_message(self, msg: Message) -> Generator:
        kind = msg.kind
        payload = msg.payload
        if kind is MessageKind.SC_REQ:
            self._admit(
                payload["page_id"], payload["requester"], payload["mode"], payload["grant"]
            )
            return
            yield  # pragma: no cover
        if kind is MessageKind.SC_FETCH:
            yield from self._serve_fetch(
                payload["page_id"], payload["requester"], payload["mode"]
            )
            if payload["mode"] == "write":
                out = Message(
                    src=self.node_id,
                    dst=msg.src,
                    kind=MessageKind.SC_INVAL_ACK,
                    size_bytes=16,
                    priority=PRIORITY_DEMAND,
                    payload={"page_id": payload["page_id"]},
                )
                yield from self.send(out)
        elif kind is MessageKind.SC_DATA:
            yield from self._install_data(payload["page_id"], payload["data"])
        elif kind is MessageKind.SC_INVAL:
            yield from self._unpinned(payload["page_id"])
            self._invalidate_local(payload["page_id"])
            yield from self.node.occupy(
                self.node.costs.write_notice_apply, Category.DSM
            )
            out = Message(
                src=self.node_id,
                dst=msg.src,
                kind=MessageKind.SC_INVAL_ACK,
                size_bytes=16,
                priority=PRIORITY_DEMAND,
                payload={"page_id": payload["page_id"]},
            )
            yield from self.send(out)
        elif kind is MessageKind.SC_INVAL_ACK:
            entry = self._dir(payload["page_id"])
            entry.acks_pending -= 1
            if entry.acks_pending == 0 and entry.ack_event is not None:
                entry.ack_event.succeed(None)
        elif kind is MessageKind.SC_GRANT:
            payload["grant"].succeed({"data_sent": payload["data_sent"]})
        elif kind is MessageKind.SC_DONE:
            self._txn_done(payload["page_id"])
        else:
            yield from super().handle_message(msg)

    # -- checkpoint / recovery ---------------------------------------------

    def snapshot_state(self) -> dict:
        """Deep-copy SC state at a barrier cut.

        All threads are blocked at the barrier, so no transaction is
        *queued* or mid-flight anywhere — at most a fire-and-forget
        SC_DONE is still on the wire, which the issue-time directory
        bookkeeping already accounts for (busy is deliberately not
        snapshotted; restore clears it and the incarnation bump
        discards the stale DONE).
        """
        for entry in self._directory.values():
            if entry.queue:
                raise ProtocolError("sc directory has queued transactions at a cut")
        for pid, state in self._pages.items():
            if state.pins:
                # Impossible at a barrier cut: a pin means a local thread
                # is mid-write, hence not at the barrier.
                raise ProtocolError(f"sc page {pid} is pinned at a cut")
        return {
            # Inert, but present: the FT manager reports rollback
            # vector clocks for every protocol.
            "vc": self.vc.snapshot(),
            "page_modes": {pid: state.mode for pid, state in self._pages.items()},
            "directory": {
                pid: {"owner": entry.owner, "copyset": sorted(entry.copyset)}
                for pid, entry in self._directory.items()
            },
            "next_request_id": self._next_request_id,
        }

    def restore_state(self, snap: dict) -> None:
        self.vc.restore(snap["vc"])
        self._pages = {}
        for pid, mode in snap["page_modes"].items():
            state = _ScPage()
            state.mode = mode
            self._pages[pid] = state
        self._directory = {}
        for pid, entry_snap in snap["directory"].items():
            entry = _Directory(owner=entry_snap["owner"], num_nodes=self.num_nodes)
            entry.copyset = set(entry_snap["copyset"])
            self._directory[pid] = entry
        self._next_request_id = snap["next_request_id"]
        if self.sim.sanitizer_on:
            # Re-seed the sanitizer's copy mirror (cleared on rollback)
            # from the restored page modes — see on_sc_restore.
            self.sim.sanitizer.on_sc_restore(
                self.node_id,
                [pid for pid, state in self._pages.items() if state.mode == INVALID],
            )

    # -- verification --------------------------------------------------------

    def global_page(self, runtime, page_id: int) -> np.ndarray:
        """The owner's copy is authoritative under single-writer."""
        manager = runtime.dsm_nodes[self.manager_of(page_id)]
        entry = manager.backend._directory.get(page_id)
        owner = entry.owner if entry is not None else self.manager_of(page_id)
        return runtime.dsm_nodes[owner].node.pages.page(page_id).copy()
