"""Centralized barriers with write-notice exchange.

A barrier in TreadMarks is both a synchronization point and the moment
all-to-all consistency information flows: each arriving node performs an
LRC release, ships its new write notices (and vector clock) to the
barrier manager, and the manager's release message returns every notice
the node has not seen.

Multithreaded nodes *gather locally* (Section 4.1): only the last local
thread to arrive generates the remote arrival message, and all local
threads wake on the single release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.network import Message, MessageKind
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.protocol import DsmNode

__all__ = ["BarrierSubsystem"]

BARRIER_MANAGER = 0


@dataclass
class _NodeEpisode:
    """Local state for one barrier episode on one node."""

    arrived: int = 0
    waiters: list[Event] = field(default_factory=list)


@dataclass
class _ManagerEpisode:
    """Manager state for one barrier episode."""

    arrivals: int = 0
    node_vcs: dict[int, tuple[int, ...]] = field(default_factory=dict)


class BarrierSubsystem:
    """All barrier behaviour for one node."""

    def __init__(self, dsm: "DsmNode") -> None:
        self.dsm = dsm
        #: episode number per barrier id (local count of completed uses).
        self._episode: dict[int, int] = {}
        self._local: dict[tuple[int, int], _NodeEpisode] = {}
        self._manager: dict[tuple[int, int], _ManagerEpisode] = {}
        #: highest own interval index already shipped to the manager.
        self._own_sent_upto = 0
        #: (split_brain_bug only) episodes completed without their full
        #: attendance, mapping to the nodes that were skipped — their
        #: late arrivals are answered with a direct release instead of
        #: being counted toward an episode that no longer exists.
        self._bug_skipped: dict[tuple[int, int], set[int]] = {}

    @property
    def is_manager(self) -> bool:
        return self.dsm.node_id == BARRIER_MANAGER

    def _local_episode(self, barrier_id: int) -> tuple[tuple[int, int], _NodeEpisode]:
        episode = self._episode.setdefault(barrier_id, 0)
        key = (barrier_id, episode)
        return key, self._local.setdefault(key, _NodeEpisode())

    # -- thread-facing ------------------------------------------------------

    def op_arrive(self, barrier_id: int, local_thread_count: int):
        """Thread arrival (generator); returns the Event releasing it."""
        costs = self.dsm.node.costs
        key, episode = self._local_episode(barrier_id)
        episode.arrived += 1
        wake = Event(self.dsm.sim, name=f"barrier{barrier_id}@{self.dsm.node_id}")
        if self.dsm.sim.profile_on:
            pf = self.dsm.sim.profile
            # Closed in _apply_release when the release wakes this thread.
            wake.profile_t0 = self.dsm.sim.now  # type: ignore[attr-defined]
        episode.waiters.append(wake)
        if self.dsm.sim.trace_on:
            tr = self.dsm.sim.trace
            tr.instant(
                self.dsm.sim.now,
                "protocol",
                "barrier_arrive",
                self.dsm.node_id,
                barrier=barrier_id,
                episode=self._episode[barrier_id],
                arrived=episode.arrived,
            )
        yield from self.dsm.occupy_dsm(costs.barrier_local_gather)
        if episode.arrived < local_thread_count:
            return wake
        if episode.arrived > local_thread_count:
            raise ProtocolError(
                f"barrier {barrier_id}: {episode.arrived} arrivals for "
                f"{local_thread_count} local threads"
            )
        # Last local thread: LRC release, then notify the manager.
        yield from self.dsm.close_interval_charged()
        own_new = self.dsm.wn_log.own_notices_after(self.dsm.node_id, self._own_sent_upto)
        self._own_sent_upto = self.dsm.vc[self.dsm.node_id]
        vc_snapshot = self.dsm.vc.snapshot()
        if self.is_manager:
            yield from self._manager_arrival(
                barrier_id, self._episode[barrier_id], self.dsm.node_id, vc_snapshot, own_new
            )
        else:
            from repro.dsm.writenotice import WriteNoticeLog

            out = Message(
                src=self.dsm.node_id,
                dst=BARRIER_MANAGER,
                kind=MessageKind.BARRIER_ARRIVE,
                size_bytes=16
                + self.dsm.vc.size_bytes
                + WriteNoticeLog.wire_bytes(own_new),
                payload={
                    "barrier_id": barrier_id,
                    "episode": self._episode[barrier_id],
                    "vc": vc_snapshot,
                    "notices": own_new,
                },
            )
            self.dsm.label_edge(
                out, "arrive", barrier=barrier_id, episode=self._episode[barrier_id]
            )
            yield from self.dsm.send(out)
        return wake

    # -- message handlers ----------------------------------------------------

    def handle_arrive(self, msg: Message):
        yield from self.dsm.occupy_dsm(self.dsm.node.costs.barrier_handler)
        yield from self._manager_arrival(
            msg.payload["barrier_id"],
            msg.payload["episode"],
            msg.src,
            msg.payload["vc"],
            msg.payload["notices"],
        )

    def _manager_arrival(self, barrier_id, episode, src, vc_snapshot, notices):
        if not self.is_manager:
            raise ProtocolError(f"node {self.dsm.node_id} received a barrier arrival")
        key = (barrier_id, episode)
        skipped = self._bug_skipped.get(key)
        if skipped is not None and src in skipped:
            # (split_brain_bug only) this episode already completed
            # without the arriving node; the buggy manager papers over
            # the stale arrival by handing it its release directly.
            skipped.discard(src)
            if not skipped:
                del self._bug_skipped[key]
            self.dsm.wn_log.add_all(notices)
            from repro.dsm.writenotice import WriteNoticeLog

            missing = self.dsm.wn_log.unseen_by(vc_snapshot)
            out = Message(
                src=self.dsm.node_id,
                dst=src,
                kind=MessageKind.BARRIER_RELEASE,
                size_bytes=24 + WriteNoticeLog.wire_bytes(missing),
                payload={
                    "barrier_id": barrier_id,
                    "episode": episode,
                    "notices": missing,
                },
            )
            self.dsm.label_edge(out, "release", barrier=barrier_id, episode=episode)
            yield from self.dsm.send(out)
            return
        state = self._manager.setdefault(key, _ManagerEpisode())
        if src in state.node_vcs:
            raise ProtocolError(f"duplicate barrier arrival from node {src}")
        if self.dsm.sim.profile_on:
            pf = self.dsm.sim.profile
            # First arrival opens the skew window (first-begin wins).
            pf.span_begin(("barrier_skew",) + key, self.dsm.sim.now)
        state.arrivals += 1
        state.node_vcs[src] = vc_snapshot
        # Merge the arriving notices into the manager's log (free of
        # charge beyond the handler cost already paid).  The manager's
        # own vector clock must NOT advance here: these notices are only
        # *applied* (clock + invalidations) by its own release, so its
        # release computation below still sees them as unseen.
        self.dsm.wn_log.add_all(notices)
        if state.arrivals < self.dsm.num_nodes:
            return
        yield from self._complete(barrier_id, episode, state)

    def _complete(self, barrier_id, episode, state):
        """Checkpoint (maybe) and fan out the release for a full episode."""
        key = (barrier_id, episode)
        if self.dsm.sim.profile_on:
            pf = self.dsm.sim.profile
            # Pop-on-record: a recovery replay re-enters via
            # resume_release, never here, so the skew of an episode is
            # recorded exactly once even if its release is redone.
            skew = pf.span_end(("barrier_skew",) + key, self.dsm.sim.now)
            if skew is not None:
                pf.observe(self.dsm.node_id, "barrier_skew_us", skew)
                pf.entity_add("barrier", barrier_id, "skew_us", skew)
                pf.entity_add("barrier", barrier_id, "episodes")
        # Everyone is (provably) blocked at the barrier, cluster-wide:
        # this is the one globally quiescent instant, which makes it the
        # consistent cut for coordinated checkpoints.
        ft = self.dsm.ft
        if ft is not None and ft.wants_checkpoint(barrier_id, episode):
            yield from ft.coordinated_checkpoint(barrier_id, episode, dict(state.node_vcs))
        yield from self._release_all(barrier_id, episode, state)

    def bug_release_without(self, fenced: set):
        """(split_brain_bug only) complete episodes missing only fenced nodes.

        This is the seeded membership/barrier hole the chaos harness
        must catch: the buggy manager treats a fenced node as having
        arrived, so the barrier — and its checkpoint, a cut spanning the
        membership split — commits while the excluded node is still
        computing on the other side of the fence.
        """
        for key in sorted(self._manager):
            state = self._manager.get(key)
            if state is None:
                continue
            missing = set(range(self.dsm.num_nodes)) - set(state.node_vcs)
            if not missing or not missing <= fenced:
                continue
            self._bug_skipped[key] = missing | self._bug_skipped.get(key, set())
            barrier_id, episode = key
            yield from self._complete(barrier_id, episode, state)

    def _release_all(self, barrier_id, episode, state):
        """Fan the release (and unseen notices) out to every node.

        Factored out of :meth:`_manager_arrival` so recovery can *replay*
        the fan-out: rolling back to the barrier cut re-runs exactly this
        loop, re-sending every node the write notices it was missing.
        """
        if self.dsm.sim.trace_on:
            tr = self.dsm.sim.trace
            # The global release instant: PhaseTimeline uses these as
            # barrier-epoch boundaries.
            tr.instant(
                self.dsm.sim.now,
                "protocol",
                "barrier_release",
                self.dsm.node_id,
                barrier=barrier_id,
                episode=episode,
            )
        from repro.dsm.writenotice import WriteNoticeLog

        for node_id, node_vc in state.node_vcs.items():
            missing = self.dsm.wn_log.unseen_by(node_vc)
            if node_id == self.dsm.node_id:
                yield from self._apply_release(barrier_id, episode, missing)
            else:
                out = Message(
                    src=self.dsm.node_id,
                    dst=node_id,
                    kind=MessageKind.BARRIER_RELEASE,
                    size_bytes=24 + WriteNoticeLog.wire_bytes(missing),
                    payload={
                        "barrier_id": barrier_id,
                        "episode": episode,
                        "notices": missing,
                    },
                )
                # One labelled edge per waiter: the release fan-out is
                # fully enumerated in the trace, so the PAG knows every
                # message this barrier episode unblocked.
                self.dsm.label_edge(out, "release", barrier=barrier_id, episode=episode)
                yield from self.dsm.send(out)
        del self._manager[(barrier_id, episode)]

    def resume_release(self, barrier_id: int, episode: int):
        """Replay the release fan-out after a rollback to this episode's cut."""
        state = self._manager.get((barrier_id, episode))
        if state is None or state.arrivals < self.dsm.num_nodes:
            raise ProtocolError(
                f"cannot resume release of incomplete episode ({barrier_id}, {episode})"
            )
        yield from self._release_all(barrier_id, episode, state)

    def handle_release(self, msg: Message):
        yield from self.dsm.occupy_dsm(self.dsm.node.costs.barrier_handler)
        yield from self._apply_release(
            msg.payload["barrier_id"], msg.payload["episode"], msg.payload["notices"]
        )

    def _apply_release(self, barrier_id: int, episode: int, notices):
        """Apply invalidations and wake every local thread."""
        yield from self.dsm.apply_notices_charged(notices)
        key = (barrier_id, episode)
        state = self._local.get(key)
        if state is None:
            raise ProtocolError(f"barrier release for unknown episode {key}")
        self._episode[barrier_id] = episode + 1
        waiters = state.waiters
        del self._local[key]
        if self.dsm.sim.trace_on:
            tr = self.dsm.sim.trace
            tr.instant(
                self.dsm.sim.now,
                "protocol",
                "barrier_resume",
                self.dsm.node_id,
                barrier=barrier_id,
                episode=episode,
                waiters=len(waiters),
            )
        pf = self.dsm.sim.profile
        for wake in waiters:
            if pf.enabled:
                t0 = getattr(wake, "profile_t0", None)
                if t0 is not None:
                    waited = self.dsm.sim.now - t0
                    pf.observe(self.dsm.node_id, "barrier_wait_us", waited)
                    pf.entity_add("barrier", barrier_id, "wait_us", waited)
                    pf.entity_add("barrier", barrier_id, "waits")
            wake.succeed(None)
        if self.dsm.sim.telemetry_on:
            # Per-node epoch boundary for the flight recorder: the
            # closed episode's stall/switch accounting ends here.
            self.dsm.sim.telemetry.on_barrier_epoch(
                self.dsm.node_id, barrier_id, episode
            )

    # -- checkpoint / recovery ----------------------------------------------

    def snapshot_state(self) -> dict:
        """Barrier state at the checkpoint cut.

        Waiter events are deliberately NOT captured: recovery rebuilds
        the threads and re-registers a fresh wake event per thread via
        :meth:`register_restored_waiter`.
        """
        return {
            "episode": dict(self._episode),
            "own_sent_upto": self._own_sent_upto,
            "local": {key: ep.arrived for key, ep in self._local.items()},
            "manager": {
                key: (ms.arrivals, dict(ms.node_vcs)) for key, ms in self._manager.items()
            },
        }

    def restore_state(self, snap: dict) -> None:
        self._episode = dict(snap["episode"])
        self._own_sent_upto = snap["own_sent_upto"]
        self._local = {
            key: _NodeEpisode(arrived=arrived) for key, arrived in snap["local"].items()
        }
        self._manager = {
            key: _ManagerEpisode(arrivals=arrivals, node_vcs=dict(vcs))
            for key, (arrivals, vcs) in snap["manager"].items()
        }

    def register_restored_waiter(self, barrier_id: int) -> Event:
        """Re-attach a rebuilt thread to its in-progress barrier episode."""
        key = (barrier_id, self._episode[barrier_id])
        state = self._local.get(key)
        if state is None:
            raise ProtocolError(f"no in-progress barrier episode {key} to rejoin")
        wake = Event(self.dsm.sim, name=f"barrier{barrier_id}@{self.dsm.node_id}")
        state.waiters.append(wake)
        return wake
