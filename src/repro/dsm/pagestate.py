"""Per-node, per-page coherence state.

A page on a node is *valid* when, for every other node, the diffs
applied locally cover every write notice received.  Writes additionally
track a *twin* (clean copy) from which diffs are computed, and a dirty
flag cleared when a diff is flushed (the page is then "write-protected";
the next write opens a sub-interval and a fresh twin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim import Event

__all__ = ["PageCoherence"]


@dataclass(slots=True)
class PageCoherence:
    """Coherence metadata for one page on one node."""

    page_id: int
    num_nodes: int
    #: Highest interval index per writer whose modifications are applied
    #: to the local copy.
    applied_upto: list[int] = field(default_factory=list)
    #: Highest interval index per writer for which a write notice exists.
    needed_upto: list[int] = field(default_factory=list)
    dirty: bool = False
    twin: Optional[np.ndarray] = None
    #: Set when an interval close announced this (still dirty) page:
    #: the next local write must open a fresh write notice, exactly as
    #: TreadMarks' per-interval write protection forces a fault.
    write_protected: bool = False
    #: Per-byte lamport watermark of applied remote diffs (lazy).  A
    #: diff byte is applied only if its interval's timestamp is at least
    #: the watermark — enforcing happened-before-1 ordering regardless
    #: of how fetch batches interleave.
    byte_lamports: Optional[np.ndarray] = None

    def lamport_watermarks(self, page_size: int) -> np.ndarray:
        if self.byte_lamports is None:
            self.byte_lamports = np.zeros(page_size, dtype=np.int64)
        return self.byte_lamports
    #: In-flight fault/fetch completion event (shared by all local
    #: threads faulting on the page — request combining).
    fetch_event: Optional[Event] = None

    def __post_init__(self) -> None:
        if not self.applied_upto:
            self.applied_upto = [0] * self.num_nodes
        if not self.needed_upto:
            self.needed_upto = [0] * self.num_nodes

    @property
    def valid(self) -> bool:
        return all(a >= n for a, n in zip(self.applied_upto, self.needed_upto))

    @property
    def fetch_in_flight(self) -> bool:
        return self.fetch_event is not None and not self.fetch_event.triggered

    def stale_writers(self) -> list[int]:
        """Writers whose modifications are still missing locally."""
        return [
            proc
            for proc, (applied, needed) in enumerate(zip(self.applied_upto, self.needed_upto))
            if needed > applied
        ]

    def note_write_notice(self, proc: int, interval_idx: int) -> bool:
        """Record an invalidation; returns True if the page became stale."""
        was_valid = self.valid
        if interval_idx > self.needed_upto[proc]:
            self.needed_upto[proc] = interval_idx
        return was_valid and not self.valid

    def note_diffs_applied(self, proc: int, covers_through: int) -> None:
        if covers_through > self.applied_upto[proc]:
            self.applied_upto[proc] = covers_through

    # -- checkpoint / recovery -------------------------------------------

    def snapshot_state(self) -> dict:
        """Deep-copied coherence metadata (``fetch_event`` excluded: no
        fetch can be in flight at a consistent cut, and events cannot
        cross a rollback)."""
        return {
            "applied_upto": list(self.applied_upto),
            "needed_upto": list(self.needed_upto),
            "dirty": self.dirty,
            "twin": None if self.twin is None else self.twin.copy(),
            "write_protected": self.write_protected,
            "byte_lamports": None if self.byte_lamports is None else self.byte_lamports.copy(),
        }

    @classmethod
    def from_snapshot(cls, page_id: int, num_nodes: int, snap: dict) -> "PageCoherence":
        state = cls(page_id, num_nodes)
        state.applied_upto = list(snap["applied_upto"])
        state.needed_upto = list(snap["needed_upto"])
        state.dirty = snap["dirty"]
        state.twin = None if snap["twin"] is None else snap["twin"].copy()
        state.write_protected = snap["write_protected"]
        state.byte_lamports = (
            None if snap["byte_lamports"] is None else snap["byte_lamports"].copy()
        )
        return state
