"""The benchmark harness: ``python -m repro.bench``.

Sweeps applications across the paper's technique configurations — base
(O), prefetch (P), multithreading (nT), combined (nTP) — with profiling
on, and emits one machine-readable ``BENCH_<date>.json``: wall time,
category breakdowns, and latency-histogram quantiles per (app, config)
cell.  The files seed the repo's performance trajectory; two of them
(or a file and a checked-in baseline) diff with
``python -m repro.profile.compare``, which is how CI's bench-smoke job
catches perf/behaviour drift.  The simulation is deterministic, so on
one code revision the same sweep always produces the same numbers.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.api.runtime import RunConfig
from repro.apps.registry import APP_ORDER
from repro.experiments.runner import parse_label
from repro.metrics.report import RunReport
from repro.parallel import RunSpec, run_specs
from repro.profile import ProfileConfig

__all__ = ["BENCH_SCHEMA", "DEFAULT_CONFIGS", "QUICK_CONFIGS", "run_bench", "bench_filename"]

BENCH_SCHEMA = "repro-bench-1"

#: base, prefetch, multithreading, combined — the paper's four schemes.
DEFAULT_CONFIGS = ("O", "P", "4T", "4TP")
#: CI variant: fewer threads, fewer nodes (set by --quick).
QUICK_CONFIGS = ("O", "P", "2T", "2TP")

#: Histogram stats embedded per quantile row (compare gates on these).
_STATS = ("count", "mean", "p50", "p90", "p99", "max")


def normalize_app(name: str) -> str:
    """Case-insensitive app lookup ('sor' -> 'SOR')."""
    wanted = name.strip().upper()
    if wanted not in APP_ORDER:
        raise ValueError(f"unknown app {name!r} (choose from {', '.join(APP_ORDER)})")
    return wanted


def bench_filename(date: Optional[str] = None) -> str:
    return f"BENCH_{date or time.strftime('%Y%m%d')}.json"


def _run_entry(report: RunReport) -> dict:
    metrics: dict = {
        "wall_time_us": report.wall_time_us,
        "total_messages": report.total_messages,
        "total_kbytes": report.total_kbytes,
        "message_drops": report.message_drops,
        "retransmissions": report.retransmissions,
    }
    for category, value in report.breakdown.as_dict().items():
        metrics[f"time.{category}"] = value
    profile = report.profile or {}
    quantiles = {
        name: {stat: entry[stat] for stat in _STATS}
        for name, entry in profile.get("histograms", {}).items()
    }
    return {
        "app": report.app_name,
        "config": report.config_label,
        "protocol": report.protocol,
        "metrics": metrics,
        "quantiles": quantiles,
        "hot_pages": profile.get("hot_pages", []),
    }


def run_bench(
    apps: list[str],
    configs: list[str],
    num_nodes: int = 8,
    preset: str = "small",
    seed: int = 42,
    verify: bool = True,
    top_n: int = 5,
    verbose: bool = True,
    jobs: int = 1,
    protocol: str = "lrc",
) -> dict:
    """Run the sweep and return the BENCH document (not yet written).

    ``jobs > 1`` fans the (app, config) cells across worker processes;
    every run is still fully deterministic, so the document is
    byte-identical for any jobs count — only the wall clock changes.
    """
    specs = []
    for app_name in [normalize_app(name) for name in apps]:
        for label in configs:
            threads_per_node, prefetch = parse_label(label)
            config = RunConfig(
                num_nodes=num_nodes,
                threads_per_node=threads_per_node,
                prefetch=prefetch,
                seed=seed,
                protocol=protocol,
                profile=ProfileConfig(top_n=top_n),
            )
            specs.append(
                RunSpec(
                    index=len(specs),
                    app_name=app_name,
                    preset=preset,
                    label=label,
                    config=config,
                    verify=verify,
                )
            )

    started = time.time()

    def on_done(spec: RunSpec, report: RunReport) -> None:
        if verbose:
            print(
                f"  {spec.app_name:10s} [{spec.label:4s}] "
                f"wall {report.wall_time_us / 1000:9.2f} ms simulated "
                f"({time.time() - started:5.1f}s elapsed)",
                flush=True,
            )

    reports = run_specs(specs, jobs=jobs, on_done=on_done)
    return {
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%d"),
        "preset": preset,
        "nodes": num_nodes,
        "seed": seed,
        "protocol": protocol,
        "configs": list(configs),
        "runs": [_run_entry(report) for report in reports],
    }
