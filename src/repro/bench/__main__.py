"""Command-line entry: sweep the benchmark matrix, write BENCH JSON.

Examples::

    python -m repro.bench                          # 8 apps x O,P,4T,4TP
    python -m repro.bench --apps sor,fft --quick   # the CI smoke matrix
    python -m repro.bench --out BENCH_baseline.json --nodes 4
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench import (
    DEFAULT_CONFIGS,
    QUICK_CONFIGS,
    bench_filename,
    normalize_app,
    run_bench,
)
from repro.apps.registry import APP_ORDER
from repro.dsm.backend import BACKEND_NAMES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark sweep emitting a machine-readable BENCH_<date>.json "
        "(diff two with python -m repro.profile.compare).",
    )
    parser.add_argument(
        "--apps",
        default=",".join(APP_ORDER),
        help="comma-separated app names, case-insensitive (default: all 8)",
    )
    parser.add_argument(
        "--configs",
        default=None,
        help=f"comma-separated paper labels (default {','.join(DEFAULT_CONFIGS)}; "
        f"{','.join(QUICK_CONFIGS)} under --quick)",
    )
    parser.add_argument("--nodes", type=int, default=None, help="cluster size (default 8)")
    parser.add_argument(
        "--preset", default="small", choices=["small", "default", "paper"]
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--protocol",
        default="lrc",
        choices=sorted(BACKEND_NAMES),
        help="coherence backend for every cell (default lrc)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: 4 nodes and 2-thread configs unless overridden",
    )
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument(
        "--top-n", type=int, default=5, help="hot-page entries per run (default 5)"
    )
    parser.add_argument(
        "--out", metavar="PATH", help="output path (default BENCH_<date>.json)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N (app, config) cells in parallel worker processes "
        "(0 = one per CPU core); output is identical for any N",
    )
    args = parser.parse_args(argv)

    nodes = args.nodes if args.nodes is not None else (4 if args.quick else 8)
    if args.configs is not None:
        configs = [label.strip() for label in args.configs.split(",") if label.strip()]
    else:
        configs = list(QUICK_CONFIGS if args.quick else DEFAULT_CONFIGS)
    try:
        apps = [normalize_app(name) for name in args.apps.split(",") if name.strip()]
    except ValueError as exc:
        parser.error(str(exc))

    from repro.parallel import default_jobs

    jobs = default_jobs() if args.jobs == 0 else max(1, args.jobs)
    print(
        f"bench: {len(apps)} app(s) x {len(configs)} config(s) on {nodes} nodes "
        f"({args.preset} preset, seed {args.seed}, {args.protocol} protocol, "
        f"{jobs} job(s))"
    )
    document = run_bench(
        apps,
        configs,
        num_nodes=nodes,
        preset=args.preset,
        seed=args.seed,
        verify=not args.no_verify,
        top_n=args.top_n,
        jobs=jobs,
        protocol=args.protocol,
    )
    out_path = args.out or bench_filename()
    with open(out_path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(document['runs'])} runs -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
