"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class NetworkError(ReproError):
    """The network model was used incorrectly (bad node id, bad size...)."""


class TransportError(ReproError):
    """The reliable transport exhausted its retries for a message."""


class PagedMemoryError(ReproError):
    """Paged-memory misuse (out-of-range address, bad allocation...)."""


#: Deprecated alias; the trailing underscore shadowed the builtin name.
MemoryError_ = PagedMemoryError


class ProtocolError(ReproError):
    """The DSM coherence protocol reached an invalid state."""


class ProgramError(ReproError):
    """An application program misused the DSM API (e.g. releasing a lock
    it does not hold, unbalanced barrier arrivals)."""


class ConfigError(ReproError):
    """An experiment or system configuration is invalid."""


class FaultConfigError(ConfigError, ValueError):
    """A fault-injection plan is malformed (bad probability, window,
    unknown link, overlapping crash/partition...).  A
    :class:`ConfigError`, and also a :class:`ValueError`: plan
    validation failures name the offending field, and callers building
    plans from user input can catch the builtin type."""


class FailureError(ReproError):
    """The fault-tolerance layer hit an unrecoverable condition (e.g. a
    crash scheduled for a node that cannot fail, or a recovery attempted
    with no checkpoint available)."""


class CheckpointError(ReproError):
    """A checkpoint could not be taken or restored consistently."""
