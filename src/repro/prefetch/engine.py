"""Software-controlled non-binding prefetching (Section 3 of the paper).

A prefetch examines the write notices already propagated to this node,
and sends *unreliable* prefetch requests for the missing diffs to the
corresponding writers.  Replies land in a separate *prefetch heap* (a
cache of diff replies) and are applied to the page only when it is
actually accessed — so prefetched data stays visible to the coherence
protocol and can be invalidated, i.e. the prefetch is non-binding.

Outcome bookkeeping reproduces Figure 3's four-way classification of
the original remote misses:

- ``pf-hit``: the fault was satisfied entirely from the prefetch heap;
- ``pf-miss: too late``: a prefetch was outstanding (or dropped in the
  network) when the access arrived — a normal retry request is issued;
- ``pf-miss: invalidated``: prefetched data arrived but a newer write
  notice made it insufficient before use;
- ``no pf``: the page instance was never prefetched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Optional

from repro.api.ops import Prefetch
from repro.dsm.interval import StoredDiff
from repro.errors import ProtocolError
from repro.metrics.counters import Category
from repro.network import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsm.protocol import DsmNode

__all__ = ["PrefetchStats", "PrefetchEngine", "CachedPage"]


@dataclass
class CachedPage:
    """Prefetch-heap contents for one page."""

    diffs: list[StoredDiff] = field(default_factory=list)
    covers: dict[int, int] = field(default_factory=dict)  # writer -> through
    #: When the first reply was filed (profiling: lead time to the fault).
    filed_at: float = -1.0


@dataclass
class _PageRecord:
    """Per-page, per-miss-epoch prefetch state (reset at validation)."""

    outstanding: int = 0
    had_reply: bool = False
    invalidated_after_reply: bool = False
    classified: bool = False


@dataclass
class PrefetchStats:
    """Counters behind Table 1 and Figure 3."""

    issued: int = 0
    unnecessary: int = 0
    suppressed: int = 0
    remote_pages: int = 0
    request_messages: int = 0
    hits: int = 0
    late: int = 0
    invalidated: int = 0
    no_pf: int = 0
    #: Requests the local NIC refused (uplink full or injected drop) —
    #: the sender-visible loss signal that drives the throttle.
    drops_observed: int = 0
    #: Remote prefetches withheld while the drop-driven throttle is in
    #: its cool-off window (the paper's RADIX mitigation).
    throttled: int = 0
    #: Prefetch requests shed at the source because the adaptive
    #: transport reported the destination under pressure (closed-loop
    #: backpressure; zero with the adaptive layer off).
    shed: int = 0

    @property
    def covered(self) -> int:
        return self.hits + self.late + self.invalidated

    @property
    def coverage_factor(self) -> float:
        total = self.covered + self.no_pf
        return self.covered / total if total else 0.0

    @property
    def unnecessary_fraction(self) -> float:
        return self.unnecessary / self.issued if self.issued else 0.0


class PrefetchEngine:
    """Per-node prefetch machinery; installed onto a :class:`DsmNode`."""

    #: Drop-driven throttle: after a send-visible drop, remote
    #: prefetches are withheld for a cool-off that doubles per
    #: consecutive drop (the paper throttles RADIX's prefetches when the
    #: network starts dropping them, Section 5.1).
    THROTTLE_BASE_US = 1_000.0
    THROTTLE_MAX_US = 32_000.0

    def __init__(self, dsm: "DsmNode") -> None:
        self.dsm = dsm
        self.stats = PrefetchStats()
        self._cache: dict[int, CachedPage] = {}
        self._records: dict[int, _PageRecord] = {}
        self._pending: dict[int, tuple[int, int]] = {}  # request id -> (page, writer)
        self._next_request_id = 0
        self._dedup_done: set[str] = set()
        self._drop_streak = 0
        self._cooloff_until = -1.0
        dsm.prefetch = self

    def reset_volatile(self) -> None:
        """Drop all transient state at a crash rollback.

        Cached diffs, in-flight requests and throttle state all describe
        the discarded execution; statistics stay (monotone, like every
        other counter).  The dedup ledger is cleared too: the replayed
        epoch re-issues its prefetch ops and must not find them 'done'.
        """
        self._cache.clear()
        self._records.clear()
        self._pending.clear()
        self._dedup_done.clear()
        self._drop_streak = 0
        self._cooloff_until = -1.0

    # -- thread-facing op ----------------------------------------------------

    def op_prefetch(self, op: Prefetch) -> Generator:
        """Issue prefetches for every page the op's regions touch."""
        if op.dedup_key is not None:
            if op.dedup_key in self._dedup_done:
                self.stats.suppressed += 1
                return
            self._dedup_done.add(op.dedup_key)
        page_size = self.dsm.node.pages.page_size
        seen: set[int] = set()
        for addr, nbytes in op.regions:
            for page_id in self.dsm.node.pages.pages_in_range(addr, nbytes):
                if page_id in seen:
                    continue
                seen.add(page_id)
                yield from self._prefetch_page(page_id)

    def _prefetch_page(self, page_id: int) -> Generator:
        self.stats.issued += 1
        costs = self.dsm.node.costs
        if not self.dsm.backend.supports_diff_prefetch:
            # Page-mode prefetch (hlrc/sc): those protocols have no diff
            # traffic to cache, so the only latency to hide is the whole
            # fetch — start the protocol's own demand fetch *now* and
            # let the later access find the page valid or the fetch
            # already in flight (request combining).  The fetch runs the
            # real coherence transaction, so the data is never stale and
            # invalidations need no special casing; the cost is that an
            # early-bound fetch counts in the fault statistics.
            if self.dsm.page_valid(page_id):
                self.stats.unnecessary += 1
                yield from self.dsm.node.occupy(
                    costs.prefetch_issue_local, Category.PREFETCH
                )
                return
            self.stats.remote_pages += 1
            yield from self.dsm.node.occupy(
                costs.prefetch_issue_remote, Category.PREFETCH
            )
            self.dsm.ensure_valid(page_id)
            return
        state = self.dsm.coherence(page_id)
        record = self._records.get(page_id)
        already_working = (
            state.fetch_in_flight or (record is not None and record.outstanding > 0)
        )
        if state.valid or already_working:
            # Paper footnote 4: the unnecessary prefetch costs a lookup,
            # a valid-flag check, and a branch.
            self.stats.unnecessary += 1
            yield from self.dsm.node.occupy(costs.prefetch_issue_local, Category.PREFETCH)
            return
        writers = self._writers_not_cached(page_id, state)
        if not writers:
            # Everything missing is already in the prefetch heap.
            self.stats.unnecessary += 1
            yield from self.dsm.node.occupy(costs.prefetch_issue_local, Category.PREFETCH)
            return
        transport = self.dsm.node.transport
        if transport is not None and transport.adaptive:
            # Closed-loop backpressure: the transport's RTT/window state
            # replaces the hand-tuned drop cool-off.  Writers whose link
            # shows congestion (pacing backlog or inflated SRTT) are
            # shed — counted, never silent — and the demand fetch path
            # (reliable, paced) covers the page if it is really needed.
            kept = []
            for writer in writers:
                if transport.under_pressure(writer[0]):
                    self._shed_request(page_id, writer[0])
                else:
                    kept.append(writer)
            writers = kept
            if not writers:
                yield from self.dsm.node.occupy(
                    costs.prefetch_issue_local, Category.PREFETCH
                )
                return
        elif self.dsm.sim.now < self._cooloff_until:
            # The network has been dropping our requests: hold remote
            # prefetches back and let the demand fetch (reliable) do the
            # work — burning 140us per doomed request only adds load.
            self.stats.throttled += 1
            if self.dsm.sim.trace_on:
                tr = self.dsm.sim.trace
                tr.instant(
                    self.dsm.sim.now,
                    "prefetch",
                    "prefetch_throttled",
                    self.dsm.node_id,
                    page=page_id,
                )
            yield from self.dsm.node.occupy(costs.prefetch_issue_local, Category.PREFETCH)
            return
        record = self._records.setdefault(page_id, _PageRecord())
        self.stats.remote_pages += 1
        # Paper: ~140us of software overhead per prefetch generating a
        # remote message; extra writers add a per-message send cost.
        overhead = costs.prefetch_issue_remote + (len(writers) - 1) * costs.msg_send_cpu
        yield from self.dsm.node.occupy(overhead, Category.PREFETCH)
        tr = self.dsm.sim.trace
        for writer, t_have in writers:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._pending[request_id] = (page_id, writer)
            record.outstanding += 1
            self.stats.request_messages += 1
            out = Message(
                src=self.dsm.node_id,
                dst=writer,
                kind=MessageKind.PREFETCH_REQUEST,
                size_bytes=36 + self.dsm.vc.size_bytes,
                reliable=False,
                payload={
                    "page_id": page_id,
                    "t_have": t_have,
                    "vc": self.dsm.vc.snapshot(),
                    "request_id": request_id,
                },
            )
            if tr.enabled:
                tr.instant(
                    self.dsm.sim.now,
                    "prefetch",
                    "prefetch_issue",
                    self.dsm.node_id,
                    page=page_id,
                    writer=writer,
                    msg=f"m{out.msg_id}",
                    request_id=request_id,
                )
            self.dsm.label_edge(out, "prefetch_request", page=page_id, request_id=request_id)
            accepted = self.dsm.node.network.send(out)
            if not accepted:
                # The request never left the node (queue full or an
                # injected drop).  Deliberately NOT retried here: the
                # real access will retry — once, reliably — and the
                # record's outstanding count classifies it "too late".
                self._note_drop()

    def _shed_request(self, page_id: int, writer: int) -> None:
        """Count one backpressure-shed prefetch request (adaptive)."""
        self.stats.shed += 1
        self.dsm.node.events.prefetch_shed += 1
        self.dsm.node.network.stats.record_shed(MessageKind.PREFETCH_REQUEST)
        if self.dsm.sim.profile_on:
            self.dsm.sim.profile.count(self.dsm.node_id, "prefetch_shed")
        if self.dsm.sim.trace_on:
            self.dsm.sim.trace.instant(
                self.dsm.sim.now,
                "prefetch",
                "prefetch_shed",
                self.dsm.node_id,
                page=page_id,
                writer=writer,
            )

    def _note_drop(self) -> None:
        self.stats.drops_observed += 1
        transport = self.dsm.node.transport
        if transport is not None and transport.adaptive:
            # Closed-loop mode: drops feed the transport's own RTT and
            # window signals; no hand-tuned cool-off on top.
            if self.dsm.sim.trace_on:
                self.dsm.sim.trace.instant(
                    self.dsm.sim.now,
                    "prefetch",
                    "prefetch_drop",
                    self.dsm.node_id,
                    streak=0,
                    cooloff_us=0.0,
                )
            return
        self._drop_streak += 1
        cooloff = min(
            self.THROTTLE_MAX_US,
            self.THROTTLE_BASE_US * 2.0 ** (self._drop_streak - 1),
        )
        self._cooloff_until = max(self._cooloff_until, self.dsm.sim.now + cooloff)
        if self.dsm.sim.trace_on:
            tr = self.dsm.sim.trace
            tr.instant(
                self.dsm.sim.now,
                "prefetch",
                "prefetch_drop",
                self.dsm.node_id,
                streak=self._drop_streak,
                cooloff_us=cooloff,
            )

    def _writers_not_cached(self, page_id: int, state) -> list[tuple[int, int]]:
        """Writers whose missing intervals are not yet cached/applied."""
        cached = self._cache.get(page_id)
        writers = []
        for writer in state.stale_writers():
            have = state.applied_upto[writer]
            if cached is not None:
                have = max(have, cached.covers.get(writer, 0))
            if state.needed_upto[writer] > have:
                writers.append((writer, have))
        return writers

    # -- protocol hooks --------------------------------------------------------

    def take_cached(self, page_id: int) -> Optional[CachedPage]:
        """Consume the prefetch heap's contents for a faulting page."""
        cached = self._cache.pop(page_id, None)
        if cached is not None:
            pf = self.dsm.sim.profile
            if pf.enabled and cached.filed_at >= 0:
                # Lead time: how far ahead of the consuming fault the
                # prefetched data landed.
                pf.observe(
                    self.dsm.node_id, "prefetch_lead_us", self.dsm.sim.now - cached.filed_at
                )
        return cached

    def on_invalidation(self, page_id: int) -> None:
        record = self._records.get(page_id)
        if record is not None and record.had_reply:
            record.invalidated_after_reply = True

    def classify_remote_fault(self, page_id: int) -> None:
        """A fault needed remote requests: late / invalidated / no-pf."""
        record = self._records.get(page_id)
        if record is None:
            self.stats.no_pf += 1
            return
        if record.classified:
            return
        record.classified = True
        if record.outstanding > 0:
            # The demand access beat the prefetch reply (or the reply was
            # dropped): the fetch path retries the request reliably.
            self.stats.late += 1
            outcome = "late"
        elif record.had_reply:
            self.stats.invalidated += 1
            outcome = "invalidated"
        else:
            self.stats.no_pf += 1
            outcome = "no_pf"
        if self.dsm.sim.trace_on:
            tr = self.dsm.sim.trace
            tr.instant(
                self.dsm.sim.now,
                "prefetch",
                f"prefetch_{outcome}",
                self.dsm.node_id,
                page=page_id,
            )

    def count_hit(self, page_id: int) -> None:
        record = self._records.get(page_id)
        if record is not None and not record.classified:
            self.stats.hits += 1
            record.classified = True
            if self.dsm.sim.trace_on:
                tr = self.dsm.sim.trace
                tr.instant(
                    self.dsm.sim.now, "prefetch", "prefetch_hit", self.dsm.node_id, page=page_id
                )

    def on_page_validated(self, page_id: int) -> None:
        """The miss epoch ended: forget this page's prefetch record."""
        self._records.pop(page_id, None)

    def on_fault_stall(self, page_id: int) -> None:
        """Scheduler hook: a thread stalled on this page (kept for
        symmetry and future statistics; classification happens in the
        fetch path)."""

    # -- message handlers ----------------------------------------------------------

    def dispatch(self, msg: Message) -> Generator:
        if msg.kind is MessageKind.PREFETCH_REQUEST:
            yield from self._handle_request(msg)
        elif msg.kind is MessageKind.PREFETCH_REPLY:
            yield from self._handle_reply(msg)
        else:  # pragma: no cover - dispatch guarded by is_prefetch
            raise ProtocolError(f"not a prefetch message: {msg.kind}")

    def _handle_request(self, msg: Message) -> Generator:
        """Server side: flush and ship diffs, without any reliability.

        Servicing mirrors the normal diff server — including the
        sub-interval machinery — but the reply is a droppable datagram.
        """
        page_id = msg.payload["page_id"]
        t_have = msg.payload["t_have"]
        yield from self.dsm.flush_page_if_dirty(page_id)
        stored = self.dsm.diff_store.diffs_after(page_id, t_have)
        # Page-specific coverage claim (see handle_diff_request).
        covers = max(
            (s.covers_through for s in stored),
            default=max(t_have, self.dsm.diff_store.latest_coverage(page_id)),
        )
        notices = self.dsm.reply_notices(page_id, t_have, msg.payload.get("vc"))
        from repro.dsm.writenotice import WriteNoticeLog

        size = (
            24
            + sum(s.diff.size_bytes + 12 for s in stored)
            + WriteNoticeLog.wire_bytes(notices)
        )
        out = Message(
            src=self.dsm.node_id,
            dst=msg.src,
            kind=MessageKind.PREFETCH_REPLY,
            size_bytes=size,
            reliable=False,
            payload={
                "page_id": page_id,
                "request_id": msg.payload["request_id"],
                "diffs": stored,
                "covers_through": covers,
                "notices": notices,
            },
        )
        self.dsm.label_edge(out, "prefetch_reply", page=page_id, request_id=msg.payload["request_id"])
        yield from self.dsm.send(out)

    def _handle_reply(self, msg: Message) -> Generator:
        """Client side: file the diffs in the prefetch heap (not applied)."""
        # Interval records still propagate immediately (consistency
        # information is never cached, only data); advance_vc=False
        # because the set is page-filtered.
        yield from self.dsm.apply_notices_charged(msg.payload["notices"], advance_vc=False)
        request_id = msg.payload["request_id"]
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return  # reply for a request we no longer track
        # A reply made it through: the network is passing traffic again.
        self._drop_streak = 0
        page_id, writer = pending
        cached = self._cache.setdefault(page_id, CachedPage())
        if cached.filed_at < 0:
            cached.filed_at = self.dsm.sim.now
        cached.diffs.extend(msg.payload["diffs"])
        covers = msg.payload["covers_through"]
        if covers > cached.covers.get(writer, 0):
            cached.covers[writer] = covers
        record = self._records.get(page_id)
        if record is not None:
            record.outstanding -= 1
            record.had_reply = True
