"""Software-controlled non-binding prefetching (+ the history-based
runtime alternative from the paper's related work)."""

from repro.prefetch.engine import CachedPage, PrefetchEngine, PrefetchStats
from repro.prefetch.history import HistoryPrefetcher

__all__ = ["CachedPage", "HistoryPrefetcher", "PrefetchEngine", "PrefetchStats"]
