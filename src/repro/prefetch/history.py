"""History-based prefetching at synchronization points (related work).

The paper contrasts its software-controlled non-binding prefetching
against the scheme of Bianchini et al. [3]: the DSM runtime itself
issues prefetches automatically when a synchronization operation
completes, for the pages the processor faulted on after the *previous*
synchronization — no program modification required, but no program
knowledge either.

This module implements that alternative as an extension:
:class:`HistoryPrefetcher` records, per synchronization object, the
pages faulted on after each acquire/barrier, and on the next completion
of the same synchronization replays them through the ordinary
non-binding prefetch engine.  The ablation benchmark
(``benchmarks/bench_history_prefetch.py``) compares it against the
paper's explicit insertion, reproducing the paper's argument that
explicit insertion prefetches "more intelligently and more
aggressively".
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Generator

from repro.api.ops import Prefetch

if TYPE_CHECKING:  # pragma: no cover
    from repro.prefetch.engine import PrefetchEngine

__all__ = ["HistoryPrefetcher"]


class HistoryPrefetcher:
    """Runtime-driven prefetching from per-sync fault histories."""

    #: how many past inter-sync windows to replay.  Depth 2 covers the
    #: common alternating-phase pattern (e.g. red/black sweeps sharing
    #: one barrier object), which a depth-1 history would always miss
    #: by one phase.
    DEPTH = 2

    def __init__(self, engine: "PrefetchEngine", page_size: int) -> None:
        self.engine = engine
        self.page_size = page_size
        #: most recent inter-sync fault windows, newest last.
        self._windows: list[list[int]] = []
        #: faults recorded since the last synchronization completion.
        self._current_faults: list[int] = []
        self.replays = 0

    def on_fault(self, page_id: int) -> None:
        """Record a fault (hooked from the scheduler's fault path)."""
        if page_id not in self._current_faults:
            self._current_faults.append(page_id)

    def on_sync_complete(self, key: object) -> Generator:
        """A lock acquire / barrier finished: replay the recent fault
        history through the prefetch engine and open a new window."""
        if self._current_faults:
            self._windows.append(self._current_faults)
            self._windows = self._windows[-self.DEPTH :]
        self._current_faults = []
        replay: list[int] = []
        for window in self._windows:
            for page_id in window:
                if page_id not in replay:
                    replay.append(page_id)
        if not replay:
            return
        self.replays += 1
        regions = [(page_id * self.page_size, 1) for page_id in replay]
        yield from self.engine.op_prefetch(Prefetch.of(regions))
