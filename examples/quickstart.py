#!/usr/bin/env python
"""Quickstart: run one application on the simulated software DSM.

Builds an 8-node cluster, runs red-black SOR under the four headline
configurations of the paper (original, prefetching, multithreading,
combined), verifies every run against a sequential computation, and
prints the paper-style execution-time breakdowns.

Usage::

    python examples/quickstart.py
"""

from repro import DsmRuntime, RunConfig
from repro.apps import Sor
from repro.experiments.formatting import breakdown_column, render_breakdown_table


def run(label, **config_kwargs):
    app = Sor(rows=96, cols=512, iterations=4)
    app.use_prefetch = config_kwargs.get("prefetch", False)
    config = RunConfig(num_nodes=8, **config_kwargs)
    report = DsmRuntime(config).execute(app)  # verifies the grid too
    return report


def main() -> None:
    print("Running SOR on 8 simulated nodes (each run is verified)...")
    baseline = run("O")
    reports = {
        "O": baseline,
        "P": run("P", prefetch=True),
        "4T": run("4T", threads_per_node=4),
        "4TP": run("4TP", threads_per_node=4, prefetch=True),
    }
    columns = {
        label: breakdown_column(report, baseline) for label, report in reports.items()
    }
    print()
    print(
        render_breakdown_table(
            "SOR execution time (normalized to the original run = 100)", columns
        )
    )
    print()
    for label, report in reports.items():
        print(
            f"  {label:4s} wall {report.wall_time_us / 1000:7.1f} ms   "
            f"speedup {report.speedup_over(baseline):4.2f}x   "
            f"misses {report.events.remote_misses:4d}   "
            f"messages {report.total_messages}"
        )


if __name__ == "__main__":
    main()
