#!/usr/bin/env python
"""Writing your own DSM application.

This example implements a small parallel histogram program against the
public API from scratch: shared allocation, thread bodies built from
Read/Write/Acquire/Release/Barrier/Compute operations, prefetch
insertion, and verification of the shared-memory result.

Usage::

    python examples/custom_application.py
"""

import numpy as np

from repro import (
    Acquire,
    Barrier,
    Compute,
    DsmRuntime,
    Program,
    Release,
    RunConfig,
)
from repro.apps.base import block_range


class ParallelHistogram(Program):
    """Threads histogram a shared input array into shared bins.

    Each thread computes a private histogram of its slice, then merges
    it into the shared bins under a lock — the classic reduction
    pattern, and a miniature of WATER-NSQ's force accumulation.
    """

    name = "histogram"

    def __init__(self, num_values: int = 8192, num_bins: int = 64) -> None:
        self.num_values = num_values
        self.num_bins = num_bins

    def setup(self, runtime) -> None:
        self.values = runtime.alloc_vector("hist.values", np.int64, self.num_values)
        self.bins = runtime.alloc_vector("hist.bins", np.int64, self.num_bins)
        rng = runtime.random.stream("hist.input")
        self._input = rng.integers(0, self.num_bins, self.num_values).astype(np.int64)

    def thread_body(self, runtime, tid: int):
        threads = runtime.config.total_threads
        if tid == 0:
            # Thread 0 initializes the shared input (making node 0 the
            # startup hot spot, as in all the paper's applications).
            yield self.values.write(0, self._input)
        yield Barrier(0)

        lo, hi = block_range(self.num_values, threads, tid)
        # Optional prefetch: the slice lives on node 0 after startup.
        yield self.values.prefetch(lo, hi - lo)
        slice_values = np.asarray((yield self.values.read(lo, hi - lo)))
        local = np.bincount(slice_values, minlength=self.num_bins).astype(np.int64)
        yield Compute(2.0 * (hi - lo) / 66.0)

        yield Acquire(1)
        current = np.asarray((yield self.bins.read(0, self.num_bins)))
        yield self.bins.write(0, current + local)
        yield Release(1)
        yield Barrier(0)

    def verify(self, runtime) -> None:
        expected = np.bincount(self._input, minlength=self.num_bins)
        actual = runtime.read_vector(self.bins)
        assert np.array_equal(actual, expected), "histogram lost updates"


def main() -> None:
    for num_nodes, threads in ((2, 1), (8, 1), (4, 4)):
        config = RunConfig(num_nodes=num_nodes, threads_per_node=threads)
        report = DsmRuntime(config).execute(ParallelHistogram())
        print(
            f"nodes={num_nodes} threads/node={threads}: verified; "
            f"wall {report.wall_time_us / 1000:6.1f} ms, "
            f"{report.total_messages} messages, "
            f"{report.events.remote_lock_misses} remote lock stalls"
        )


if __name__ == "__main__":
    main()
