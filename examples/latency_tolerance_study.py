#!/usr/bin/env python
"""A miniature of the paper's study: which technique wins where?

Runs two contrasting applications — RADIX (unpredictable addresses,
communication-bound) and SOR (predictable stencil) — under every
configuration of Figure 5 and reports which latency-tolerance strategy
wins for each, reproducing the paper's central conclusion: the right
technique depends on address predictability and on what kind of stall
dominates.

Usage::

    python examples/latency_tolerance_study.py
"""

from repro import DsmRuntime, RunConfig
from repro.apps import make_app
from repro.experiments.runner import parse_label

CONFIGS = ["O", "2T", "4T", "P", "2TP", "4TP"]


def run_grid(app_name: str):
    results = {}
    for label in CONFIGS:
        threads_per_node, prefetch = parse_label(label)
        app = make_app(app_name, preset="small")
        app.use_prefetch = prefetch
        if prefetch and threads_per_node > 1:
            app.prefetch_dedup = True
            if app_name == "RADIX":
                app.throttle_prefetch = True
        config = RunConfig(
            num_nodes=4, threads_per_node=threads_per_node, prefetch=prefetch
        )
        results[label] = DsmRuntime(config).execute(app)
    return results


def main() -> None:
    for app_name in ("RADIX", "SOR"):
        print(f"\n{app_name}:")
        results = run_grid(app_name)
        baseline = results["O"]
        for label in CONFIGS:
            report = results[label]
            bar = "#" * int(40 * report.wall_time_us / baseline.wall_time_us)
            print(
                f"  {label:4s} {report.wall_time_us / 1000:8.1f} ms "
                f"({report.speedup_over(baseline):4.2f}x) {bar}"
            )
        best = min(CONFIGS, key=lambda lab: results[lab].wall_time_us)
        print(f"  -> best configuration: {best}")


if __name__ == "__main__":
    main()
