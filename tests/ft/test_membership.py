"""End-to-end membership: fencing, targeted rejoin, and partition
tolerance.  A node that goes quiet (stall or partition) is fenced, not
killed; when it proves itself alive again it rejoins with a targeted
re-sync and the run completes without a rollback.  Only a partition
that outlives the grace period costs a recovery."""

import pytest

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps import make_app
from repro.ft import FtConfig
from repro.network.faults import FaultPlan, LinkPartition, NodeStall

NODES = 4


def run_once(app_name="SOR", plan=None, seed=11, ft=None):
    config = RunConfig(
        num_nodes=NODES,
        seed=seed,
        fault_plan=plan,
        sanitizer=True,
        ft=ft or FtConfig(),
    )
    return DsmRuntime(config).execute(make_app(app_name, "small"))


def test_give_up_on_stalled_node_fences_instead_of_killing():
    """Regression: transport retry exhaustion against a live-but-silent
    node must never be treated as a crash.  The 140 ms stall far
    outlives every retry budget; the node is fenced, rejoins when the
    stall lifts, and the run finishes with zero recoveries."""
    plan = FaultPlan(stalls=(NodeStall(node=1, start_us=10_000.0, end_us=150_000.0),))
    report = run_once(plan=plan)
    ft = report.extra["ft"]
    assert ft["fences"] == 1
    assert ft["rejoins"] == 1
    assert ft["recoveries"] == 0
    assert ft["crashes"] == 0


def test_short_stall_survives_suspicion_grace():
    """A stall shorter than suspicion timeout + TTL never even fences."""
    plan = FaultPlan(stalls=(NodeStall(node=1, start_us=10_000.0, end_us=40_000.0),))
    report = run_once(plan=plan)
    ft = report.extra["ft"]
    assert ft["fences"] == 0
    assert ft["recoveries"] == 0


def test_partition_heals_and_node_rejoins_without_rollback():
    """Isolate node 2 for 130 ms — long enough to be fenced and to span
    multiple barrier episodes — then heal.  The node rejoins via
    targeted re-sync; nobody rolls back; the app verifies."""
    plan = FaultPlan(
        partitions=(LinkPartition(start_us=20_000.0, end_us=150_000.0, nodes={2}),)
    )
    report = run_once(plan=plan)
    ft = report.extra["ft"]
    assert ft["fences"] >= 1
    assert ft["rejoins"] >= 1
    assert ft["recoveries"] == 0
    # The outage is visible in the wall clock.
    assert report.wall_time_us > 150_000.0


def test_partition_heal_is_deterministic():
    plan = FaultPlan(
        partitions=(LinkPartition(start_us=20_000.0, end_us=150_000.0, nodes={2}),)
    )
    first = run_once(plan=plan)
    second = run_once(plan=plan)
    assert first.to_json() == second.to_json()


def test_partition_beyond_grace_rolls_back():
    """A cut that outlives partition_grace_us forces the coordinator to
    give up on a heal and roll the cluster back."""
    plan = FaultPlan(
        partitions=(LinkPartition(start_us=20_000.0, end_us=400_000.0, nodes={2}),)
    )
    report = run_once(plan=plan)
    ft = report.extra["ft"]
    assert ft["fences"] >= 1
    assert ft["recoveries"] >= 1


def test_minority_coordinator_stands_down():
    """Cut the coordinator away from the other three nodes: it can hear
    only a minority, so it must not fence anyone while isolated.  After
    the heal the run completes without declaring the majority dead."""
    plan = FaultPlan(
        partitions=(LinkPartition(start_us=20_000.0, end_us=120_000.0, nodes={0}),)
    )
    report = run_once(plan=plan)
    ft = report.extra["ft"]
    # The majority (3 healthy nodes) was never rolled back wholesale.
    assert ft["recoveries"] == 0
    assert report.wall_time_us > 120_000.0


@pytest.mark.parametrize("app_name", ["FFT", "LU-CONT"])
def test_partition_heal_verifies_across_apps(app_name):
    plan = FaultPlan(
        partitions=(LinkPartition(start_us=20_000.0, end_us=150_000.0, nodes={1}),)
    )
    report = run_once(app_name=app_name, plan=plan)
    assert report.extra["ft"]["recoveries"] == 0
