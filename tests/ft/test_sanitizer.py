"""Unit tests for the protocol-invariant sanitizer, plus an end-to-end
corruption test showing it firing with a useful diagnostic."""

import pytest

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps import make_app
from repro.dsm.pagestate import PageCoherence
from repro.errors import ProtocolError
from repro.ft import ProtocolSanitizer


@pytest.fixture
def san():
    return ProtocolSanitizer(num_nodes=4)


def test_vector_clock_monotonicity(san):
    san.on_vc_update(1, 2, 5, 6)
    with pytest.raises(ProtocolError, match="vector-clock monotonicity"):
        san.on_vc_update(1, 2, 6, 4)


def test_interval_creation_discipline(san):
    san.on_interval_closed(0, 1)
    san.on_interval_closed(0, 2)
    with pytest.raises(ProtocolError, match="interval creation discipline"):
        san.on_interval_closed(0, 4)  # skipped 3


def test_write_notice_must_name_a_created_interval(san):
    san.on_interval_closed(2, 1)
    san.on_write_notice(0, 2, 1, page_id=7)  # fine: interval 1 exists
    with pytest.raises(ProtocolError, match="dead interval"):
        san.on_write_notice(0, 2, 2, page_id=7)  # interval 2 never closed


def test_no_diff_applied_twice(san):
    san.on_diff_applied(3, page_id=9, proc=1, covers_through=4, lamport=17)
    with pytest.raises(ProtocolError, match="no diff applied twice"):
        san.on_diff_applied(3, page_id=9, proc=1, covers_through=4, lamport=17)
    # A different lamport is a different diff.
    san.on_diff_applied(3, page_id=9, proc=1, covers_through=4, lamport=18)


def test_twin_lifecycle(san):
    san.on_twin_created(0, 5)
    with pytest.raises(ProtocolError, match="twin created over an existing twin"):
        san.on_twin_created(0, 5)


def test_flush_requires_twin(san):
    with pytest.raises(ProtocolError, match="flushed without a twin"):
        san.on_flush(0, 5, had_twin=False)


def test_diagnostic_dump_carries_recent_transitions(san):
    san.on_vc_update(0, 0, 0, 1)
    san.on_interval_closed(0, 1)
    san.on_twin_created(1, 3)
    with pytest.raises(ProtocolError) as excinfo:
        san.on_twin_created(1, 3)
    message = str(excinfo.value)
    assert "recent protocol transitions" in message
    assert "closed own interval 1" in message
    assert "create twin for page 3" in message


def test_rollback_resets_derived_state(san):
    san.on_interval_closed(0, 1)
    san.on_interval_closed(0, 2)
    san.on_diff_applied(1, page_id=2, proc=0, covers_through=2, lamport=3)
    san.on_twin_created(1, 2)
    san.on_rollback(node_vcs=[[1, 0, 0, 0]] + [[0] * 4] * 3)
    # Interval ceiling rewound to the checkpoint: closing 2 again is fine.
    san.on_interval_closed(0, 2)
    # The discarded execution's diff/twin bookkeeping is forgotten.
    san.on_diff_applied(1, page_id=2, proc=0, covers_through=2, lamport=3)
    san.on_twin_created(1, 2)


def test_sanitizer_catches_corrupted_diff_bookkeeping(monkeypatch):
    """A node that forgets which diffs it has applied will re-apply one;
    the sanitizer must fire with an actionable diagnostic."""
    monkeypatch.setattr(
        PageCoherence, "note_diffs_applied", lambda self, proc, upto: None
    )
    with pytest.raises(ProtocolError) as excinfo:
        DsmRuntime(RunConfig(num_nodes=4, sanitizer=True)).execute(
            make_app("SOR", "small"), verify=False
        )
    message = str(excinfo.value)
    assert "no diff applied twice" in message
    assert "recent protocol transitions" in message
    # The dump names the offending page/writer so the state is findable.
    assert "apply page" in message
