"""Unit tests for the protocol-invariant sanitizer, plus an end-to-end
corruption test showing it firing with a useful diagnostic."""

import pytest

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps import make_app
from repro.dsm.pagestate import PageCoherence
from repro.errors import ProtocolError
from repro.ft import ProtocolSanitizer


@pytest.fixture
def san():
    return ProtocolSanitizer(num_nodes=4)


def test_vector_clock_monotonicity(san):
    san.on_vc_update(1, 2, 5, 6)
    with pytest.raises(ProtocolError, match="vector-clock monotonicity"):
        san.on_vc_update(1, 2, 6, 4)


def test_interval_creation_discipline(san):
    san.on_interval_closed(0, 1)
    san.on_interval_closed(0, 2)
    with pytest.raises(ProtocolError, match="interval creation discipline"):
        san.on_interval_closed(0, 4)  # skipped 3


def test_write_notice_must_name_a_created_interval(san):
    san.on_interval_closed(2, 1)
    san.on_write_notice(0, 2, 1, page_id=7)  # fine: interval 1 exists
    with pytest.raises(ProtocolError, match="dead interval"):
        san.on_write_notice(0, 2, 2, page_id=7)  # interval 2 never closed


def test_no_diff_applied_twice(san):
    san.on_diff_applied(3, page_id=9, proc=1, covers_through=4, lamport=17)
    with pytest.raises(ProtocolError, match="no diff applied twice"):
        san.on_diff_applied(3, page_id=9, proc=1, covers_through=4, lamport=17)
    # A different lamport is a different diff.
    san.on_diff_applied(3, page_id=9, proc=1, covers_through=4, lamport=18)


def test_twin_lifecycle(san):
    san.on_twin_created(0, 5)
    with pytest.raises(ProtocolError, match="twin created over an existing twin"):
        san.on_twin_created(0, 5)


def test_flush_requires_twin(san):
    with pytest.raises(ProtocolError, match="flushed without a twin"):
        san.on_flush(0, 5, had_twin=False)


def test_diagnostic_dump_carries_recent_transitions(san):
    san.on_vc_update(0, 0, 0, 1)
    san.on_interval_closed(0, 1)
    san.on_twin_created(1, 3)
    with pytest.raises(ProtocolError) as excinfo:
        san.on_twin_created(1, 3)
    message = str(excinfo.value)
    assert "recent protocol transitions" in message
    assert "closed own interval 1" in message
    assert "create twin for page 3" in message


def test_rollback_resets_derived_state(san):
    san.on_interval_closed(0, 1)
    san.on_interval_closed(0, 2)
    san.on_diff_applied(1, page_id=2, proc=0, covers_through=2, lamport=3)
    san.on_twin_created(1, 2)
    san.on_rollback(node_vcs=[[1, 0, 0, 0]] + [[0] * 4] * 3)
    # Interval ceiling rewound to the checkpoint: closing 2 again is fine.
    san.on_interval_closed(0, 2)
    # The discarded execution's diff/twin bookkeeping is forgotten.
    san.on_diff_applied(1, page_id=2, proc=0, covers_through=2, lamport=3)
    san.on_twin_created(1, 2)


def test_sanitizer_catches_corrupted_diff_bookkeeping(monkeypatch):
    """A node that forgets which diffs it has applied will re-apply one;
    the sanitizer must fire with an actionable diagnostic."""
    monkeypatch.setattr(
        PageCoherence, "note_diffs_applied", lambda self, proc, upto: None
    )
    with pytest.raises(ProtocolError) as excinfo:
        DsmRuntime(RunConfig(num_nodes=4, sanitizer=True)).execute(
            make_app("SOR", "small"), verify=False
        )
    message = str(excinfo.value)
    assert "no diff applied twice" in message
    assert "recent protocol transitions" in message
    # The dump names the offending page/writer so the state is findable.
    assert "apply page" in message


# -- per-protocol gating -----------------------------------------------------


@pytest.fixture
def sc_san():
    return ProtocolSanitizer(num_nodes=4, protocol="sc")


@pytest.fixture
def hlrc_san():
    return ProtocolSanitizer(num_nodes=4, protocol="hlrc")


def test_lrc_machinery_is_a_violation_under_sc(sc_san):
    """Not silently skipped: under sc, an LRC hook firing at all IS the
    bug — the inert clock must never advance, no twin may ever exist."""
    with pytest.raises(ProtocolError, match="protocol isolation"):
        sc_san.on_vc_update(0, 0, 0, 1)
    with pytest.raises(ProtocolError, match="protocol isolation"):
        sc_san.on_interval_closed(0, 1)
    with pytest.raises(ProtocolError, match="protocol isolation"):
        sc_san.on_twin_created(0, 5)
    with pytest.raises(ProtocolError, match="protocol isolation"):
        sc_san.on_diff_applied(0, page_id=1, proc=1, covers_through=1, lamport=1)


def test_sc_machinery_is_a_violation_under_lrc(san):
    with pytest.raises(ProtocolError, match="protocol isolation"):
        san.on_sc_txn_start(0, page_id=3, requester=1, mode="write")
    with pytest.raises(ProtocolError, match="protocol isolation"):
        san.on_sc_install(1, page_id=3, mode="read")


def test_home_machinery_is_a_violation_under_lrc_and_sc(san, sc_san):
    for checker in (san, sc_san):
        with pytest.raises(ProtocolError, match="protocol isolation"):
            checker.on_home_update(0, page_id=3, home=0)


def test_hlrc_keeps_the_lrc_invariants(hlrc_san):
    """HLRC is still an LRC: the whole LRC invariant set stays armed."""
    hlrc_san.on_vc_update(1, 2, 5, 6)
    with pytest.raises(ProtocolError, match="vector-clock monotonicity"):
        hlrc_san.on_vc_update(1, 2, 6, 4)


def test_hlrc_home_routing(hlrc_san):
    hlrc_san.on_home_update(2, page_id=9, home=2)
    with pytest.raises(ProtocolError, match="home routing"):
        hlrc_san.on_home_update(1, page_id=9, home=2)


def test_hlrc_home_coverage_monotonicity(hlrc_san):
    hlrc_san.on_page_served(2, page_id=9, home=2, covers=(1, 2, 0, 0))
    hlrc_san.on_page_served(2, page_id=9, home=2, covers=(1, 2, 1, 0))
    with pytest.raises(ProtocolError, match="home coverage monotonicity"):
        hlrc_san.on_page_served(2, page_id=9, home=2, covers=(1, 1, 1, 0))


def test_sc_transaction_serialization(sc_san):
    sc_san.on_sc_txn_start(0, page_id=3, requester=1, mode="write")
    with pytest.raises(ProtocolError, match="transaction serialization"):
        sc_san.on_sc_txn_start(0, page_id=3, requester=2, mode="read")
    # A different page is a different transaction stream.
    sc_san.on_sc_txn_start(0, page_id=4, requester=2, mode="read")
    # Ending the transaction readmits the page.
    sc_san.on_sc_txn_end(0, page_id=3)
    sc_san.on_sc_txn_start(0, page_id=3, requester=2, mode="read")


def test_sc_single_writer(sc_san):
    # Pages boot SHARED everywhere: write access with three other
    # copies still valid is the canonical violation.
    with pytest.raises(ProtocolError, match="single writer"):
        sc_san.on_sc_install(1, page_id=3, mode="write")
    # After invalidating every other copy the same grant is legal.
    for node in (0, 2, 3):
        sc_san.on_sc_invalidate(node, page_id=5)
    sc_san.on_sc_install(1, page_id=5, mode="write")


def test_sc_invalidation_targeting(sc_san):
    sc_san.on_sc_invalidate(2, page_id=7)
    with pytest.raises(ProtocolError, match="invalidation targeting"):
        sc_san.on_sc_invalidate(2, page_id=7)  # node 2 holds no copy now


def test_sc_restore_rebuilds_the_copy_mirror(sc_san):
    for node in (0, 2, 3):
        sc_san.on_sc_invalidate(node, page_id=5)
    sc_san.on_sc_install(1, page_id=5, mode="write")
    sc_san.on_rollback(node_vcs=[[0] * 4] * 4)
    # The checkpoint had node 1 as sole holder: everyone else reports
    # page 5 invalid, node 1 reports nothing.
    for node in (0, 2, 3):
        sc_san.on_sc_restore(node, [5])
    sc_san.on_sc_restore(1, [])
    sc_san.on_sc_install(1, page_id=5, mode="write")  # still the sole holder
