"""Unit tests for the failure detector's evidence handling.

Death is a two-step verdict: silence opens a suspicion, and only a
suspicion that ages ``suspicion_ttl_us`` with ``suspicion_quorum``
reporters — while the suspect stays silent — matures into a death.  Any
delivered message clears the record.
"""

from repro.ft.config import FtConfig
from repro.ft.detector import COORDINATOR, FailureDetector
from repro.network.message import Message, MessageKind


class FakeTrace:
    enabled = False


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.trace = FakeTrace()
        self.trace_on = False


class FakeFt:
    """Just enough of FtManager for the detector's bookkeeping paths."""

    def __init__(self, num_nodes=4):
        self.sim = FakeSim()
        self.num_nodes = num_nodes
        self.active = True


def make_detector(**config_kwargs):
    ft = FakeFt()
    return ft, FailureDetector(ft, FtConfig(**config_kwargs))


def heartbeat(src):
    return Message(
        src=src, dst=COORDINATOR, kind=MessageKind.HEARTBEAT, size_bytes=16, reliable=False
    )


def test_any_delivered_traffic_is_liveness_evidence():
    ft, det = make_detector()
    ft.sim.now = 42.0
    det.observe(COORDINATOR, heartbeat(2))
    assert det.last_heard[2] == 42.0
    # Traffic delivered to other nodes is not coordinator evidence.
    ft.sim.now = 99.0
    det.observe(1, heartbeat(3))
    assert det.last_heard[3] == 0.0


def test_silence_opens_suspicion_then_matures_into_death():
    ft, det = make_detector(suspicion_timeout_us=50_000.0, suspicion_ttl_us=25_000.0)
    ft.sim.now = 60_000.0
    det.observe(COORDINATOR, heartbeat(1))
    det.observe(COORDINATOR, heartbeat(2))
    det.last_heard[3] = 5_000.0  # silent since t=5ms
    # First sighting of the silence only opens the suspicion...
    assert det._collect_dead() == []
    assert det.suspicions == 1
    assert 3 in det.suspects
    # ...which matures once it has aged the TTL (still silent).
    ft.sim.now = 60_000.0 + 25_000.0
    assert det._collect_dead() == [3]


def test_retry_exhaustion_alone_never_kills_a_live_node():
    """Regression: the pre-TTL detector declared a node dead on the
    first transport give-up, so a reachable-but-slow peer (a long
    NodeStall) was executed while still alive.  A give-up is now only a
    reporter vote: while the suspect keeps talking to the coordinator it
    can never mature, and its next message clears the record."""
    ft, det = make_detector()
    ft.sim.now = 10_000.0
    for node in det.last_heard:
        det.last_heard[node] = ft.sim.now  # nobody is silent
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    assert 3 in det.suspects
    assert det._collect_dead() == []  # not silent => cannot mature
    # Evidence of life clears the suspicion entirely.
    ft.sim.now = 11_000.0
    det.observe(COORDINATOR, heartbeat(3))
    assert 3 not in det.suspects
    assert det.suspicions_cleared == 1


def test_suspicion_needs_quorum_of_reporters():
    ft, det = make_detector(
        suspicion_timeout_us=50_000.0, suspicion_ttl_us=0.0, suspicion_quorum=3
    )
    ft.sim.now = 60_000.0
    det.observe(COORDINATOR, heartbeat(1))
    det.observe(COORDINATOR, heartbeat(2))
    det.last_heard[3] = 1_000.0
    # Coordinator silence is one reporter; quorum=3 needs two more.
    assert det._collect_dead() == []
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    assert det._collect_dead() == []
    det.on_give_up(reporter=2, dst=3, message=heartbeat(2))
    assert det._collect_dead() == [3]


def test_give_up_on_coordinator_or_dead_node_ignored():
    ft, det = make_detector()
    det.on_give_up(reporter=1, dst=COORDINATOR, message=heartbeat(1))
    assert not det.suspects
    det.mark_dead(3)
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    assert not det.suspects


def test_mark_alive_and_reset_clear_suspicion():
    ft, det = make_detector()
    det.on_give_up(reporter=1, dst=2, message=heartbeat(1))
    det.mark_dead(2)
    assert 2 in det.down
    assert 2 not in det.suspects
    ft.sim.now = 70_000.0
    det.mark_alive(2)
    assert 2 not in det.down
    assert det.last_heard[2] == 70_000.0
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    det.reset_liveness()
    assert not det.suspects
    assert all(t == 70_000.0 for t in det.last_heard.values())


def test_has_quorum_tracks_recently_heard_majority():
    ft, det = make_detector(suspicion_timeout_us=50_000.0)
    ft.sim.now = 60_000.0
    # Everyone silent beyond the timeout: the coordinator is alone.
    assert not det.has_quorum()
    det.observe(COORDINATOR, heartbeat(1))
    # Coordinator + node 1 = 2 of 4: still no strict majority.
    assert not det.has_quorum()
    det.observe(COORDINATOR, heartbeat(2))
    assert det.has_quorum()
    # Quorum is over the *current membership*: confirming a death
    # shrinks the denominator, so the surviving majority stays live
    # (coordinator + node 1 is 2 of the 3 remaining members)...
    det.mark_dead(2)
    assert det.has_quorum()
    # ...but the fresh clock of a removed node never counts toward it.
    det.observe(COORDINATOR, heartbeat(2))
    det.mark_dead(3)
    ft.sim.now = 130_000.0  # node 1 now silent too: coordinator alone
    assert not det.has_quorum()


def test_membership_views_follow_broadcasts():
    ft, det = make_detector()
    down = Message(
        src=COORDINATOR, dst=1, kind=MessageKind.FT_DOWN, size_bytes=32,
        reliable=False, payload={"node": 3},
    )
    up = Message(
        src=COORDINATOR, dst=1, kind=MessageKind.FT_UP, size_bytes=32,
        reliable=False, payload={"node": 3},
    )
    det.handle_membership(1, down)
    assert det.views[1] == {3}
    det.handle_membership(1, up)
    assert det.views[1] == set()
    rejoin = Message(
        src=COORDINATOR, dst=1, kind=MessageKind.FT_REJOIN, size_bytes=32,
        reliable=False, payload={"down": [2, 3]},
    )
    det.handle_membership(1, rejoin)
    assert det.views[1] == {2, 3}
