"""Unit tests for the heartbeat failure detector's evidence handling."""

from repro.ft.config import FtConfig
from repro.ft.detector import COORDINATOR, FailureDetector
from repro.network.message import Message, MessageKind


class FakeTrace:
    enabled = False


class FakeSim:
    def __init__(self):
        self.now = 0.0
        self.trace = FakeTrace()
        self.trace_on = False


class FakeFt:
    """Just enough of FtManager for the detector's bookkeeping paths."""

    def __init__(self, num_nodes=4):
        self.sim = FakeSim()
        self.num_nodes = num_nodes
        self.active = True


def make_detector(**config_kwargs):
    ft = FakeFt()
    return ft, FailureDetector(ft, FtConfig(**config_kwargs))


def heartbeat(src):
    return Message(
        src=src, dst=COORDINATOR, kind=MessageKind.HEARTBEAT, size_bytes=16, reliable=False
    )


def test_any_delivered_traffic_is_liveness_evidence():
    ft, det = make_detector()
    ft.sim.now = 42.0
    det.observe(COORDINATOR, heartbeat(2))
    assert det.last_heard[2] == 42.0
    # Traffic delivered to other nodes is not coordinator evidence.
    ft.sim.now = 99.0
    det.observe(1, heartbeat(3))
    assert det.last_heard[3] == 0.0


def test_silence_beyond_suspicion_timeout_is_death():
    ft, det = make_detector(suspicion_timeout_us=50_000.0)
    ft.sim.now = 60_000.0
    det.observe(COORDINATOR, heartbeat(1))
    det.observe(COORDINATOR, heartbeat(2))
    det.last_heard[3] = 5_000.0  # silent since t=5ms
    assert det._collect_dead() == [3]
    assert det.suspicions == 1


def test_retry_exhaustion_is_immediate_suspicion():
    ft, det = make_detector()
    ft.sim.now = 10_000.0
    for node in det.last_heard:
        det.last_heard[node] = ft.sim.now  # nobody is silent
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    assert det._collect_dead() == [3]


def test_give_up_on_coordinator_or_dead_node_ignored():
    ft, det = make_detector()
    det.on_give_up(reporter=1, dst=COORDINATOR, message=heartbeat(1))
    assert not det._exhausted
    det.mark_dead(3)
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    assert not det._exhausted


def test_mark_alive_and_reset_clear_suspicion():
    ft, det = make_detector()
    det.on_give_up(reporter=1, dst=2, message=heartbeat(1))
    det.mark_dead(2)
    assert 2 in det.down
    ft.sim.now = 70_000.0
    det.mark_alive(2)
    assert 2 not in det.down
    assert det.last_heard[2] == 70_000.0
    det.on_give_up(reporter=1, dst=3, message=heartbeat(1))
    det.reset_liveness()
    assert not det._exhausted
    assert all(t == 70_000.0 for t in det.last_heard.values())


def test_membership_views_follow_broadcasts():
    ft, det = make_detector()
    down = Message(
        src=COORDINATOR, dst=1, kind=MessageKind.FT_DOWN, size_bytes=32,
        reliable=False, payload={"node": 3},
    )
    up = Message(
        src=COORDINATOR, dst=1, kind=MessageKind.FT_UP, size_bytes=32,
        reliable=False, payload={"node": 3},
    )
    det.handle_membership(1, down)
    assert det.views[1] == {3}
    det.handle_membership(1, up)
    assert det.views[1] == set()
