"""The simulator's liveness watchdog: a deadlocked run must fail loudly,
naming the blocked processes, instead of silently ending early."""

import pytest

from repro.api.ops import Acquire, Compute, Release
from repro.api.program import Program
from repro.api.runtime import DsmRuntime, RunConfig
from repro.errors import SimulationError


class CrossWaitingLocks(Program):
    """Thread 0 takes lock A then wants B; thread 1 takes B then wants A.

    Classic lock-order inversion: both acquisitions block forever, the
    event heap drains, and the watchdog must report the deadlock.
    """

    name = "cross-waiting-locks"

    def setup(self, runtime):
        pass

    def thread_body(self, runtime, tid):
        first, second = (0, 1) if tid == 0 else (1, 0)
        yield Acquire(first)
        # Hold the first lock long enough that both threads are holding
        # one before either requests its second.
        yield Compute(5_000.0)
        yield Acquire(second)
        yield Release(second)
        yield Release(first)


def test_deadlock_raises_and_names_waiters():
    runtime = DsmRuntime(RunConfig(num_nodes=2, seed=3))
    with pytest.raises(SimulationError, match="deadlock") as excinfo:
        runtime.execute(CrossWaitingLocks(), verify=False)
    message = str(excinfo.value)
    # The report names each stuck scheduler and what it waits on.
    assert "sched[0]" in message
    assert "sched[1]" in message
    assert "lock" in message
