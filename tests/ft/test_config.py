"""Validation of the fault-tolerance configuration surface."""

import pytest

from repro.api.runtime import DsmRuntime, RunConfig
from repro.errors import ConfigError, FailureError, FaultConfigError
from repro.ft import FtConfig
from repro.network.faults import FaultPlan, NodeCrash


def test_defaults_are_valid():
    config = FtConfig()
    assert config.suspicion_timeout_us > 2 * config.heartbeat_period_us


@pytest.mark.parametrize(
    "kwargs",
    [
        {"heartbeat_period_us": 0.0},
        {"heartbeat_period_us": -5.0},
        # Suspicion must exceed two heartbeat periods or every node is
        # permanently suspect.
        {"heartbeat_period_us": 5_000.0, "suspicion_timeout_us": 10_000.0},
        {"checkpoint_every": 0},
        {"restart_delay_us": -1.0},
        {"checkpoint_cpu_per_byte": -0.1},
        {"restore_cpu_per_byte": -0.1},
    ],
)
def test_bad_ft_config_rejected(kwargs):
    with pytest.raises(ConfigError):
        FtConfig(**kwargs)


def test_crash_event_validation():
    with pytest.raises(FaultConfigError):
        NodeCrash(node=-1, at_us=100.0)
    with pytest.raises(FaultConfigError):
        NodeCrash(node=1, at_us=0.0)


def test_node_zero_cannot_crash():
    plan = FaultPlan(crashes=(NodeCrash(node=0, at_us=1000.0),))
    with pytest.raises(FailureError, match="node 0 cannot crash"):
        DsmRuntime(RunConfig(num_nodes=2, fault_plan=plan))


def test_crash_of_unknown_node_rejected():
    plan = FaultPlan(crashes=(NodeCrash(node=7, at_us=1000.0),))
    with pytest.raises(ConfigError, match="unknown node"):
        DsmRuntime(RunConfig(num_nodes=4, fault_plan=plan))


def test_crash_plan_auto_enables_ft():
    plan = FaultPlan(crashes=(NodeCrash(node=1, at_us=1000.0),))
    config = RunConfig(num_nodes=2, fault_plan=plan)
    assert config.ft == FtConfig()
    runtime = DsmRuntime(config)
    assert runtime.ft is not None


def test_no_crashes_means_no_ft_layer():
    runtime = DsmRuntime(RunConfig(num_nodes=2, fault_plan=FaultPlan(drop_prob=0.01)))
    assert runtime.ft is None
