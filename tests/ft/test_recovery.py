"""End-to-end crash/recovery: a node dies mid-run, the cluster rolls
back to the last coordinated barrier checkpoint, and the application
still verifies — deterministically."""

import pytest

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps import make_app
from repro.metrics.counters import Category
from repro.network.faults import FaultPlan, NodeCrash

NODES = 4


def run_once(app_name, plan=None, sanitizer=False, seed=11):
    config = RunConfig(
        num_nodes=NODES, seed=seed, fault_plan=plan, sanitizer=sanitizer
    )
    return DsmRuntime(config).execute(make_app(app_name, "small"))


def crash_plan(baseline, frac=0.5, node=2, **plan_kwargs):
    return FaultPlan(
        crashes=(NodeCrash(node=node, at_us=baseline.wall_time_us * frac),),
        **plan_kwargs,
    )


@pytest.mark.parametrize("app_name", ["SOR", "FFT", "RADIX", "WATER-NSQ", "WATER-SP"])
def test_crash_recovers_and_verifies(app_name):
    baseline = run_once(app_name)
    report = run_once(app_name, plan=crash_plan(baseline))  # verify=True inside
    ft = report.extra["ft"]
    assert ft["crashes"] == 1
    assert ft["detections"] == 1
    assert ft["recoveries"] == 1
    assert report.wall_time_us > baseline.wall_time_us


def test_recovery_costs_appear_as_categories():
    baseline = run_once("SOR")
    report = run_once("SOR", plan=crash_plan(baseline))
    times = report.breakdown.times
    assert times[Category.CHECKPOINT] > 0
    assert times[Category.RECOVERY] > 0
    assert times[Category.DOWNTIME] > 0
    ft = report.extra["ft"]
    assert ft["checkpoints"] >= 1
    assert ft["checkpoint_bytes"] > 0
    assert ft["heartbeats"] > 0
    # Downtime spans crash -> rollback: at least the suspicion timeout.
    assert ft["downtime_us"] >= 50_000.0


def test_crash_runs_are_deterministic():
    baseline = run_once("SOR")
    plan = crash_plan(baseline)
    first = run_once("SOR", plan=plan)
    second = run_once("SOR", plan=plan)
    assert first.to_json() == second.to_json()


@pytest.mark.parametrize("app_name", ["SOR", "WATER-NSQ"])
def test_sanitizer_does_not_perturb_recovery(app_name):
    baseline = run_once(app_name)
    plan = crash_plan(baseline)
    plain = run_once(app_name, plan=plan)
    checked = run_once(app_name, plan=plan, sanitizer=True)
    assert plain.to_json() == checked.to_json()


def test_crash_under_message_loss():
    """Chaos: 5% datagram loss plus a crash, sanitizer on throughout."""
    baseline = run_once("SOR")
    plan = crash_plan(baseline, drop_prob=0.05)
    report = run_once("SOR", plan=plan, sanitizer=True)
    assert report.extra["ft"]["recoveries"] == 1
    assert report.message_drops > 0


def test_crash_before_first_barrier_uses_initial_checkpoint():
    """A crash before any barrier rolls back to the initial checkpoint."""
    plan = FaultPlan(crashes=(NodeCrash(node=1, at_us=40.0),))
    report = run_once("SOR", plan=plan)
    assert report.extra["ft"]["recoveries"] == 1


def test_two_crashes_two_recoveries():
    baseline = run_once("SOR")
    wall = baseline.wall_time_us
    plan = FaultPlan(
        crashes=(
            NodeCrash(node=2, at_us=wall * 0.3),
            NodeCrash(node=3, at_us=wall * 1.1),
        )
    )
    report = run_once("SOR", plan=plan)
    ft = report.extra["ft"]
    assert ft["crashes"] == 2
    assert ft["recoveries"] == 2
