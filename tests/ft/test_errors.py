"""The error-hierarchy additions that came with the fault-tolerance layer."""

import repro.errors as errors


def test_paged_memory_error_renamed_with_alias():
    assert issubclass(errors.PagedMemoryError, errors.ReproError)
    # The old underscore-suffixed name remains importable for callers.
    assert errors.MemoryError_ is errors.PagedMemoryError


def test_ft_errors_in_hierarchy():
    assert issubclass(errors.FailureError, errors.ReproError)
    assert issubclass(errors.CheckpointError, errors.ReproError)
    assert not issubclass(errors.FailureError, errors.CheckpointError)
