"""Checkpoint bookkeeping: stable-storage size accounting."""

import numpy as np

from repro.ft.checkpoint import ClusterCheckpoint, NodeCheckpoint


def _dsm_snapshot(page_bytes=4096):
    return {
        "pages": {0: np.zeros(page_bytes, dtype=np.uint8)},
        "coherence": {
            0: {"twin": np.zeros(page_bytes, dtype=np.uint8), "byte_lamports": None}
        },
        "diff_store": {"by_page": {}},
        "wn_log": {"by_proc": [[], []]},
        "vc": [3, 1],
    }


def test_node_checkpoint_measures_pages_twins_and_logs():
    ckpt = NodeCheckpoint(
        node_id=0,
        dsm=_dsm_snapshot(),
        transport=None,
        thread_logs=[(0, [1.5, np.zeros(16, dtype=np.uint8)])],
    )
    # page + twin + vc (4 bytes/entry) + scalar log value (8) + array log value
    assert ckpt.size_bytes == 4096 + 4096 + 8 + 8 + 16


def test_cluster_checkpoint_sums_nodes():
    nodes = [
        NodeCheckpoint(node_id=i, dsm=_dsm_snapshot(), transport=None, thread_logs=[])
        for i in range(2)
    ]
    cluster = ClusterCheckpoint(
        kind="barrier",
        barrier_id=0,
        episode=3,
        taken_at=100.0,
        node_vcs=[[1, 0], [0, 1]],
        nodes=nodes,
    )
    assert cluster.size_bytes == sum(n.size_bytes for n in nodes)
