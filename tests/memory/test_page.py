"""Unit tests for the page store."""

import numpy as np
import pytest

from repro.errors import PagedMemoryError
from repro.memory import PageStore


def test_pages_start_zeroed():
    store = PageStore(page_size=64)
    assert np.all(store.page(3) == 0)


def test_bad_page_size_rejected():
    with pytest.raises(PagedMemoryError):
        PageStore(page_size=0)
    with pytest.raises(PagedMemoryError):
        PageStore(page_size=100)  # not a multiple of 8


def test_negative_page_id_rejected():
    store = PageStore(page_size=64)
    with pytest.raises(PagedMemoryError):
        store.page(-1)


def test_page_is_lazily_materialized():
    store = PageStore(page_size=64)
    assert store.materialized_pages == 0
    store.page(7)
    assert store.materialized_pages == 1
    assert 7 in store
    assert 8 not in store


def test_write_read_round_trip_within_page():
    store = PageStore(page_size=64)
    data = np.arange(16, dtype=np.uint8)
    store.write(10, data)
    assert np.array_equal(store.read(10, 16), data)


def test_write_read_straddles_pages():
    store = PageStore(page_size=64)
    data = np.arange(200, dtype=np.uint8)
    store.write(50, data)  # spans pages 0..3
    assert np.array_equal(store.read(50, 200), data)
    # The tail of page 0 holds the first 14 bytes.
    assert np.array_equal(store.page(0)[50:], data[:14])


def test_snapshot_is_independent_copy():
    store = PageStore(page_size=64)
    snap = store.snapshot(0)
    store.page(0)[0] = 99
    assert snap[0] == 0


def test_pages_in_range():
    store = PageStore(page_size=64)
    assert store.pages_in_range(0, 64) == [0]
    assert store.pages_in_range(63, 2) == [0, 1]
    assert store.pages_in_range(128, 130) == [2, 3, 4]
    assert store.pages_in_range(5, 0) == []


def test_bad_ranges_rejected():
    store = PageStore(page_size=64)
    with pytest.raises(PagedMemoryError):
        store.read(-1, 4)
    with pytest.raises(PagedMemoryError):
        store.pages_in_range(0, -1)


def test_write_accepts_any_dtype_viewable_as_bytes():
    store = PageStore(page_size=64)
    values = np.array([1.5, -2.25], dtype=np.float64)
    store.write(0, values.view(np.uint8))
    back = store.read(0, 16).view(np.float64)
    assert np.array_equal(back, values)
