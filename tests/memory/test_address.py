"""Unit tests for the shared address space allocator."""

import pytest

from repro.errors import PagedMemoryError
from repro.memory import SharedAddressSpace


def test_first_allocation_starts_at_zero():
    space = SharedAddressSpace(page_size=64)
    seg = space.alloc("a", 100)
    assert seg.base == 0
    assert seg.nbytes == 100
    assert seg.end == 100


def test_page_aligned_allocation_rounds_up():
    space = SharedAddressSpace(page_size=64)
    space.alloc("a", 100)
    seg = space.alloc("b", 10)
    assert seg.base == 128  # next page boundary after 100


def test_unaligned_allocation_packs_tightly():
    space = SharedAddressSpace(page_size=64)
    space.alloc("a", 100, page_aligned=False)
    seg = space.alloc("b", 10, page_aligned=False)
    assert seg.base == 100


def test_duplicate_name_rejected():
    space = SharedAddressSpace(page_size=64)
    space.alloc("a", 10)
    with pytest.raises(PagedMemoryError):
        space.alloc("a", 10)


def test_zero_size_rejected():
    space = SharedAddressSpace(page_size=64)
    with pytest.raises(PagedMemoryError):
        space.alloc("a", 0)


def test_segment_lookup_and_offset_addressing():
    space = SharedAddressSpace(page_size=64)
    space.alloc("grid", 256)
    seg = space.segment("grid")
    assert seg.addr(0) == seg.base
    assert seg.addr(255) == seg.base + 255
    with pytest.raises(PagedMemoryError):
        seg.addr(256)
    with pytest.raises(PagedMemoryError):
        space.segment("nope")


def test_total_pages_rounds_up():
    space = SharedAddressSpace(page_size=64)
    space.alloc("a", 65)
    assert space.total_pages == 2


def test_page_of_checks_bounds():
    space = SharedAddressSpace(page_size=64)
    space.alloc("a", 128)
    assert space.page_of(0) == 0
    assert space.page_of(127) == 1
    with pytest.raises(PagedMemoryError):
        space.page_of(128)
    with pytest.raises(PagedMemoryError):
        space.page_of(-1)
