"""Unit and property tests for twin/diff creation and application.

Diffs are word-granular (8-byte), as in TreadMarks: the unit of
comparison and shipping is the machine word, so concurrent writers must
be word-disjoint (our applications all use >= 8-byte elements).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PagedMemoryError
from repro.memory import Diff, apply_diff, make_diff
from repro.memory.diff import DIFF_HEADER_BYTES, RUN_HEADER_BYTES


def test_identical_pages_give_empty_diff():
    page = np.arange(64, dtype=np.uint8)
    diff = make_diff(0, page.copy(), page.copy())
    assert diff.is_empty
    assert diff.modified_bytes == 0


def test_single_byte_change_ships_its_word():
    twin = np.zeros(64, dtype=np.uint8)
    current = twin.copy()
    current[10] = 7
    diff = make_diff(0, twin, current)
    assert len(diff.runs) == 1
    offset, data = diff.runs[0]
    assert offset == 8  # the containing word
    assert len(data) == 8
    assert data[2] == 7


def test_adjacent_word_changes_coalesce_into_one_run():
    twin = np.zeros(64, dtype=np.uint8)
    current = twin.copy()
    current[8:24] = 1  # words 1 and 2
    diff = make_diff(0, twin, current)
    assert len(diff.runs) == 1
    assert diff.modified_bytes == 16


def test_separate_words_make_separate_runs():
    twin = np.zeros(64, dtype=np.uint8)
    current = twin.copy()
    current[0] = 1    # word 0
    current[32] = 2   # word 4
    current[63] = 3   # word 7
    diff = make_diff(0, twin, current)
    assert len(diff.runs) == 3
    assert all(off % 8 == 0 for off, _ in diff.runs)


def test_size_bytes_counts_headers():
    twin = np.zeros(64, dtype=np.uint8)
    current = twin.copy()
    current[0] = 1
    current[32] = 1
    diff = make_diff(0, twin, current)
    assert diff.size_bytes == DIFF_HEADER_BYTES + 2 * (RUN_HEADER_BYTES + 8)


def test_non_word_sized_page_rejected():
    with pytest.raises(PagedMemoryError):
        make_diff(0, np.zeros(10, dtype=np.uint8), np.zeros(10, dtype=np.uint8))


def test_apply_diff_reconstructs_page():
    twin = np.random.default_rng(0).integers(0, 256, 128).astype(np.uint8)
    current = twin.copy()
    current[3:17] = 255
    current[100] = 0 if current[100] else 1
    diff = make_diff(0, twin, current)
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert np.array_equal(rebuilt, current)


def test_apply_out_of_range_run_rejected():
    page = np.zeros(16, dtype=np.uint8)
    bad = Diff(0, runs=[(12, np.ones(8, dtype=np.uint8))])
    with pytest.raises(PagedMemoryError):
        apply_diff(page, bad)


def test_mismatched_shapes_rejected():
    with pytest.raises(PagedMemoryError):
        make_diff(0, np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8))


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.data(),
)
def test_property_diff_apply_round_trips(num_words, data):
    """apply(twin, make_diff(twin, current)) == current, always."""
    length = num_words * 8
    twin = np.array(
        data.draw(st.lists(st.integers(0, 255), min_size=length, max_size=length)),
        dtype=np.uint8,
    )
    current = twin.copy()
    for _ in range(data.draw(st.integers(min_value=0, max_value=10))):
        pos = data.draw(st.integers(min_value=0, max_value=length - 1))
        current[pos] = data.draw(st.integers(min_value=0, max_value=255))
    diff = make_diff(0, twin, current)
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert np.array_equal(rebuilt, current)


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_property_word_disjoint_diffs_merge_like_multiple_writers(data):
    """Two writers modifying disjoint WORDS of the same page can be
    merged in either order — the multiple-writer protocol's core
    assumption for data-race-free (word-granular) programs."""
    words = 8
    page_len = words * 8
    clean = np.array(
        data.draw(st.lists(st.integers(0, 255), min_size=page_len, max_size=page_len)),
        dtype=np.uint8,
    )
    split_word = data.draw(st.integers(min_value=1, max_value=words - 1))
    split = split_word * 8

    writer_a = clean.copy()
    writer_b = clean.copy()
    for pos in data.draw(st.lists(st.integers(0, split - 1), max_size=8)):
        writer_a[pos] = (int(writer_a[pos]) + 1) % 256
    for pos in data.draw(st.lists(st.integers(split, page_len - 1), max_size=8)):
        writer_b[pos] = (int(writer_b[pos]) + 1) % 256

    diff_a = make_diff(0, clean.copy(), writer_a)
    diff_b = make_diff(0, clean.copy(), writer_b)

    merged_ab = clean.copy()
    apply_diff(merged_ab, diff_a)
    apply_diff(merged_ab, diff_b)
    merged_ba = clean.copy()
    apply_diff(merged_ba, diff_b)
    apply_diff(merged_ba, diff_a)

    assert np.array_equal(merged_ab, merged_ba)
    expected = clean.copy()
    expected[:split] = writer_a[:split]
    expected[split:] = writer_b[split:]
    assert np.array_equal(merged_ab, expected)


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_property_runs_are_word_aligned_sorted_disjoint(data):
    twin = np.zeros(96, dtype=np.uint8)
    current = twin.copy()
    for pos in data.draw(st.lists(st.integers(0, 95), max_size=30)):
        current[pos] = 1
    diff = make_diff(0, twin, current)
    last_end = -1
    for offset, run in diff.runs:
        assert offset % 8 == 0
        assert len(run) % 8 == 0
        assert offset > last_end
        last_end = offset + len(run) - 1
