"""Behavioural tests for the prefetch engine through small programs."""

import numpy as np
import pytest

from repro import Barrier, Compute, DsmRuntime, Program, Read, RunConfig, Write
from repro.api.ops import Prefetch


class PrefetchedConsumer(Program):
    """Node 0 produces; consumers prefetch with lead time, then read."""

    name = "pf-consumer"

    def __init__(self, length=4096, lead_us=5000.0, prefetch=True):
        self.length = length
        self.lead_us = lead_us
        self.do_prefetch = prefetch

    def setup(self, runtime):
        self.vec = runtime.alloc_vector("data", np.float64, self.length)

    def thread_body(self, runtime, tid):
        if tid == 0:
            yield self.vec.write(0, np.arange(self.length, dtype=np.float64))
        yield Barrier(0)
        if tid != 0:
            if self.do_prefetch:
                yield self.vec.prefetch(0, self.length)
            yield Compute(self.lead_us)  # lead time for the prefetch
            data = yield self.vec.read(0, self.length)
            assert np.asarray(data)[1] == 1.0
        yield Barrier(0)

    def verify(self, runtime):
        expected = np.arange(self.length, dtype=np.float64)
        assert np.array_equal(runtime.read_vector(self.vec), expected)


def test_prefetch_with_lead_converts_misses_to_hits():
    app = PrefetchedConsumer()
    report = DsmRuntime(RunConfig(num_nodes=4, prefetch=True)).execute(app)
    stats = report.prefetch_stats
    assert stats.hits > 0
    assert stats.hits >= stats.late
    # Hits are not counted as remote misses (Table 1 semantics).
    baseline = DsmRuntime(RunConfig(num_nodes=4)).execute(PrefetchedConsumer(prefetch=False))
    assert report.events.remote_misses < baseline.events.remote_misses


def test_prefetch_without_lead_is_late():
    app = PrefetchedConsumer(lead_us=0.0)
    report = DsmRuntime(RunConfig(num_nodes=4, prefetch=True)).execute(app)
    stats = report.prefetch_stats
    assert stats.late > 0


def test_prefetch_on_valid_pages_is_unnecessary():
    class LocalPrefetch(Program):
        name = "pf-local"

        def setup(self, runtime):
            self.vec = runtime.alloc_vector("v", np.float64, 1024)

        def thread_body(self, runtime, tid):
            yield Barrier(0)
            # Pages are valid everywhere (never written): every prefetch
            # is dropped after the cheap local check.
            yield self.vec.prefetch(0, 1024)
            yield Barrier(0)

        def verify(self, runtime):
            pass

    report = DsmRuntime(RunConfig(num_nodes=2, prefetch=True)).execute(LocalPrefetch())
    stats = report.prefetch_stats
    assert stats.issued > 0
    assert stats.unnecessary == stats.issued
    assert stats.request_messages == 0


def test_prefetch_dedup_suppresses_redundant_issues():
    class DedupProgram(Program):
        name = "pf-dedup"

        def setup(self, runtime):
            self.vec = runtime.alloc_vector("v", np.float64, 1024)

        def thread_body(self, runtime, tid):
            if tid == 0:
                yield self.vec.write(0, np.ones(1024))
            yield Barrier(0)
            # All threads on a node share the dedup key: only the first
            # issues (Section 5.1's dynamic-flag optimization).
            yield Prefetch.of([self.vec.region(0, 1024)], dedup_key="shared")
            _ = yield self.vec.read(0, 1024)
            yield Barrier(0)

        def verify(self, runtime):
            pass

    report = DsmRuntime(
        RunConfig(num_nodes=2, threads_per_node=4, prefetch=True)
    ).execute(DedupProgram())
    assert report.prefetch_stats.suppressed > 0


def test_prefetch_stats_fractions():
    from repro.prefetch import PrefetchStats

    stats = PrefetchStats(issued=10, unnecessary=4, hits=3, late=2, invalidated=1, no_pf=4)
    assert stats.unnecessary_fraction == pytest.approx(0.4)
    assert stats.covered == 6
    assert stats.coverage_factor == pytest.approx(0.6)
    assert PrefetchStats().coverage_factor == 0.0
