"""Tests for the history-based (runtime-driven) prefetcher extension."""

import numpy as np

from repro import Barrier, Compute, DsmRuntime, Program, RunConfig


class AlternatingPhases(Program):
    """Two barrier-separated phases per round, each faulting on its own
    remote pages — the pattern a depth-2 history must cover."""

    name = "alternating"

    def setup(self, runtime):
        self.vec = runtime.alloc_vector("v", np.float64, 4 * 512)

    def thread_body(self, runtime, tid):
        if tid == 0:
            yield self.vec.write(0, np.arange(4 * 512, dtype=np.float64))
        yield Barrier(0)
        for round_no in range(3):
            if tid == 1:
                _ = yield self.vec.read(0, 512)  # phase A pages
            yield Barrier(0)
            if tid == 1:
                _ = yield self.vec.read(2 * 512, 512)  # phase B pages
            yield Barrier(0)
            if tid == 0:
                # Rewriting invalidates both phases' pages for node 1.
                yield self.vec.write(0, np.full(4 * 512, float(round_no)))
            yield Barrier(0)

    def verify(self, runtime):
        pass


def test_history_prefetch_fires_and_hits():
    report = DsmRuntime(
        RunConfig(num_nodes=2, history_prefetch=True)
    ).execute(AlternatingPhases())
    stats = report.prefetch_stats
    assert stats.issued > 0
    assert stats.hits > 0  # later rounds covered by replayed history


def test_history_prefetch_without_explicit_insertion():
    """history_prefetch works even though the app never yields Prefetch."""
    baseline = DsmRuntime(RunConfig(num_nodes=2)).execute(AlternatingPhases())
    assert baseline.prefetch_stats is None
    history = DsmRuntime(
        RunConfig(num_nodes=2, history_prefetch=True)
    ).execute(AlternatingPhases())
    assert history.prefetch_stats is not None
    assert history.events.remote_misses <= baseline.events.remote_misses
