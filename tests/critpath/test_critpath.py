"""Critical-path analyzer tests: the exactness identities the whole
feature is sold on, plus the house observability invariants."""

import json
from fractions import Fraction

import pytest

from repro.api.runtime import DsmRuntime, RunConfig
from repro.apps.registry import make_app
from repro.critpath import analyze_events, build_pag
from repro.experiments.runner import make_configured_app, parse_label

LABELS = ("O", "P", "4T", "4TP")


def run_once(app_name="SOR", label="O", critpath=True, **overrides):
    threads_per_node, prefetch = parse_label(label)
    config = RunConfig(
        num_nodes=4,
        threads_per_node=threads_per_node,
        prefetch=prefetch,
        critpath=critpath,
        **overrides,
    )
    runtime = DsmRuntime(config)
    app = make_configured_app(app_name, "small", label)
    report = runtime.execute(app)
    return runtime, report


@pytest.fixture(scope="module")
def sor_runs():
    """One SOR run per paper label, shared across the assertions."""
    return {label: run_once("SOR", label) for label in LABELS}


# -- the exact identities ----------------------------------------------------


@pytest.mark.parametrize("label", LABELS)
def test_path_length_equals_wall_clock_exactly(sor_runs, label):
    """The headline guarantee: critical-path length == wall clock with
    exact (rational) arithmetic, per scheme."""
    _, report = sor_runs[label]
    section = report.critpath
    assert section["identity_exact"] is True
    assert section["wall_time_us"] == report.wall_time_us
    assert section["path_us"] == report.wall_time_us
    assert section["unattributed_us"] == 0.0


@pytest.mark.parametrize("label", LABELS)
def test_blame_sums_to_path_exactly(sor_runs, label):
    """Category blame telescopes to the path length (checked in Fraction
    space inside the analyzer; re-checked here from the float section
    within an ulp since JSON carries floats)."""
    runtime, report = sor_runs[label]
    result = analyze_events(runtime.tracer.events)
    total = sum(result.blame.values(), Fraction(0))
    assert total == Fraction(report.wall_time_us)
    # Per-epoch blame sums to each epoch's span exactly, too.
    assert report.critpath["epochs_exact"] is True
    for epoch in report.critpath["epochs"]:
        assert epoch["blame_us"], "empty epoch blame table"


@pytest.mark.parametrize("label", LABELS)
def test_dp_reproduces_the_wall(sor_runs, label):
    """The forward longest-path DP over the same graph must find the
    wall clock under measured weights — otherwise what-if projections
    computed from that DP would be meaningless."""
    _, report = sor_runs[label]
    assert report.critpath["dp_identity_exact"] is True


@pytest.mark.parametrize("label", LABELS)
def test_projections_lower_bound_the_measured_run(sor_runs, label):
    _, report = sor_runs[label]
    wall = report.wall_time_us
    what_if = report.critpath["what_if_us"]
    assert set(what_if) == {
        "zero_latency_network",
        "perfect_prefetch",
        "zero_cost_switch",
        "compute_floor",
    }
    for name, value in what_if.items():
        assert 0.0 < value <= wall, (name, value, wall)
    # Zeroing every wire is at least as aggressive as zeroing diff RTTs.
    assert what_if["zero_latency_network"] <= what_if["perfect_prefetch"]


def test_per_node_slack_accounts_for_the_wall(sor_runs):
    _, report = sor_runs["O"]
    section = report.critpath
    wall = section["wall_time_us"]
    rows = section["per_node"]
    assert [row["node"] for row in rows] == [0, 1, 2, 3]
    for row in rows:
        assert row["on_path_us"] + row["slack_us"] == pytest.approx(wall)
        assert row["on_path_us"] >= 0.0
    # Someone must be on the path.
    assert sum(row["on_path_us"] for row in rows) > 0.0


def test_epochs_partition_the_run(sor_runs):
    _, report = sor_runs["O"]
    epochs = report.critpath["epochs"]
    assert epochs[0]["start"] == 0.0
    assert epochs[-1]["end"] == report.wall_time_us
    for prev, cur in zip(epochs, epochs[1:]):
        assert prev["end"] == cur["start"]
    # SOR has barriers, so there are multiple epochs with waits blamed.
    assert len(epochs) > 1
    assert any(ep["top_wait"] for ep in epochs)


def test_hot_entities_name_pages_and_sync_objects(sor_runs):
    _, report = sor_runs["O"]
    entities = [row["entity"] for row in report.critpath["hot_entities"]]
    assert any(name.startswith("page:") for name in entities)


# -- house invariants --------------------------------------------------------


def core_json(report):
    data = report.to_dict()
    data.pop("critpath")
    data.pop("profile")
    return json.dumps(data, sort_keys=True)


def test_critpath_on_off_byte_identical_core():
    """The NULL_-style guard: analysis observes, never perturbs."""
    _, plain = run_once(critpath=False)
    _, analyzed = run_once(critpath=True)
    assert plain.critpath is None
    assert analyzed.critpath is not None
    assert core_json(plain) == core_json(analyzed)


def test_analysis_is_deterministic_across_reruns():
    _, first = run_once()
    _, second = run_once()
    assert json.dumps(first.critpath, sort_keys=True) == json.dumps(
        second.critpath, sort_keys=True
    )


def test_parallel_workers_carry_the_section_identically():
    """--jobs N ships reports through JSON; the section must survive
    bit-for-bit (floats included)."""
    from repro.parallel import RunSpec, run_specs

    config = RunConfig(num_nodes=4, critpath=True)
    spec = RunSpec(
        index=0, app_name="SOR", preset="small", label="O", config=config, verify=True
    )
    (shipped,) = run_specs([spec], jobs=2)
    _, local = run_once()
    assert json.dumps(shipped.critpath, sort_keys=True) == json.dumps(
        local.critpath, sort_keys=True
    )


def test_critpath_works_with_explicit_tracer_and_flows_export(tmp_path):
    """--trace + --critpath together: the chrome export grows dwell
    slices and flow arrows, and still validates."""
    from repro.trace import validate_chrome_trace

    runtime, report = run_once(trace=True)
    doc = runtime.tracer.chrome_trace(critpath=report.critpath)
    assert validate_chrome_trace(doc) == []
    rows = doc["traceEvents"]
    flows = [r for r in rows if r.get("cat") == "critpath" and r["ph"] in "sf"]
    dwells = [r for r in rows if r.get("cat") == "critpath" and r["ph"] == "X"]
    assert len(flows) == 2 * report.critpath["hops"]
    assert dwells, "critical path produced no dwell slices"
    # Flow ids pair up s with f.
    by_id = {}
    for r in flows:
        by_id.setdefault(r["id"], []).append(r["ph"])
    assert all(sorted(phases) == ["f", "s"] for phases in by_id.values())


def test_ring_overflow_is_surfaced_not_fatal():
    """A truncated ring trace analyzes without crashing and reports its
    health honestly instead of claiming exactness."""
    from repro.trace import TraceConfig

    runtime, report = run_once(
        critpath=False, trace=TraceConfig(sink="ring", ring_capacity=200)
    )
    tracer = runtime.tracer
    assert tracer.dropped_events > 0
    result = analyze_events(tracer.events, events_dropped=tracer.dropped_events)
    section = result.to_dict()
    assert section["events_dropped"] == tracer.dropped_events
    # Partial causality: the analyzer must not fabricate an exact path.
    assert section["path_us"] <= section["wall_time_us"] or not section["identity_exact"]


def test_pag_health_metrics_clean_on_full_trace(sor_runs):
    runtime, _ = sor_runs["O"]
    pag = build_pag(runtime.tracer.events)
    assert pag.dangling_arrivals == 0
    assert pag.overlap_us == 0.0
    assert pag.finish_ts, "sched_finish markers missing"


def test_offline_cli_round_trip(tmp_path, capsys):
    """python -m repro.critpath reproduces the in-process analysis from
    a written trace file (both JSONL and Chrome forms)."""
    from repro.critpath.__main__ import main

    runtime, report = run_once(trace=True)
    jsonl = tmp_path / "run.jsonl"
    chrome = tmp_path / "run.json"
    runtime.tracer.write_jsonl(str(jsonl))
    runtime.tracer.write_chrome(str(chrome))
    out_json = tmp_path / "section.json"
    assert main([str(jsonl), "--json", str(out_json)]) == 0
    offline = json.loads(out_json.read_text())
    online = json.loads(json.dumps(report.critpath))  # normalize via JSON
    assert offline == online
    assert main([str(chrome)]) == 0
    text = capsys.readouterr().out
    assert "identity exact" in text
    assert "what-if projections" in text


def test_offline_cli_errors(tmp_path, capsys):
    from repro.critpath.__main__ import main

    missing = tmp_path / "nope.jsonl"
    assert main([str(missing)]) == 2
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main([str(empty)]) == 2
    capsys.readouterr()


# -- per-protocol blame ------------------------------------------------------


@pytest.fixture(scope="module")
def protocol_runs():
    """One SOR O run per coherence backend."""
    return {
        protocol: run_once("SOR", "O", protocol=protocol)
        for protocol in ("lrc", "hlrc", "sc")
    }


@pytest.mark.parametrize("protocol", ["lrc", "hlrc", "sc"])
def test_identity_holds_on_every_protocol(protocol_runs, protocol):
    """Path length == wall clock is a property of the analyzer, not of
    the LRC protocol it was first built against."""
    _, report = protocol_runs[protocol]
    section = report.critpath
    assert section["identity_exact"] is True
    assert section["path_us"] == report.wall_time_us
    assert section["unattributed_us"] == 0.0
    assert section["dp_identity_exact"] is True


def test_sc_faults_are_blamed_not_dumped_in_network(protocol_runs):
    """SC's coherence traffic gets named categories: ownership
    transfers blame ``invalidation``, data movement ``page_fetch`` —
    neither lands in the catch-all ``network`` bucket."""
    _, report = protocol_runs["sc"]
    blame = report.critpath["blame_us"]
    assert blame.get("invalidation", 0.0) > 0.0
    assert blame.get("page_fetch", 0.0) > 0.0
    assert "diff_rtt" not in blame
    # What's left in the catch-all is transport acks and membership —
    # the protocol's own round trips dwarf it.
    assert blame.get("network", 0.0) < blame["invalidation"] + blame["page_fetch"]


def test_hlrc_blames_home_traffic(protocol_runs):
    _, report = protocol_runs["hlrc"]
    blame = report.critpath["blame_us"]
    assert blame.get("page_fetch", 0.0) + blame.get("home_update", 0.0) > 0.0
    assert "diff_rtt" not in blame
