"""Integration tests for the full interconnect: switch, routing, hot-spotting."""

import pytest

from repro.errors import NetworkError
from repro.network import LinkConfig, Message, MessageKind, Network
from repro.sim import Simulator


def build(num_nodes=4, **link_kwargs):
    sim = Simulator()
    net = Network(sim, num_nodes, link_config=LinkConfig(**link_kwargs))
    inboxes = {n: [] for n in range(num_nodes)}
    for n in range(num_nodes):
        net.attach(n, lambda m, n=n: inboxes[n].append(m))
    return sim, net, inboxes


def msg(src, dst, size=64, kind=MessageKind.DIFF_REQUEST, reliable=True):
    return Message(src=src, dst=dst, kind=kind, size_bytes=size, reliable=reliable)


def test_message_routed_to_destination():
    sim, net, inboxes = build()
    net.send(msg(0, 3))
    sim.run()
    assert len(inboxes[3]) == 1
    assert inboxes[3][0].src == 0
    assert not inboxes[0] and not inboxes[1] and not inboxes[2]


def test_delivery_timestamps_and_latency():
    sim, net, inboxes = build()
    net.send(msg(0, 1, size=4096))
    sim.run()
    delivered = inboxes[1][0]
    assert delivered.sent_at == 0.0
    assert delivered.delivered_at > 0
    # Two link traversals + switch latency: at least 2x serialization.
    min_latency = 2 * net.link_config.serialization_us(4096)
    assert delivered.latency >= min_latency


def test_attach_twice_rejected():
    sim = Simulator()
    net = Network(sim, 2)
    net.attach(0, lambda m: None)
    with pytest.raises(NetworkError):
        net.attach(0, lambda m: None)


def test_send_to_unattached_node_rejected():
    sim = Simulator()
    net = Network(sim, 3)
    net.attach(0, lambda m: None)
    with pytest.raises(NetworkError):
        net.send(msg(0, 2))


def test_too_small_network_rejected():
    with pytest.raises(NetworkError):
        Network(Simulator(), 1)


def test_traffic_stats_accumulate():
    sim, net, _ = build()
    net.send(msg(0, 1, size=100))
    net.send(msg(1, 2, size=200, kind=MessageKind.LOCK_REQUEST))
    sim.run()
    assert net.stats.total_messages == 2
    assert net.stats.total_bytes == 300
    assert net.stats.messages_by_kind[MessageKind.LOCK_REQUEST] == 1


def test_hot_spot_queueing_grows_latency():
    """All nodes blast the same destination: later messages queue at the
    destination downlink, so per-message latency grows — the paper's
    hot-spotting effect."""
    sim, net, inboxes = build(num_nodes=8)
    for src in range(1, 8):
        for _ in range(10):
            net.send(msg(src, 0, size=4096))
    sim.run()
    latencies = [m.latency for m in inboxes[0]]
    assert len(latencies) == 70
    # The last delivery waited far longer than the first.
    assert max(latencies) > 3 * min(latencies)


def test_unreliable_dropped_under_hot_spot_congestion():
    """Prefetch traffic into a congested port gets dropped once the
    downlink queue fills; reliable traffic never does."""
    sim, net, inboxes = build(num_nodes=4, queue_capacity_bytes=16 * 1024)
    for _ in range(30):
        net.send(msg(1, 0, size=4096, kind=MessageKind.PREFETCH_REQUEST, reliable=False))
        net.send(msg(2, 0, size=4096))
    sim.run()
    assert net.total_drops() > 0
    assert net.stats.drops_by_kind[MessageKind.PREFETCH_REQUEST] > 0
    assert net.stats.drops_by_kind.get(MessageKind.DIFF_REQUEST, 0) == 0
    # Every reliable message arrived.
    reliable = [m for m in inboxes[0] if m.reliable]
    assert len(reliable) == 30


def test_bidirectional_traffic_is_independent():
    sim, net, inboxes = build()
    net.send(msg(0, 1))
    net.send(msg(1, 0))
    sim.run()
    assert len(inboxes[0]) == 1 and len(inboxes[1]) == 1


def test_mean_latency_per_kind():
    sim, net, _ = build()
    net.send(msg(0, 1, size=64))
    net.send(msg(0, 1, size=64))
    sim.run()
    assert net.stats.mean_latency(MessageKind.DIFF_REQUEST) > 0
    assert net.stats.mean_latency(MessageKind.LOCK_REQUEST) == 0.0


def test_uplink_rejected_message_not_counted_as_sent():
    """Regression: a message the uplink refuses (queue full) must be
    recorded as a drop, never as a send."""
    sim, net, inboxes = build(num_nodes=2, queue_capacity_bytes=1000)
    # One reliable message fills the source uplink queue.
    assert net.send(msg(0, 1, size=900))
    assert not net.send(msg(0, 1, size=900, kind=MessageKind.PREFETCH_REQUEST, reliable=False))
    assert net.stats.messages_by_kind.get(MessageKind.PREFETCH_REQUEST, 0) == 0
    assert net.stats.drops_by_kind[MessageKind.PREFETCH_REQUEST] == 1
    assert net.stats.total_messages == 1
    sim.run()
    assert len(inboxes[1]) == 1  # only the accepted message arrived


def test_switch_downlink_drop_recorded_and_invisible_to_sender():
    """An unreliable message accepted at the uplink can still die at a
    congested switch downlink: counted as sent AND dropped, and the
    send() call reported success."""
    sim, net, inboxes = build(num_nodes=4, queue_capacity_bytes=16 * 1024)
    # Pace each source at its own uplink rate: uplinks stay shallow, but
    # the shared destination downlink sees 3x its drain rate.
    gap = net.link_config.serialization_us(4096) * 1.05
    accepted = []
    for src in (1, 2, 3):
        for i in range(10):
            sim.schedule(
                i * gap,
                lambda src=src: accepted.append(
                    net.send(msg(src, 0, size=4096, kind=MessageKind.PREFETCH_REPLY, reliable=False))
                ),
            )
    sim.run()
    assert all(accepted)  # the uplinks took everything
    dropped = net.dropped_at_switch()
    assert dropped > 0
    assert net.stats.drops_by_kind[MessageKind.PREFETCH_REPLY] == dropped
    assert net.stats.messages_by_kind[MessageKind.PREFETCH_REPLY] == 30
    assert len(inboxes[0]) == 30 - dropped
    assert net.stats.delivered_by_kind[MessageKind.PREFETCH_REPLY] == 30 - dropped


def test_kind_breakdown_reconciles_sent_delivered_dropped():
    sim, net, _ = build(num_nodes=4, queue_capacity_bytes=16 * 1024)
    gap = net.link_config.serialization_us(4096) * 1.05
    for src in (1, 2, 3):
        for i in range(10):
            sim.schedule(
                i * gap,
                lambda src=src: net.send(
                    msg(src, 0, size=4096, kind=MessageKind.PREFETCH_REPLY, reliable=False)
                ),
            )
    sim.run()
    row = net.stats.kind_breakdown()[MessageKind.PREFETCH_REPLY.value]
    assert row["sent"] == 30  # paced sends: no uplink drops
    assert row["sent"] == row["delivered"] + row["dropped"]
    assert row["mean_latency_us"] > 0
