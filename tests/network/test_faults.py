"""Unit tests for the fault-injection layer (plan validation, each fault
kind, determinism, stats recording)."""

import pytest

from repro.errors import FaultConfigError
from repro.network import (
    BitCorruption,
    FaultPlan,
    FaultyNetwork,
    LinkConfig,
    LinkDegradation,
    LinkPartition,
    Message,
    MessageKind,
    NodeCrash,
    NodeStall,
)
from repro.sim import RandomSource, Simulator


def build(plan, num_nodes=4, seed=11, **link_kwargs):
    sim = Simulator()
    net = FaultyNetwork(
        sim,
        num_nodes,
        plan,
        RandomSource(seed).stream("network.faults"),
        link_config=LinkConfig(**link_kwargs),
    )
    inboxes = {n: [] for n in range(num_nodes)}
    for n in range(num_nodes):
        net.attach(n, lambda m, n=n: inboxes[n].append(m))
    return sim, net, inboxes


def msg(src, dst, size=64, kind=MessageKind.PREFETCH_REQUEST, reliable=False):
    return Message(src=src, dst=dst, kind=kind, size_bytes=size, reliable=reliable)


# -- plan validation -------------------------------------------------------


def test_plan_rejects_bad_probabilities():
    with pytest.raises(FaultConfigError):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(FaultConfigError):
        FaultPlan(duplicate_prob=-0.1)
    with pytest.raises(FaultConfigError):
        FaultPlan(reorder_prob=0.5)  # jitter_us missing
    with pytest.raises(FaultConfigError):
        FaultPlan(jitter_us=-1.0)


def test_degradation_validation():
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=100.0, end_us=50.0, bandwidth_factor=0.5)
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0, bandwidth_factor=0.0)
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0, bandwidth_factor=2.0)
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0)  # degrades nothing
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0, extra_latency_us=-5.0)


def test_stall_validation():
    with pytest.raises(FaultConfigError):
        NodeStall(node=-1, start_us=0.0, end_us=10.0)
    with pytest.raises(FaultConfigError):
        NodeStall(node=0, start_us=10.0, end_us=10.0)


def test_noop_plan():
    assert FaultPlan().is_noop
    assert not FaultPlan(drop_prob=0.1).is_noop


# -- fault kinds -----------------------------------------------------------


def test_drops_hit_roughly_the_configured_rate():
    sim, net, inboxes = build(FaultPlan(drop_prob=0.25))
    refused = 0
    for i in range(400):
        if not net.send(msg(0, 1)):
            refused += 1
    sim.run()
    dropped = net.stats.injected_count("drop")
    assert dropped == refused  # injected drops are sender-visible
    assert 60 <= dropped <= 140  # ~100 expected
    assert len(inboxes[1]) == 400 - dropped
    assert net.stats.drops_by_kind[MessageKind.PREFETCH_REQUEST] == dropped
    # A fault-dropped message is never counted as sent.
    assert net.stats.messages_by_kind[MessageKind.PREFETCH_REQUEST] == 400 - dropped


def test_reliable_messages_exempt_from_drop_and_duplicate():
    plan = FaultPlan(drop_prob=1.0, duplicate_prob=1.0)
    sim, net, inboxes = build(plan)
    for _ in range(10):
        assert net.send(msg(0, 1, kind=MessageKind.DIFF_REQUEST, reliable=True))
    sim.run()
    assert len(inboxes[1]) == 10
    assert net.stats.total_injected_faults == 0


def test_duplicates_delivered_as_extra_copies():
    sim, net, inboxes = build(FaultPlan(duplicate_prob=1.0))
    net.send(msg(0, 1))
    sim.run()
    assert len(inboxes[1]) == 2
    assert net.stats.injected_count("duplicate") == 1
    # The ghost is a distinct wire message with the same logical content.
    a, b = inboxes[1]
    assert a.msg_id != b.msg_id
    assert a.payload is b.payload


def test_jitter_reorders_messages():
    plan = FaultPlan(reorder_prob=0.5, jitter_us=5_000.0)
    sim, net, inboxes = build(plan)
    for i in range(50):
        net.send(msg(0, 1, size=32, kind=MessageKind.PREFETCH_REQUEST))
        inboxes[1].clear
    sim.run()
    assert net.stats.injected_count("delay") > 0


def test_jitter_actually_changes_arrival_order():
    plan = FaultPlan(reorder_prob=0.5, jitter_us=5_000.0)
    sim, net, inboxes = build(plan)
    sent = []
    for i in range(50):
        m = msg(0, 1, size=32)
        m.payload["i"] = i
        sent.append(i)
        net.send(m)
    sim.run()
    arrived = [m.payload["i"] for m in inboxes[1]]
    assert sorted(arrived) == sorted(set(arrived))  # no duplication
    assert arrived != sorted(arrived)  # order was perturbed


def test_degradation_window_slows_affected_traffic():
    window = LinkDegradation(
        start_us=0.0, end_us=1e6, bandwidth_factor=0.25, extra_latency_us=500.0
    )
    sim, net, inboxes = build(FaultPlan(degradations=(window,)))
    net.send(msg(0, 1, size=4096))
    sim.run()
    degraded_latency = inboxes[1][0].latency

    sim2, net2, inboxes2 = build(FaultPlan())
    net2.send(msg(0, 1, size=4096))
    sim2.run()
    clean_latency = inboxes2[1][0].latency
    # 4x bandwidth cut: three extra serialization times plus the spike.
    expected_extra = 3 * net.link_config.serialization_us(4096) + 500.0
    assert degraded_latency == pytest.approx(clean_latency + expected_extra)
    assert net.stats.injected_count("degrade") == 1


def test_degradation_window_scoped_to_nodes():
    window = LinkDegradation(
        start_us=0.0, end_us=1e6, extra_latency_us=1000.0, nodes=frozenset({2})
    )
    sim, net, inboxes = build(FaultPlan(degradations=(window,)))
    net.send(msg(0, 1, size=64))
    net.send(msg(0, 2, size=64))
    sim.run()
    assert net.stats.injected_count("degrade") == 1
    assert inboxes[2][0].latency > inboxes[1][0].latency + 900.0


def test_degradation_window_expires():
    window = LinkDegradation(start_us=0.0, end_us=100.0, extra_latency_us=1000.0)
    sim, net, inboxes = build(FaultPlan(degradations=(window,)))
    sim.schedule(200.0, lambda: net.send(msg(0, 1)))
    sim.run()
    assert net.stats.injected_count("degrade") == 0


def test_stalled_destination_holds_delivery_until_window_end():
    stall = NodeStall(node=1, start_us=0.0, end_us=10_000.0)
    sim, net, inboxes = build(FaultPlan(stalls=(stall,)))
    net.send(msg(0, 1, size=32))
    net.send(msg(0, 2, size=32))
    sim.run()
    assert inboxes[1][0].delivered_at >= 10_000.0
    assert inboxes[2][0].delivered_at < 1_000.0
    assert net.stats.injected_count("stall") == 1


def test_stalled_source_holds_sends():
    stall = NodeStall(node=0, start_us=0.0, end_us=5_000.0)
    sim, net, inboxes = build(FaultPlan(stalls=(stall,)))
    net.send(msg(0, 1, size=32))
    sim.run()
    assert inboxes[1][0].delivered_at >= 5_000.0


def test_injection_is_deterministic():
    def run_once():
        sim, net, inboxes = build(
            FaultPlan(drop_prob=0.2, duplicate_prob=0.1, reorder_prob=0.3, jitter_us=500.0),
            seed=99,
        )
        for i in range(200):
            net.send(msg(0, 1, size=48))
        sim.run()
        return (
            sim.events_handled,
            len(inboxes[1]),
            net.stats.injected_count("drop"),
            net.stats.injected_count("duplicate"),
            net.stats.injected_count("delay"),
        )

    assert run_once() == run_once()


def test_kind_breakdown_reports_injected_faults():
    sim, net, _ = build(FaultPlan(drop_prob=1.0))
    net.send(msg(0, 1))
    sim.run()
    table = net.stats.kind_breakdown()
    row = table[MessageKind.PREFETCH_REQUEST.value]
    assert row["injected_drops"] == 1
    assert row["dropped"] == 1
    assert row["sent"] == 0


# -- partitions ------------------------------------------------------------


def test_partition_validation():
    with pytest.raises(FaultConfigError, match="exactly one"):
        LinkPartition(start_us=0.0, end_us=10.0)
    with pytest.raises(FaultConfigError, match="exactly one"):
        LinkPartition(start_us=0.0, end_us=10.0, nodes={1}, links={(0, 1)})
    with pytest.raises(FaultConfigError):
        LinkPartition(start_us=10.0, end_us=10.0, nodes={1})
    with pytest.raises(FaultConfigError, match="at least one"):
        LinkPartition(start_us=0.0, end_us=10.0, nodes=frozenset())
    with pytest.raises(FaultConfigError, match="self-link"):
        LinkPartition(start_us=0.0, end_us=10.0, links={(1, 1)})
    with pytest.raises(FaultConfigError, match="negative"):
        LinkPartition(start_us=0.0, end_us=10.0, nodes={-1})


def test_crash_and_partition_of_same_node_rejected():
    crash = NodeCrash(node=2, at_us=5_000.0)
    cut = LinkPartition(start_us=1_000.0, end_us=9_000.0, nodes={2})
    with pytest.raises(FaultConfigError, match="node 2"):
        FaultPlan(crashes=(crash,), partitions=(cut,))
    # A partition that is fully over before the crash is fine...
    FaultPlan(
        crashes=(crash,),
        partitions=(LinkPartition(start_us=1_000.0, end_us=4_000.0, nodes={2}),),
    )
    # ...as is one cutting a different node across the crash instant.
    FaultPlan(
        crashes=(crash,),
        partitions=(LinkPartition(start_us=1_000.0, end_us=9_000.0, nodes={3}),),
    )


def test_partition_topology_validated_against_cluster_size():
    sim = Simulator()
    plan = FaultPlan(partitions=(LinkPartition(start_us=0.0, end_us=10.0, nodes={9}),))
    with pytest.raises(FaultConfigError, match="unknown node 9"):
        FaultyNetwork(sim, 4, plan, RandomSource(1).stream("network.faults"))
    plan = FaultPlan(corruptions=(BitCorruption(start_us=0.0, end_us=10.0, prob=0.5, links={(0, 9)}),))
    with pytest.raises(FaultConfigError, match=r"unknown link \(0, 9\)"):
        FaultyNetwork(sim, 4, plan, RandomSource(1).stream("network.faults"))


def test_node_partition_severs_boundary_both_ways_only():
    cut = LinkPartition(start_us=0.0, end_us=1e9, nodes={0, 1})
    plan = FaultPlan(partitions=(cut,))
    sim, net, inboxes = build(plan)
    net.send(msg(0, 2))  # crosses the boundary: severed
    net.send(msg(2, 0))  # severed in the other direction too
    net.send(msg(0, 1))  # within the cut group: flows
    net.send(msg(2, 3))  # within the remainder: flows
    sim.run()
    assert len(inboxes[2]) == 0 and len(inboxes[0]) == 0
    assert len(inboxes[1]) == 1 and len(inboxes[3]) == 1
    assert net.stats.injected_count("partition") == 2


def test_link_partition_is_directed():
    cut = LinkPartition(start_us=0.0, end_us=1e9, links={(0, 1)})
    plan = FaultPlan(partitions=(cut,))
    sim, net, inboxes = build(plan)
    net.send(msg(0, 1))
    net.send(msg(1, 0))
    sim.run()
    assert len(inboxes[1]) == 0
    assert len(inboxes[0]) == 1


def test_partition_severs_even_reliable_messages_within_window_only():
    cut = LinkPartition(start_us=1_000.0, end_us=2_000.0, nodes={1})
    plan = FaultPlan(partitions=(cut,))
    sim, net, inboxes = build(plan)
    sim.schedule(500.0, net.send, msg(0, 1, reliable=True))
    sim.schedule(1_500.0, net.send, msg(0, 1, reliable=True))
    sim.schedule(2_500.0, net.send, msg(0, 1, reliable=True))
    sim.run()
    assert len(inboxes[1]) == 2  # only the in-window send vanished


# -- corruption ------------------------------------------------------------


def test_corruption_validation():
    with pytest.raises(FaultConfigError, match="prob"):
        BitCorruption(start_us=0.0, end_us=10.0, prob=0.0)
    with pytest.raises(FaultConfigError, match="prob"):
        BitCorruption(start_us=0.0, end_us=10.0, prob=1.5)
    with pytest.raises(FaultConfigError, match="at least one"):
        BitCorruption(start_us=0.0, end_us=10.0, prob=0.5, links=frozenset())


def test_corruption_marks_transmissions_inside_window():
    window = BitCorruption(start_us=0.0, end_us=1e9, prob=1.0)
    plan = FaultPlan(corruptions=(window,))
    sim, net, inboxes = build(plan)
    net.send(msg(0, 1))
    net.send(msg(0, 1, reliable=True))  # magic-reliable: exempt
    sim.run()
    assert [m.corrupted for m in inboxes[1]] == [True, False]
    assert net.stats.injected_count("corrupt") == 1


def test_corruption_scoped_to_links():
    window = BitCorruption(start_us=0.0, end_us=1e9, prob=1.0, links={(0, 1)})
    plan = FaultPlan(corruptions=(window,))
    sim, net, inboxes = build(plan)
    net.send(msg(0, 1))
    net.send(msg(2, 3))
    sim.run()
    assert inboxes[1][0].corrupted
    assert not inboxes[3][0].corrupted


def test_overlapping_corruption_windows_combine_independently():
    a = BitCorruption(start_us=0.0, end_us=10.0, prob=0.5)
    b = BitCorruption(start_us=5.0, end_us=15.0, prob=0.5)
    plan = FaultPlan(corruptions=(a, b))
    assert plan.corruption_prob(0, 1, 2.0) == 0.5
    assert plan.corruption_prob(0, 1, 7.0) == 0.75
    assert plan.corruption_prob(0, 1, 12.0) == 0.5
    assert plan.corruption_prob(0, 1, 20.0) == 0.0


def test_clone_does_not_copy_corruption():
    message = msg(0, 1)
    message.corrupted = True
    assert not message.clone().corrupted


# -- serialization ---------------------------------------------------------


def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        drop_prob=0.1,
        duplicate_prob=0.05,
        reorder_prob=0.2,
        jitter_us=300.0,
        degradations=(
            LinkDegradation(start_us=1.0, end_us=2.0, bandwidth_factor=0.5, nodes={1}),
        ),
        stalls=(NodeStall(node=2, start_us=3.0, end_us=4.0),),
        crashes=(NodeCrash(node=3, at_us=9.0),),
        partitions=(
            LinkPartition(start_us=5.0, end_us=6.0, nodes={1}),
            LinkPartition(start_us=7.0, end_us=8.0, links={(0, 2), (2, 0)}),
        ),
        corruptions=(BitCorruption(start_us=1.0, end_us=9.0, prob=0.25, links={(1, 2)}),),
        only_links={(0, 1)},
    )
    data = plan.to_dict()
    import json

    json.dumps(data)  # must be JSON-serializable as-is
    assert FaultPlan.from_dict(data) == plan
    assert FaultPlan.from_dict(json.loads(json.dumps(data))) == plan


def test_plan_from_empty_dict_is_noop():
    assert FaultPlan.from_dict({}).is_noop
