"""Unit tests for the fault-injection layer (plan validation, each fault
kind, determinism, stats recording)."""

import pytest

from repro.errors import FaultConfigError
from repro.network import (
    FaultPlan,
    FaultyNetwork,
    LinkConfig,
    LinkDegradation,
    Message,
    MessageKind,
    NodeStall,
)
from repro.sim import RandomSource, Simulator


def build(plan, num_nodes=4, seed=11, **link_kwargs):
    sim = Simulator()
    net = FaultyNetwork(
        sim,
        num_nodes,
        plan,
        RandomSource(seed).stream("network.faults"),
        link_config=LinkConfig(**link_kwargs),
    )
    inboxes = {n: [] for n in range(num_nodes)}
    for n in range(num_nodes):
        net.attach(n, lambda m, n=n: inboxes[n].append(m))
    return sim, net, inboxes


def msg(src, dst, size=64, kind=MessageKind.PREFETCH_REQUEST, reliable=False):
    return Message(src=src, dst=dst, kind=kind, size_bytes=size, reliable=reliable)


# -- plan validation -------------------------------------------------------


def test_plan_rejects_bad_probabilities():
    with pytest.raises(FaultConfigError):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(FaultConfigError):
        FaultPlan(duplicate_prob=-0.1)
    with pytest.raises(FaultConfigError):
        FaultPlan(reorder_prob=0.5)  # jitter_us missing
    with pytest.raises(FaultConfigError):
        FaultPlan(jitter_us=-1.0)


def test_degradation_validation():
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=100.0, end_us=50.0, bandwidth_factor=0.5)
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0, bandwidth_factor=0.0)
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0, bandwidth_factor=2.0)
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0)  # degrades nothing
    with pytest.raises(FaultConfigError):
        LinkDegradation(start_us=0.0, end_us=10.0, extra_latency_us=-5.0)


def test_stall_validation():
    with pytest.raises(FaultConfigError):
        NodeStall(node=-1, start_us=0.0, end_us=10.0)
    with pytest.raises(FaultConfigError):
        NodeStall(node=0, start_us=10.0, end_us=10.0)


def test_noop_plan():
    assert FaultPlan().is_noop
    assert not FaultPlan(drop_prob=0.1).is_noop


# -- fault kinds -----------------------------------------------------------


def test_drops_hit_roughly_the_configured_rate():
    sim, net, inboxes = build(FaultPlan(drop_prob=0.25))
    refused = 0
    for i in range(400):
        if not net.send(msg(0, 1)):
            refused += 1
    sim.run()
    dropped = net.stats.injected_count("drop")
    assert dropped == refused  # injected drops are sender-visible
    assert 60 <= dropped <= 140  # ~100 expected
    assert len(inboxes[1]) == 400 - dropped
    assert net.stats.drops_by_kind[MessageKind.PREFETCH_REQUEST] == dropped
    # A fault-dropped message is never counted as sent.
    assert net.stats.messages_by_kind[MessageKind.PREFETCH_REQUEST] == 400 - dropped


def test_reliable_messages_exempt_from_drop_and_duplicate():
    plan = FaultPlan(drop_prob=1.0, duplicate_prob=1.0)
    sim, net, inboxes = build(plan)
    for _ in range(10):
        assert net.send(msg(0, 1, kind=MessageKind.DIFF_REQUEST, reliable=True))
    sim.run()
    assert len(inboxes[1]) == 10
    assert net.stats.total_injected_faults == 0


def test_duplicates_delivered_as_extra_copies():
    sim, net, inboxes = build(FaultPlan(duplicate_prob=1.0))
    net.send(msg(0, 1))
    sim.run()
    assert len(inboxes[1]) == 2
    assert net.stats.injected_count("duplicate") == 1
    # The ghost is a distinct wire message with the same logical content.
    a, b = inboxes[1]
    assert a.msg_id != b.msg_id
    assert a.payload is b.payload


def test_jitter_reorders_messages():
    plan = FaultPlan(reorder_prob=0.5, jitter_us=5_000.0)
    sim, net, inboxes = build(plan)
    for i in range(50):
        net.send(msg(0, 1, size=32, kind=MessageKind.PREFETCH_REQUEST))
        inboxes[1].clear
    sim.run()
    assert net.stats.injected_count("delay") > 0


def test_jitter_actually_changes_arrival_order():
    plan = FaultPlan(reorder_prob=0.5, jitter_us=5_000.0)
    sim, net, inboxes = build(plan)
    sent = []
    for i in range(50):
        m = msg(0, 1, size=32)
        m.payload["i"] = i
        sent.append(i)
        net.send(m)
    sim.run()
    arrived = [m.payload["i"] for m in inboxes[1]]
    assert sorted(arrived) == sorted(set(arrived))  # no duplication
    assert arrived != sorted(arrived)  # order was perturbed


def test_degradation_window_slows_affected_traffic():
    window = LinkDegradation(
        start_us=0.0, end_us=1e6, bandwidth_factor=0.25, extra_latency_us=500.0
    )
    sim, net, inboxes = build(FaultPlan(degradations=(window,)))
    net.send(msg(0, 1, size=4096))
    sim.run()
    degraded_latency = inboxes[1][0].latency

    sim2, net2, inboxes2 = build(FaultPlan())
    net2.send(msg(0, 1, size=4096))
    sim2.run()
    clean_latency = inboxes2[1][0].latency
    # 4x bandwidth cut: three extra serialization times plus the spike.
    expected_extra = 3 * net.link_config.serialization_us(4096) + 500.0
    assert degraded_latency == pytest.approx(clean_latency + expected_extra)
    assert net.stats.injected_count("degrade") == 1


def test_degradation_window_scoped_to_nodes():
    window = LinkDegradation(
        start_us=0.0, end_us=1e6, extra_latency_us=1000.0, nodes=frozenset({2})
    )
    sim, net, inboxes = build(FaultPlan(degradations=(window,)))
    net.send(msg(0, 1, size=64))
    net.send(msg(0, 2, size=64))
    sim.run()
    assert net.stats.injected_count("degrade") == 1
    assert inboxes[2][0].latency > inboxes[1][0].latency + 900.0


def test_degradation_window_expires():
    window = LinkDegradation(start_us=0.0, end_us=100.0, extra_latency_us=1000.0)
    sim, net, inboxes = build(FaultPlan(degradations=(window,)))
    sim.schedule(200.0, lambda: net.send(msg(0, 1)))
    sim.run()
    assert net.stats.injected_count("degrade") == 0


def test_stalled_destination_holds_delivery_until_window_end():
    stall = NodeStall(node=1, start_us=0.0, end_us=10_000.0)
    sim, net, inboxes = build(FaultPlan(stalls=(stall,)))
    net.send(msg(0, 1, size=32))
    net.send(msg(0, 2, size=32))
    sim.run()
    assert inboxes[1][0].delivered_at >= 10_000.0
    assert inboxes[2][0].delivered_at < 1_000.0
    assert net.stats.injected_count("stall") == 1


def test_stalled_source_holds_sends():
    stall = NodeStall(node=0, start_us=0.0, end_us=5_000.0)
    sim, net, inboxes = build(FaultPlan(stalls=(stall,)))
    net.send(msg(0, 1, size=32))
    sim.run()
    assert inboxes[1][0].delivered_at >= 5_000.0


def test_injection_is_deterministic():
    def run_once():
        sim, net, inboxes = build(
            FaultPlan(drop_prob=0.2, duplicate_prob=0.1, reorder_prob=0.3, jitter_us=500.0),
            seed=99,
        )
        for i in range(200):
            net.send(msg(0, 1, size=48))
        sim.run()
        return (
            sim.events_handled,
            len(inboxes[1]),
            net.stats.injected_count("drop"),
            net.stats.injected_count("duplicate"),
            net.stats.injected_count("delay"),
        )

    assert run_once() == run_once()


def test_kind_breakdown_reports_injected_faults():
    sim, net, _ = build(FaultPlan(drop_prob=1.0))
    net.send(msg(0, 1))
    sim.run()
    table = net.stats.kind_breakdown()
    row = table[MessageKind.PREFETCH_REQUEST.value]
    assert row["injected_drops"] == 1
    assert row["dropped"] == 1
    assert row["sent"] == 0
