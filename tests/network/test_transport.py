"""Unit tests for the reliable transport: acks, retries, backoff, dedup.

The transport is exercised on a two-node cluster with a FaultyNetwork
underneath, so loss/duplication comes from the real injection layer.
"""

import pytest

from repro.errors import ConfigError, TransportError
from repro.machine import Cluster
from repro.network import FaultPlan, Message, MessageKind, TransportConfig
from repro.network.transport import _ReceiveWindow
from repro.sim import RandomSource, spawn


def build(plan=None, transport=TransportConfig(), seed=7, num_nodes=2):
    cluster = Cluster(
        num_nodes=num_nodes,
        fault_plan=plan,
        transport=transport,
        rng=RandomSource(seed),
    )
    inboxes = {n: [] for n in range(num_nodes)}
    for n in range(num_nodes):
        cluster.node(n).set_message_handler(lambda m, n=n: iter(inboxes[n].append(m) or ()))
    return cluster, inboxes


def send_from(cluster, node_id, message):
    spawn(cluster.sim, cluster.node(node_id).send_message(message))


def msg(src, dst, size=64, kind=MessageKind.DIFF_REQUEST, payload=None):
    return Message(src=src, dst=dst, kind=kind, size_bytes=size, payload=payload or {})


def test_config_validation():
    with pytest.raises(ConfigError):
        TransportConfig(timeout_us=0)
    with pytest.raises(ConfigError):
        TransportConfig(backoff=0.5)
    with pytest.raises(ConfigError):
        TransportConfig(max_retries=-1)
    with pytest.raises(ConfigError):
        TransportConfig(jitter_frac=2.0)


def test_clean_network_delivers_once_with_ack_and_no_retransmit():
    cluster, inboxes = build()
    send_from(cluster, 0, msg(0, 1))
    cluster.run()
    assert len(inboxes[1]) == 1
    transport = cluster.transports[0]
    assert transport.stats.retransmissions == 0
    assert transport.stats.acks_received == 1
    assert cluster.transports[1].stats.acks_sent == 1
    assert transport._pending == {}
    # The ack is visible in traffic stats, but never dispatched.
    assert cluster.network.stats.messages_by_kind[MessageKind.ACK] == 1
    assert not inboxes[0]


def test_reliable_message_survives_heavy_loss():
    cluster, inboxes = build(
        plan=FaultPlan(drop_prob=0.5),
        transport=TransportConfig(timeout_us=500.0, max_retries=30),
    )
    for i in range(20):
        send_from(cluster, 0, msg(0, 1, payload={"i": i}))
    cluster.run()
    assert len(inboxes[1]) == 20
    assert sorted(m.payload["i"] for m in inboxes[1]) == list(range(20))
    stats = cluster.transports[0].stats
    assert stats.retransmissions > 0
    assert stats.timeouts >= stats.retransmissions
    assert cluster.network.stats.total_retransmits == stats.retransmissions


def test_duplicates_are_suppressed_not_dispatched():
    cluster, inboxes = build(plan=FaultPlan(duplicate_prob=1.0, jitter_us=50.0))
    for i in range(5):
        send_from(cluster, 0, msg(0, 1, payload={"i": i}))
    cluster.run()
    # Every data message was duplicated in the network, yet the
    # protocol saw each exactly once.
    assert len(inboxes[1]) == 5
    assert cluster.transports[1].stats.duplicates_suppressed >= 5
    assert cluster.node(1).events.duplicates_suppressed >= 5


def test_retransmit_timing_uses_exponential_backoff():
    # 100% drop: nothing is ever delivered; watch the retry clock.
    cluster, _ = build(
        plan=FaultPlan(drop_prob=1.0),
        transport=TransportConfig(timeout_us=1000.0, backoff=2.0, max_retries=3, jitter_frac=0.0),
    )
    send_from(cluster, 0, msg(0, 1))
    cluster.run()
    stats = cluster.transports[0].stats
    assert stats.retransmissions == 3
    # Timeouts at 1ms, 2ms, 4ms, 8ms: the give-up fires after ~15ms.
    assert cluster.sim.now == pytest.approx(15_000.0, rel=0.01)


def test_exhausted_retries_give_up_gracefully():
    # A dead peer no longer crashes the run with a raw TransportError:
    # the message is abandoned and the give-up is recorded per kind.
    cluster, inboxes = build(
        plan=FaultPlan(drop_prob=1.0),
        transport=TransportConfig(timeout_us=200.0, max_retries=2),
    )
    suspected = []
    cluster.transports[0].on_give_up = lambda dst, message: suspected.append(
        (dst, message.kind)
    )
    send_from(cluster, 0, msg(0, 1, kind=MessageKind.LOCK_GRANT))
    cluster.run()
    assert len(inboxes[1]) == 0
    stats = cluster.transports[0].stats
    assert stats.retries_exhausted == {"lock_grant": 1}
    assert cluster.node(0).events.retries_exhausted == 1
    assert suspected == [(1, MessageKind.LOCK_GRANT)]
    assert cluster.transports[0]._pending == {}


def test_unreliable_messages_bypass_the_transport():
    cluster, inboxes = build()
    send_from(
        cluster,
        0,
        Message(
            src=0, dst=1, kind=MessageKind.PREFETCH_REQUEST, size_bytes=64, reliable=False
        ),
    )
    cluster.run()
    assert len(inboxes[1]) == 1
    assert inboxes[1][0].seq == -1
    assert cluster.transports[0].stats.data_sent == 0
    assert cluster.network.stats.messages_by_kind.get(MessageKind.ACK, 0) == 0


def test_receive_window_dedups_out_of_order():
    window = _ReceiveWindow()
    dedup = TransportConfig().dedup_window
    assert window.accept(0, dedup)
    assert window.accept(2, dedup)
    assert not window.accept(0, dedup)
    assert not window.accept(2, dedup)
    assert window.accept(1, dedup)
    assert window.upto == 2 and window.above == set()
    assert not window.accept(1, dedup)


def test_transport_determinism_under_loss():
    def run_once():
        cluster, inboxes = build(
            plan=FaultPlan(drop_prob=0.3, duplicate_prob=0.1, reorder_prob=0.5, jitter_us=300.0),
            transport=TransportConfig(timeout_us=500.0, max_retries=30),
            seed=123,
        )
        for i in range(30):
            send_from(cluster, 0, msg(0, 1, payload={"i": i}))
        wall = cluster.run()
        stats = cluster.transports[0].stats
        return (
            wall,
            cluster.sim.events_handled,
            stats.retransmissions,
            [m.payload["i"] for m in inboxes[1]],
        )

    assert run_once() == run_once()


def test_receive_window_gc_bounds_sparse_set():
    window = _ReceiveWindow()
    # A permanently missing seq 0 would pin the watermark forever; the
    # horizon must force it forward and keep the sparse set bounded.
    for seq in range(1, 10_001):
        assert window.accept(seq, window=256)
    assert window.upto >= 10_000 - 256
    assert len(window.above) <= 256 + 1


def test_receive_window_duplicates_inside_window_still_suppressed():
    window = _ReceiveWindow()
    for seq in range(1, 2_000):
        window.accept(seq, window=256)
    # A late duplicate below the advanced watermark is suppressed...
    assert not window.accept(5, window=256)
    # ...and so is a recent one still inside the window.
    assert not window.accept(1_999, window=256)
    # A genuinely new seq is still accepted.
    assert window.accept(2_000, window=256)


def test_receive_window_contiguous_stream_never_grows():
    window = _ReceiveWindow()
    dedup = TransportConfig().dedup_window
    for seq in range(5_000):
        assert window.accept(seq, dedup)
        assert not window.above  # compaction keeps it empty
    assert window.upto == 4_999
    assert not window.accept(123, dedup)
