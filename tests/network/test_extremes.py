"""Deterministic peak/min watermarks on the transport (extremes).

Aggregates report where a run *landed*; the watermarks record where it
*went* — max pacing backlog, deepest congestion-window excursion, and
the largest RTO ever armed — without needing the telemetry plane on.
"""

from repro.machine import Cluster
from repro.network import FaultPlan, Message, MessageKind, TransportConfig
from repro.network.stats import TransportExtremes
from repro.sim import RandomSource, spawn


def test_extremes_unit_semantics():
    ext = TransportExtremes()
    # min_cwnd stays -1 ("never halved") until the first observation.
    assert ext.as_dict() == {"max_backlog": 0, "min_cwnd": -1.0, "max_rto_us": 0.0}
    ext.observe_backlog(3)
    ext.observe_backlog(1)
    ext.observe_cwnd(4.125)
    ext.observe_cwnd(7.0)  # higher than the watermark: ignored
    ext.observe_rto(1500.4567)
    ext.observe_rto(900.0)
    assert ext.as_dict() == {
        "max_backlog": 3,
        "min_cwnd": 4.125,
        "max_rto_us": 1500.457,  # rounded to 3 decimals
    }


def test_health_snapshot_carries_extremes_under_loss():
    cluster = Cluster(
        num_nodes=2,
        fault_plan=FaultPlan(drop_prob=0.3),
        transport=TransportConfig(adaptive=True),
        rng=RandomSource(11),
    )
    for n in range(2):
        cluster.node(n).set_message_handler(lambda m: iter(()))
    for i in range(30):
        spawn(
            cluster.sim,
            cluster.node(0).send_message(
                Message(
                    src=0,
                    dst=1,
                    kind=MessageKind.DIFF_REQUEST,
                    size_bytes=64,
                    payload={"i": i},
                )
            ),
        )
    cluster.run()
    snap = cluster.transports[0].health_snapshot()
    extremes = snap["extremes"]
    # 30% loss forces retransmissions: windows halved, RTOs backed off.
    assert extremes["min_cwnd"] >= 1.0
    assert extremes["min_cwnd"] <= snap["peers"]["1"]["cwnd"]
    assert extremes["max_rto_us"] >= snap["peers"]["1"]["rto_us"]
    assert extremes["max_backlog"] >= 0

    # Watermarks are deterministic alongside everything else.
    def rerun():
        c = Cluster(
            num_nodes=2,
            fault_plan=FaultPlan(drop_prob=0.3),
            transport=TransportConfig(adaptive=True),
            rng=RandomSource(11),
        )
        for n in range(2):
            c.node(n).set_message_handler(lambda m: iter(()))
        for i in range(30):
            spawn(
                c.sim,
                c.node(0).send_message(
                    Message(
                        src=0,
                        dst=1,
                        kind=MessageKind.DIFF_REQUEST,
                        size_bytes=64,
                        payload={"i": i},
                    )
                ),
            )
        c.run()
        return c.transports[0].health_snapshot()["extremes"]

    assert rerun() == extremes
