"""Unit tests for the message model."""

import pytest

from repro.network import Message, MessageKind


def test_message_ids_are_unique():
    a = Message(src=0, dst=1, kind=MessageKind.DIFF_REQUEST, size_bytes=64)
    b = Message(src=0, dst=1, kind=MessageKind.DIFF_REQUEST, size_bytes=64)
    assert a.msg_id != b.msg_id


def test_message_to_self_rejected():
    with pytest.raises(ValueError):
        Message(src=2, dst=2, kind=MessageKind.DIFF_REQUEST, size_bytes=64)


def test_message_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(src=0, dst=1, kind=MessageKind.DIFF_REQUEST, size_bytes=-1)


def test_latency_requires_delivery():
    msg = Message(src=0, dst=1, kind=MessageKind.DIFF_REPLY, size_bytes=10)
    with pytest.raises(ValueError):
        _ = msg.latency
    msg.sent_at = 1.0
    msg.delivered_at = 5.5
    assert msg.latency == pytest.approx(4.5)


def test_prefetch_kinds_flagged():
    assert MessageKind.PREFETCH_REQUEST.is_prefetch
    assert MessageKind.PREFETCH_REPLY.is_prefetch
    assert not MessageKind.DIFF_REQUEST.is_prefetch
    assert not MessageKind.BARRIER_ARRIVE.is_prefetch
